#include "marauder/aprad.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "lp/simplex.h"

namespace mm::marauder {

std::map<net80211::MacAddress, double> aprad_estimate_radii(
    const ApDatabase& db, const std::vector<std::set<net80211::MacAddress>>& gammas,
    const ApRadOptions& options) {
  // Observed APs (known to the database) become LP variables.
  std::vector<net80211::MacAddress> observed;
  std::map<net80211::MacAddress, std::size_t> index;
  for (const auto& gamma : gammas) {
    for (const auto& mac : gamma) {
      if (db.find(mac) == nullptr) continue;
      if (index.emplace(mac, observed.size()).second) observed.push_back(mac);
    }
  }
  std::map<net80211::MacAddress, double> radii;
  if (observed.empty()) return radii;

  // Co-observation matrix: pairs that appear together in some Gamma.
  std::set<std::pair<std::size_t, std::size_t>> co_observed;
  for (const auto& gamma : gammas) {
    std::vector<std::size_t> members;
    for (const auto& mac : gamma) {
      const auto it = index.find(mac);
      if (it != index.end()) members.push_back(it->second);
    }
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        co_observed.emplace(std::min(members[a], members[b]),
                            std::max(members[a], members[b]));
      }
    }
  }

  std::vector<geo::Vec2> position(observed.size());
  for (std::size_t i = 0; i < observed.size(); ++i) {
    position[i] = db.find(observed[i])->position;
  }

  // Soft "<" upper bounds against each AP's nearest non-co-observed
  // neighbours (the binding pressure is local; an unlimited O(n^2) set of
  // soft rows would swamp the solver on a dense campus).
  std::set<std::pair<std::size_t, std::size_t>> less_pairs;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    std::vector<std::pair<double, std::size_t>> candidates;
    for (std::size_t j = 0; j < observed.size(); ++j) {
      if (j == i) continue;
      const auto key = std::minmax(i, j);
      if (co_observed.count({key.first, key.second}) != 0) continue;
      const double d = position[i].distance_to(position[j]);
      if (d < 2.0 * options.max_radius_m) candidates.emplace_back(d, j);
    }
    std::sort(candidates.begin(), candidates.end());
    const std::size_t take = std::min(options.max_less_neighbors, candidates.size());
    for (std::size_t c = 0; c < take; ++c) {
      const auto key = std::minmax(i, candidates[c].second);
      less_pairs.insert({key.first, key.second});
    }
  }

  // Hard ">=" co-observation rows by *row generation*: rich evidence yields
  // thousands of co-observed pairs, but maximizing sum(r) satisfies nearly
  // all of them for free — only those the "<" pressure actually violates
  // need to enter the LP. Solve, find violated rows, add them, repeat.
  std::set<std::pair<std::size_t, std::size_t>> active_hard;
  lp::Solution solution;
  for (int round = 0; round < 8; ++round) {
    lp::LinearProgram program(observed.size());
    for (std::size_t i = 0; i < observed.size(); ++i) {
      program.set_objective(i, 1.0);  // maximize sum of radii (overestimate bias)
      program.add_upper_bound(i, options.max_radius_m);
    }
    for (const auto& [i, j] : less_pairs) {
      program.add_constraint({{{i, 1.0}, {j, 1.0}},
                              lp::Relation::kLessEqual,
                              position[i].distance_to(position[j]) - options.epsilon_m,
                              /*soft=*/true,
                              options.soft_penalty});
    }
    for (const auto& [i, j] : active_hard) {
      const double d = position[i].distance_to(position[j]);
      // Under the disc model d <= r_i + r_j <= 2*cap always holds; polluted
      // evidence (a device that moved between two sightings) can violate
      // that, so rows the caps cannot satisfy become soft instead of making
      // the whole LP infeasible.
      const bool satisfiable = d <= 2.0 * options.max_radius_m;
      program.add_constraint({{{i, 1.0}, {j, 1.0}},
                              lp::Relation::kGreaterEqual,
                              d,
                              /*soft=*/!satisfiable,
                              options.soft_penalty * 10.0});
    }

    solution = program.solve();
    if (!solution.optimal()) {
      throw std::runtime_error(std::string("AP-Rad: LP failed: ") +
                               lp::to_string(solution.status));
    }

    std::size_t added = 0;
    for (const auto& pair : co_observed) {
      if (active_hard.count(pair) != 0) continue;
      const double d = position[pair.first].distance_to(position[pair.second]);
      if (solution.values[pair.first] + solution.values[pair.second] < d - 1e-6) {
        active_hard.insert(pair);
        ++added;
      }
    }
    if (added == 0) break;
  }

  for (std::size_t i = 0; i < observed.size(); ++i) {
    radii[observed[i]] =
        std::min(solution.values[i] + options.overestimate_bias_m, options.max_radius_m);
  }
  return radii;
}

LocalizationResult aprad_locate(const ApDatabase& db,
                                const std::vector<std::set<net80211::MacAddress>>& gammas,
                                const std::set<net80211::MacAddress>& target,
                                const ApRadOptions& options) {
  const auto radii = aprad_estimate_radii(db, gammas, options);

  std::vector<geo::Circle> discs;
  discs.reserve(target.size());
  for (const auto& mac : target) {
    const KnownAp* ap = db.find(mac);
    if (ap == nullptr) continue;
    const auto it = radii.find(mac);
    const double r = it != radii.end() ? it->second : options.max_radius_m;
    if (r > 0.0) discs.push_back({ap->position, r});
  }
  LocalizationResult result = mloc_locate(discs, options.mloc);
  result.method = "AP-Rad";
  return result;
}

}  // namespace mm::marauder
