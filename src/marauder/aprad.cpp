#include "marauder/aprad.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>

#include "geo/spatial_index.h"
#include "lp/simplex.h"
#include "util/thread_pool.h"

namespace mm::marauder {

namespace {

using IndexPair = std::pair<std::size_t, std::size_t>;
using PairSet = std::set<IndexPair>;

}  // namespace

ApRadConstraints aprad_prepare_constraints(
    const ApDatabase& db, const std::vector<std::set<net80211::MacAddress>>& gammas,
    const ApRadOptions& options) {
  ApRadConstraints out;
  // Database views, forced once: membership checks probe the rank index and
  // positions stream out of the SoA slab — no KnownAp re-gather per Gamma
  // member, no lazy-build mutex inside the scans below.
  const ApDatabase::RankMap& rank = db.rank_index();
  const ApDatabase::DiscSlabView slab = db.disc_slab();
  // Observed APs (known to the database) become LP variables. This scan
  // stays serial: variable indices follow first-appearance order across the
  // gamma list, and that order feeds everything downstream.
  std::vector<net80211::MacAddress>& observed = out.observed;
  std::vector<std::uint32_t> observed_rank;
  std::map<net80211::MacAddress, std::size_t> index;
  for (const auto& gamma : gammas) {
    for (const auto& mac : gamma) {
      const auto rit = rank.find(mac);
      if (rit == rank.end()) continue;
      if (index.emplace(mac, observed.size()).second) {
        observed.push_back(mac);
        observed_rank.push_back(rit->second);
      }
    }
  }
  if (observed.empty()) return out;

  util::ThreadPool& pool = util::ThreadPool::shared();
  const std::size_t par = options.threads;  // run_chunks maps 0 to all cores

  // Co-observation matrix: pairs that appear together in some Gamma. Gammas
  // are scanned in fixed chunks; each chunk emits a local pair set and the
  // sets are unioned in chunk order (a set union is order-insensitive anyway,
  // so any thread count yields the same matrix).
  const PairSet co_observed = util::parallel_reduce(
      pool, gammas.size(), /*chunk_size=*/16, par, PairSet{},
      [&](std::size_t begin, std::size_t end) {
        PairSet local;
        std::vector<std::size_t> members;
        for (std::size_t g = begin; g < end; ++g) {
          members.clear();
          for (const auto& mac : gammas[g]) {
            const auto it = index.find(mac);
            if (it != index.end()) members.push_back(it->second);
          }
          for (std::size_t a = 0; a < members.size(); ++a) {
            for (std::size_t b = a + 1; b < members.size(); ++b) {
              local.emplace(std::min(members[a], members[b]),
                            std::max(members[a], members[b]));
            }
          }
        }
        return local;
      },
      [](PairSet acc, const PairSet& part) {
        acc.insert(part.begin(), part.end());
        return acc;
      });

  // Positions from the slab (the same doubles db.find(...)->position holds).
  std::vector<geo::Vec2>& position = out.position;
  position.resize(observed.size());
  for (std::size_t i = 0; i < observed.size(); ++i) {
    position[i] = {slab.x[observed_rank[i]], slab.y[observed_rank[i]]};
  }

  // Soft "<" upper bounds against each AP's nearest non-co-observed
  // neighbours (the binding pressure is local; an unlimited O(n^2) set of
  // soft rows would swamp the solver on a dense campus). This per-AP
  // neighbour scan used to be the self-documented O(n^2) hot spot; it now
  // runs through an Atlas grid over the observed positions — only APs within
  // the 2R interest disc are candidates at all. The grid returns ascending
  // indices (exactly the old j-loop order) and the original strict
  // d < 2R predicate re-filters its inclusive boundary, so the candidate
  // list, its (d, j) sort, and every LP row are bit-identical to the scan.
  // Each AP's scan is independent, so rows of `selected` fill in parallel
  // and are folded in i order below. Selected distances are kept alongside
  // the pairs: the LP rounds used to re-derive every "<" row's distance per
  // round.
  const double interest_radius = 2.0 * options.max_radius_m;
  std::optional<geo::SpatialIndex> grid;
  if (options.spatial_index) {
    geo::SpatialIndex built(std::max(1.0, options.max_radius_m));
    for (std::size_t i = 0; i < position.size(); ++i) built.insert(i, position[i]);
    grid.emplace(std::move(built));
  }
  std::vector<std::vector<std::pair<IndexPair, double>>> selected(observed.size());
  util::parallel_map_into(
      pool, par, selected,
      [&](std::size_t i) {
        std::vector<std::pair<double, std::size_t>> candidates;
        const auto consider = [&](std::size_t j) {
          if (j == i) return;
          const auto key = std::minmax(i, j);
          if (co_observed.count({key.first, key.second}) != 0) return;
          const double d = position[i].distance_to(position[j]);
          if (d < interest_radius) candidates.emplace_back(d, j);
        };
        if (grid) {
          for (const geo::SpatialIndex::Id j : grid->query_disc(position[i], interest_radius)) {
            consider(j);
          }
        } else {
          for (std::size_t j = 0; j < observed.size(); ++j) consider(j);
        }
        std::sort(candidates.begin(), candidates.end());
        const std::size_t take = std::min(options.max_less_neighbors, candidates.size());
        std::vector<std::pair<IndexPair, double>> rows;
        rows.reserve(take);
        for (std::size_t c = 0; c < take; ++c) {
          const auto key = std::minmax(i, candidates[c].second);
          rows.push_back({{key.first, key.second}, candidates[c].first});
        }
        return rows;
      },
      /*chunk_size=*/8);
  std::map<IndexPair, double>& less_rows = out.less_rows;  // pair -> distance, deduped
  for (const auto& rows : selected) {
    for (const auto& [pair, d] : rows) less_rows.emplace(pair, d);
  }

  // Flatten the co-observation matrix and precompute its distances once —
  // the LP's row-generation loop re-scans these per round. Ascending
  // co_pairs order is exactly the old set-iteration order.
  out.co_pairs.assign(co_observed.begin(), co_observed.end());
  out.co_dist.resize(out.co_pairs.size());
  util::parallel_map_into(
      pool, par, out.co_dist,
      [&](std::size_t k) {
        return position[out.co_pairs[k].first].distance_to(position[out.co_pairs[k].second]);
      },
      /*chunk_size=*/64);
  return out;
}

std::map<net80211::MacAddress, double> aprad_estimate_radii(
    const ApDatabase& db, const std::vector<std::set<net80211::MacAddress>>& gammas,
    const ApRadOptions& options) {
  const ApRadConstraints prepared = aprad_prepare_constraints(db, gammas, options);
  const std::vector<net80211::MacAddress>& observed = prepared.observed;
  const std::map<IndexPair, double>& less_rows = prepared.less_rows;
  const std::vector<IndexPair>& co_pairs = prepared.co_pairs;
  const std::vector<double>& co_dist = prepared.co_dist;
  std::map<net80211::MacAddress, double> radii;
  if (observed.empty()) return radii;

  // Hard ">=" co-observation rows by *row generation*: rich evidence yields
  // thousands of co-observed pairs, but maximizing sum(r) satisfies nearly
  // all of them for free — only those the "<" pressure actually violates
  // need to enter the LP. Solve, find violated rows, add them, repeat.
  std::vector<char> hard_active(co_pairs.size(), 0);
  lp::Solution solution;
  for (int round = 0; round < 8; ++round) {
    lp::LinearProgram program(observed.size());
    for (std::size_t i = 0; i < observed.size(); ++i) {
      program.set_objective(i, 1.0);  // maximize sum of radii (overestimate bias)
      program.add_upper_bound(i, options.max_radius_m);
    }
    for (const auto& [pair, d] : less_rows) {
      program.add_constraint({{{pair.first, 1.0}, {pair.second, 1.0}},
                              lp::Relation::kLessEqual,
                              d - options.epsilon_m,
                              /*soft=*/true,
                              options.soft_penalty});
    }
    for (std::size_t k = 0; k < co_pairs.size(); ++k) {
      if (hard_active[k] == 0) continue;
      const auto& [i, j] = co_pairs[k];
      const double d = co_dist[k];
      // Under the disc model d <= r_i + r_j <= 2*cap always holds; polluted
      // evidence (a device that moved between two sightings) can violate
      // that, so rows the caps cannot satisfy become soft instead of making
      // the whole LP infeasible.
      const bool satisfiable = d <= 2.0 * options.max_radius_m;
      program.add_constraint({{{i, 1.0}, {j, 1.0}},
                              lp::Relation::kGreaterEqual,
                              d,
                              /*soft=*/!satisfiable,
                              options.soft_penalty * 10.0});
    }

    solution = program.solve();
    if (!solution.optimal()) {
      throw std::runtime_error(std::string("AP-Rad: LP failed: ") +
                               lp::to_string(solution.status));
    }

    std::size_t added = 0;
    for (std::size_t k = 0; k < co_pairs.size(); ++k) {
      if (hard_active[k] != 0) continue;
      if (solution.values[co_pairs[k].first] + solution.values[co_pairs[k].second] <
          co_dist[k] - 1e-6) {
        hard_active[k] = 1;
        ++added;
      }
    }
    if (added == 0) break;
  }

  for (std::size_t i = 0; i < observed.size(); ++i) {
    radii[observed[i]] =
        std::min(solution.values[i] + options.overestimate_bias_m, options.max_radius_m);
  }
  return radii;
}

LocalizationResult aprad_locate(const ApDatabase& db,
                                const std::vector<std::set<net80211::MacAddress>>& gammas,
                                const std::set<net80211::MacAddress>& target,
                                const ApRadOptions& options) {
  const auto radii = aprad_estimate_radii(db, gammas, options);

  std::vector<geo::Circle> discs;
  discs.reserve(target.size());
  for (const auto& mac : target) {
    const KnownAp* ap = db.find(mac);
    if (ap == nullptr) continue;
    const auto it = radii.find(mac);
    const double r = it != radii.end() ? it->second : options.max_radius_m;
    if (r > 0.0) discs.push_back({ap->position, r});
  }
  LocalizationResult result = mloc_locate(discs, options.mloc);
  result.method = "AP-Rad";
  return result;
}

}  // namespace mm::marauder
