// AP-Rad (Section III-C.2 / III-D): when only AP locations are known,
// estimate every observed AP's maximum transmission distance by linear
// programming over co-observation evidence, then call M-Loc.
//
// Constraint generation follows the paper: for APs i, j both observed,
//   r_i + r_j >= d_ij   if some mobile's Gamma contains both,
//   r_i + r_j <  d_ij   if no mobile ever saw both.
// Practical deviations (documented in DESIGN.md):
//   * only APs appearing in at least one Gamma become LP variables — an AP
//     nobody ever heard carries no information and would otherwise inject
//     spurious "<" constraints against every observed AP;
//   * "<" constraints are only generated for pairs closer than 2x the radius
//     cap (beyond that the box bounds already imply them), and only against
//     each AP's nearest `max_less_neighbors` non-co-observed APs — the
//     nearest pairs carry (almost) all the binding pressure, and without the
//     limit a dense campus produces O(n^2) soft rows that swamp the LP;
//   * "<" constraints are soft — real observation sets make them mutually
//     infeasible — while co-observation ">=" constraints stay hard;
//   * radii are capped by the Theorem-1 bound, without which maximizing
//     sum(r) is unbounded for APs with no "<" neighbour.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "marauder/ap_database.h"
#include "marauder/localization.h"
#include "marauder/mloc.h"
#include "net80211/mac_address.h"

namespace mm::marauder {

struct ApRadOptions {
  /// Theorem-1-style cap on any AP's maximum transmission distance.
  double max_radius_m = 250.0;
  /// Margin that turns the strict "<" into "<= d - epsilon".
  double epsilon_m = 1.0;
  /// Penalty per meter of "<" violation in the LP objective.
  double soft_penalty = 50.0;
  /// Per-AP limit on "<" constraints (nearest non-co-observed neighbours).
  std::size_t max_less_neighbors = 8;
  /// Added to every LP radius (clamped to the cap): Theorem 3 shows an
  /// overestimate costs area linearly while an underestimate destroys the
  /// coverage guarantee exponentially in k, so residual noise in the
  /// co-observation evidence is absorbed upward.
  double overestimate_bias_m = 10.0;
  /// Parallelism for constraint generation (co-observation pairs and the
  /// "<" neighbour scan): 1 = serial, 0 = one per hardware core.
  /// Output is bit-identical at any setting (fixed chunks, ordered merge).
  std::size_t threads = 1;
  /// Route the "<" neighbour scan through an Atlas grid over the observed AP
  /// positions (query radius 2x the cap) instead of the O(n^2) all-pairs
  /// loop. Candidate sets, LP rows, and radii are bit-identical either way
  /// (the grid returns ascending indices and the original strict predicate
  /// re-filters them); the flag exists so benches can time the scan oracle.
  bool spatial_index = true;
  MLocOptions mloc;
};

/// The LP inputs produced by constraint generation, exposed so benches and
/// equivalence tests can exercise the hot path without paying for the LP.
struct ApRadConstraints {
  /// LP variables in first-appearance order across the Gamma list.
  std::vector<net80211::MacAddress> observed;
  std::vector<geo::Vec2> position;  ///< aligned with observed
  /// Soft "<" rows: (i, j) pair (i < j) -> separating distance, deduped.
  std::map<std::pair<std::size_t, std::size_t>, double> less_rows;
  /// Hard ">=" candidates: co-observed pairs in ascending order, with their
  /// precomputed distances.
  std::vector<std::pair<std::size_t, std::size_t>> co_pairs;
  std::vector<double> co_dist;
};

/// Constraint generation only (everything before the LP rounds).
[[nodiscard]] ApRadConstraints aprad_prepare_constraints(
    const ApDatabase& db, const std::vector<std::set<net80211::MacAddress>>& gammas,
    const ApRadOptions& options = {});

/// Radii estimated by the LP, keyed by BSSID (only observed APs appear).
/// Throws std::runtime_error if the LP fails to reach an optimum.
[[nodiscard]] std::map<net80211::MacAddress, double> aprad_estimate_radii(
    const ApDatabase& db, const std::vector<std::set<net80211::MacAddress>>& gammas,
    const ApRadOptions& options = {});

/// Full AP-Rad: estimate radii from all observed Gammas, then locate the
/// device whose Gamma is `target` with M-Loc.
[[nodiscard]] LocalizationResult aprad_locate(
    const ApDatabase& db, const std::vector<std::set<net80211::MacAddress>>& gammas,
    const std::set<net80211::MacAddress>& target, const ApRadOptions& options = {});

}  // namespace mm::marauder
