// Chimera: first-class identity resolution across the attack pipeline.
//
// The paper (Sections I and V) argues MAC pseudonyms do not stop the
// Marauder's Map because *implicit identifiers* re-link rotated addresses.
// This module makes that argument executable as a two-level identity model:
//
//   pseudonym  = an observed MAC address (what the ObservationStore keys on,
//                what Riptide shards on — one radio may burn through many);
//   identity   = the resolved device behind one or more pseudonyms.
//
// The IdentityResolver clusters pseudonyms into identities from three
// individually-toggleable evidence signals:
//
//   (a) SSID fingerprint — the directed-probe SSID overlap of Pang et al.
//       (the original marauder::linker signal, strongest when devices leak
//       remembered networks);
//   (b) sequence continuity — the 12-bit 802.11 sequence counter keeps
//       counting across a rotation, so a fresh MAC whose first frames pick
//       up (mod 4096) where a vanished MAC stopped shares its radio;
//   (c) Gamma similarity + temporal adjacency — a device that vanishes and a
//       fresh MAC that appears seconds later hearing a near-identical AP set
//       (the Sapiezynski et al. observation that mobility itself tracks
//       through randomization).
//
// Each signal contributes scored edges to an evidence graph; pairs whose
// accumulated score clears `link_threshold` are merged by union-find. With
// every signal disabled the resolver degenerates to one singleton identity
// per MAC — the exact pre-Chimera behaviour — and with only (a) enabled it
// reproduces the legacy linker bit for bit.
//
// Resolution is a pure function of the ingested per-device summaries, which
// are themselves pure functions of DeviceRecords. That is what makes the
// live pipeline's incremental path (per-shard summaries merged into one
// resolver) provably equal to batch resolution over the union store.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "capture/observation_store.h"
#include "net80211/mac_address.h"

namespace mm::marauder {

/// Per-AP contact span inside a device summary: enough to recompute the
/// birth/death Gamma windows for any window length without dragging the full
/// contact timeline along.
struct ContactSpan {
  net80211::MacAddress ap;
  sim::SimTime first_seen = 0.0;
  sim::SimTime last_seen = 0.0;
};

/// Everything the resolver needs to know about one pseudonym — a compact,
/// mergeable projection of a DeviceRecord. Built identically by the batch
/// path (from a whole store) and the live path (per shard, per device).
struct DeviceSummary {
  net80211::MacAddress mac;
  sim::SimTime first_seen = 0.0;
  sim::SimTime last_seen = 0.0;
  std::vector<std::string> directed_ssids;  ///< record insertion order
  std::uint64_t seq_frames = 0;
  std::uint16_t first_seq = 0;
  std::uint16_t last_seq = 0;
  sim::SimTime first_seq_time = 0.0;
  sim::SimTime last_seq_time = 0.0;
  std::vector<ContactSpan> contacts;  ///< ascending AP order

  [[nodiscard]] bool has_seq() const noexcept { return seq_frames > 0; }
};

/// Pure projection DeviceRecord -> DeviceSummary (the one summary policy
/// shared by batch and live ingestion).
[[nodiscard]] DeviceSummary summarize_device(const capture::DeviceRecord& record);

/// Which evidence signals the attacker is capable of. Everything defaults to
/// the legacy linker: SSID fingerprints only.
struct ResolverSignals {
  bool ssid_fingerprint = true;
  bool sequence_continuity = false;
  bool gamma_temporal = false;

  [[nodiscard]] bool any() const noexcept {
    return ssid_fingerprint || sequence_continuity || gamma_temporal;
  }
  /// Fully-armed attacker (the arena's strongest column).
  [[nodiscard]] static ResolverSignals all() noexcept { return {true, true, true}; }
  /// No linking at all: every pseudonym is its own identity (the pre-Chimera
  /// MAC == device assumption, and the null point of the refactor).
  [[nodiscard]] static ResolverSignals none() noexcept { return {false, false, false}; }
};

struct ResolverOptions {
  ResolverSignals signals{};

  // --- (a) SSID fingerprint ---
  /// Minimum number of shared directed-probe SSIDs for two MACs to link.
  std::size_t min_overlap = 1;
  /// Absolute popularity floor: SSIDs probed by more than
  /// max(this, ceil(fraction * population)) distinct MACs identify a crowd,
  /// not a user, and are dropped from every fingerprint. The absolute value
  /// keeps tiny captures behaving exactly as the legacy linker did; the
  /// fraction makes the cutoff scale to city-sized populations, where an
  /// absolute 3 would throw away genuinely identifying rare SSIDs.
  std::size_t max_ssid_popularity = 3;
  double max_ssid_popularity_fraction = 0.01;

  // --- (b) sequence continuity ---
  /// A fresh MAC must show its first sequence-bearing frame within this many
  /// seconds of the vanished MAC's last one. Rotations inside a long silent
  /// gap exceed it and are (correctly) not linkable by this signal.
  double seq_max_gap_s = 30.0;
  /// Maximum forward distance (mod 4096) between the vanished MAC's last
  /// sequence and the fresh MAC's first.
  std::uint16_t seq_max_delta = 64;

  // --- (c) Gamma similarity + temporal adjacency ---
  /// A fresh MAC must appear within this many seconds of the vanished one.
  double gamma_max_gap_s = 30.0;
  /// Width of the death-window (tail of the vanished MAC) and birth-window
  /// (head of the fresh MAC) whose AP sets are compared.
  double gamma_window_s = 15.0;
  /// Jaccard similarity the two window Gamma sets must reach.
  double gamma_min_jaccard = 0.5;
  /// ... and at least this many APs in common (a 1-element Jaccard of 1.0
  /// is coincidence, not evidence).
  std::size_t gamma_min_common = 2;

  // --- evidence-graph scoring ---
  /// Per-signal edge scores; a pair links when its accumulated score reaches
  /// link_threshold. Defaults make each signal individually sufficient while
  /// still letting sub-threshold weights model corroboration-only regimes.
  double ssid_weight = 1.0;
  double seq_weight = 1.0;
  double gamma_weight = 1.0;
  double link_threshold = 1.0;

  /// Parallelism for the pairwise SSID fingerprint scan (1 = serial, 0 = one
  /// per hardware core). Edge emission is chunk-ordered, so the resolved
  /// identities are identical — bit for bit — at any setting.
  std::size_t threads = 1;
};

/// One resolved identity: the pseudonyms attributed to a single device.
struct ResolvedIdentity {
  std::uint32_t id = 0;                     ///< index into IdentityMap::identities
  std::vector<net80211::MacAddress> macs;   ///< first-seen order
  std::set<std::string> fingerprint;        ///< popularity-filtered SSID union
  sim::SimTime first_seen = 0.0;
  sim::SimTime last_seen = 0.0;

  [[nodiscard]] bool pseudonymous() const noexcept { return macs.size() > 1; }
};

/// The resolved two-level map: every ingested pseudonym appears in exactly
/// one identity.
struct IdentityMap {
  std::vector<ResolvedIdentity> identities;
  std::unordered_map<net80211::MacAddress, std::uint32_t, net80211::MacHasher> by_mac;

  [[nodiscard]] std::size_t size() const noexcept { return identities.size(); }
  /// Identity owning the pseudonym, or nullptr when the MAC was never seen.
  [[nodiscard]] const ResolvedIdentity* identity_of(
      const net80211::MacAddress& mac) const;
};

/// Counters from the most recent resolve() (evidence volume per signal).
struct ResolverStats {
  std::size_t devices = 0;
  std::size_t ssid_edges = 0;
  std::size_t seq_edges = 0;
  std::size_t gamma_edges = 0;
  std::size_t linked_pairs = 0;  ///< pairs whose score cleared the threshold
  std::size_t identities = 0;
};

/// Clusters pseudonyms into identities. Ingestion is incremental — upsert()
/// replaces a pseudonym's summary wherever it comes from (a batch store, a
/// live shard slice, a re-fed WAL) — and resolve() is a pure function of the
/// current summary set, independent of ingestion order.
class IdentityResolver {
 public:
  explicit IdentityResolver(ResolverOptions options = {});

  /// Inserts or replaces the summary for summary.mac.
  void upsert(DeviceSummary summary);
  /// Summarizes and upserts every device in the store.
  void ingest_store(const capture::ObservationStore& store);

  [[nodiscard]] std::size_t device_count() const noexcept { return summaries_.size(); }
  [[nodiscard]] const ResolverOptions& options() const noexcept { return options_; }

  /// Resolves the current summaries into identities.
  [[nodiscard]] IdentityMap resolve() const;

  /// Evidence counters of the most recent resolve().
  [[nodiscard]] const ResolverStats& last_stats() const noexcept { return stats_; }

 private:
  ResolverOptions options_;
  std::vector<DeviceSummary> summaries_;  ///< upsert order (resolution sorts)
  std::unordered_map<net80211::MacAddress, std::size_t, net80211::MacHasher> index_;
  mutable ResolverStats stats_;
};

/// One-shot convenience: summarize the store and resolve.
[[nodiscard]] IdentityMap resolve_identities(const capture::ObservationStore& store,
                                             const ResolverOptions& options = {});

}  // namespace mm::marauder
