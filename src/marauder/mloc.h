// M-Loc (Section III-D): locate a mobile from the discs of its communicable
// APs when both locations and maximum transmission distances are known.
//
// The paper's pseudo-code collects every pairwise circle-circle intersection
// point that lies within all discs (the set Delta) and returns their average.
// Degenerate inputs the pseudo-code leaves open are handled explicitly:
//   * |Gamma| = 1          -> the AP's position (nearest-AP reduction);
//   * nested discs, Delta empty, non-empty region -> the inner disc's center;
//   * inconsistent discs (empty intersection; possible under AP-Rad's
//     estimated radii) -> centroid of the AP positions, flagged as fallback.
// `exact_region_centroid` switches the estimate from the vertex average to
// the true centroid of the intersection region (ablation in bench_ablation).
#pragma once

#include "marauder/localization.h"

namespace mm::marauder {

struct MLocOptions {
  bool exact_region_centroid = false;
};

[[nodiscard]] LocalizationResult mloc_locate(std::span<const geo::Circle> discs,
                                             const MLocOptions& options = {});

}  // namespace mm::marauder
