// M-Loc (Section III-D): locate a mobile from the discs of its communicable
// APs when both locations and maximum transmission distances are known.
//
// The paper's pseudo-code collects every pairwise circle-circle intersection
// point that lies within all discs (the set Delta) and returns their average.
// Degenerate inputs the pseudo-code leaves open are handled explicitly:
//   * |Gamma| = 1          -> the AP's position (nearest-AP reduction);
//   * nested discs, Delta empty, non-empty region -> the inner disc's center;
//   * inconsistent discs (empty intersection; possible under AP-Rad's
//     estimated radii or corrupted capture evidence) -> optionally an
//     outlier-rejection pass (drop the fewest discs that make the
//     intersection non-empty, greedily, up to `max_outliers`), else the
//     centroid of the AP positions, flagged as fallback.
// `exact_region_centroid` switches the estimate from the vertex average to
// the true centroid of the intersection region (ablation in bench_ablation).
#pragma once

#include "geo/disc_intersection.h"
#include "marauder/localization.h"

namespace mm::marauder {

struct MLocOptions {
  bool exact_region_centroid = false;
  /// Graceful degradation under damaged evidence: when the discs are
  /// mutually inconsistent, discard the fewest discs that restore a
  /// non-empty intersection (RANSAC-style over Gamma) instead of collapsing
  /// straight to the centroid fallback. Rejected discs are reported in
  /// LocalizationResult::discs_rejected.
  bool reject_outliers = false;
  std::size_t max_outliers = 2;
};

/// Reusable workspace for the M-Loc hot path. locate_all keeps one per
/// worker thread so the outlier-rejection pass — the pairwise-distance
/// matrix, its SoA center mirror, and the one-removed candidate sets — runs
/// allocation-free across every device a worker processes. A
/// default-constructed scratch is always valid; buffers grow to the largest
/// Gamma seen and stay.
struct MLocScratch {
  std::vector<double> dist;           ///< n*n pairwise center distances
  std::vector<double> sx;             ///< SoA x of the active disc set
  std::vector<double> sy;             ///< SoA y of the active disc set
  std::vector<geo::Circle> retained;  ///< surviving discs during rejection
  std::vector<geo::Circle> candidate; ///< one-removed trial set
  std::vector<std::size_t> original;  ///< retained position -> dist row
};

[[nodiscard]] LocalizationResult mloc_locate(std::span<const geo::Circle> discs,
                                             const MLocOptions& options = {});

/// Scratch-reusing variant: bit-identical to the allocation-per-call one (the
/// buffers only change where intermediates live, never what they hold).
[[nodiscard]] LocalizationResult mloc_locate(std::span<const geo::Circle> discs,
                                             const MLocOptions& options,
                                             MLocScratch& scratch);

/// M-Loc with a precomputed intersection region for `discs` (Riptide's
/// incremental path: the region was maintained arc-by-arc as Gamma grew).
/// `region` must equal DiscIntersection::compute(discs); given that, the
/// result is bit-for-bit what mloc_locate(discs, options) returns — the
/// outlier-rejection and fallback branches run the same full recomputes.
[[nodiscard]] LocalizationResult mloc_locate_prepared(std::span<const geo::Circle> discs,
                                                      const geo::DiscIntersection& region,
                                                      const MLocOptions& options = {});

}  // namespace mm::marauder
