#include "marauder/tracker.h"

#include <stdexcept>

namespace mm::marauder {

const char* to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kMLoc:
      return "M-Loc";
    case Algorithm::kApRad:
      return "AP-Rad";
    case Algorithm::kApLoc:
      return "AP-Loc";
    case Algorithm::kCentroid:
      return "Centroid";
    case Algorithm::kNearestAp:
      return "NearestAP";
    case Algorithm::kWeightedCentroid:
      return "WeightedCentroid";
  }
  return "?";
}

Tracker::Tracker(ApDatabase db, TrackerOptions options)
    : db_(std::move(db)), options_(std::move(options)) {
  if (options_.algorithm == Algorithm::kApLoc) {
    throw std::invalid_argument("Tracker: AP-Loc requires from_training()");
  }
  if (options_.algorithm == Algorithm::kApRad) {
    // Location-only knowledge: radii must come from the LP, not the input.
    db_.strip_radii();
  }
}

Tracker Tracker::from_training(const std::vector<capture::TrainingTuple>& tuples,
                               TrackerOptions options) {
  ApDatabase db = aploc_build_database(tuples, options.aploc);
  // AP-Loc proceeds exactly like AP-Rad on the trained database.
  TrackerOptions adjusted = options;
  adjusted.algorithm = Algorithm::kApRad;
  adjusted.aprad = options.aploc.aprad;
  Tracker tracker(std::move(db), std::move(adjusted));
  for (const capture::TrainingTuple& tuple : tuples) {
    if (tuple.heard_aps.size() >= 2) tracker.training_evidence_.push_back(tuple.heard_aps);
  }
  return tracker;
}

void Tracker::prepare(const capture::ObservationStore& store,
                      const capture::ObservationWindow& window) {
  if (options_.algorithm != Algorithm::kApRad) {
    prepared_ = true;
    return;
  }
  std::vector<std::set<net80211::MacAddress>> gammas =
      store.session_gammas(options_.session_gap_s, window);
  gammas.insert(gammas.end(), training_evidence_.begin(), training_evidence_.end());
  const auto radii = aprad_estimate_radii(db_, gammas, options_.aprad);
  for (const auto& [mac, radius] : radii) {
    if (radius > 0.0) db_.set_radius(mac, radius);
  }
  prepared_ = true;
}

LocalizationResult Tracker::locate(const capture::ObservationStore& store,
                                   const net80211::MacAddress& device,
                                   const capture::ObservationWindow& window) const {
  const auto gamma = store.gamma(device, window);
  switch (options_.algorithm) {
    case Algorithm::kMLoc: {
      LocalizationResult result =
          mloc_locate(db_.discs_for(gamma, options_.default_radius_m), options_.mloc);
      result.method = "M-Loc";
      return result;
    }
    case Algorithm::kApRad: {
      if (!prepared_) {
        throw std::logic_error("Tracker: call prepare() before locate() for AP-Rad/AP-Loc");
      }
      // Radii were materialized into db_ by prepare(); unknown ones fall
      // back to the cap (overestimates preferred, Theorem 3).
      LocalizationResult result = mloc_locate(
          db_.discs_for(gamma, options_.aprad.max_radius_m), options_.aprad.mloc);
      result.method = "AP-Rad";
      return result;
    }
    case Algorithm::kApLoc:
      throw std::logic_error("Tracker: AP-Loc trackers run as AP-Rad after training");
    case Algorithm::kCentroid: {
      return centroid_locate(db_.positions_for(gamma));
    }
    case Algorithm::kNearestAp:
    case Algorithm::kWeightedCentroid: {
      std::vector<std::pair<geo::Vec2, double>> with_rssi;
      const capture::DeviceRecord* rec = store.device(device);
      if (rec != nullptr) {
        for (const auto& [mac, contact] : rec->contacts) {
          if (gamma.count(mac) == 0) continue;
          const KnownAp* ap = db_.find(mac);
          if (ap != nullptr) with_rssi.emplace_back(ap->position, contact.last_rssi_dbm);
        }
      }
      return options_.algorithm == Algorithm::kNearestAp
                 ? nearest_ap_locate(with_rssi)
                 : weighted_centroid_locate(with_rssi);
    }
  }
  return {};
}

std::map<net80211::MacAddress, LocalizationResult> Tracker::locate_all(
    const capture::ObservationStore& store,
    const capture::ObservationWindow& window) const {
  std::map<net80211::MacAddress, LocalizationResult> results;
  for (const auto& mac : store.devices()) {
    LocalizationResult result = locate(store, mac, window);
    if (result.ok) results.emplace(mac, std::move(result));
  }
  return results;
}

}  // namespace mm::marauder
