#include "marauder/tracker.h"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "util/hash.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mm::marauder {

namespace {

/// Method tags mixed into the Gamma-cache key so the M-Loc and AP-Rad
/// keyspaces cannot collide (their MLocOptions differ).
constexpr std::uint64_t kCacheTagMLoc = 0x4d2d4c6f63ULL;    // "M-Loc"
constexpr std::uint64_t kCacheTagApRad = 0x41502d526164ULL; // "AP-Rad"

/// Key of a disc set: every coordinate enters the hash through its exact bit
/// pattern, so two Gammas collide only when their discs are identical to the
/// last bit (and a full equality check below rules out hash collisions).
std::uint64_t disc_set_key(const std::vector<geo::Circle>& discs, std::uint64_t tag) {
  std::uint64_t h = util::hash_combine(tag, discs.size());
  for (const geo::Circle& disc : discs) {
    h = util::hash_combine(h, std::bit_cast<std::uint64_t>(disc.center.x));
    h = util::hash_combine(h, std::bit_cast<std::uint64_t>(disc.center.y));
    h = util::hash_combine(h, std::bit_cast<std::uint64_t>(disc.radius));
  }
  return h;
}

bool same_discs(const std::vector<geo::Circle>& a, const std::vector<geo::Circle>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i].center.x) !=
            std::bit_cast<std::uint64_t>(b[i].center.x) ||
        std::bit_cast<std::uint64_t>(a[i].center.y) !=
            std::bit_cast<std::uint64_t>(b[i].center.y) ||
        std::bit_cast<std::uint64_t>(a[i].radius) !=
            std::bit_cast<std::uint64_t>(b[i].radius)) {
      return false;
    }
  }
  return true;
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

/// Thread-safe memo of mloc_locate by disc set, sharded by key so concurrent
/// locate_all workers contend on 1/16th of a mutex instead of one (the
/// Afterburner single-mutex cache serialized the whole parallel batch at
/// high hit rates). Entries keep their full disc vector: the 64-bit key is
/// only a bucket address, equality is exact, so a hit returns precisely what
/// recomputing would have. Shard choice depends only on the key, never on
/// scheduling, so contents and counters are deterministic.
struct Tracker::GammaCache {
  static constexpr std::size_t kShards = 16;

  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<std::vector<geo::Circle>, LocalizationResult>>>
        entries;
    std::size_t hits = 0;
    std::size_t misses = 0;
  };
  std::array<Shard, kShards> shards;

  /// Last locate_all batch's measured duplication (guarded by meta_mutex).
  std::mutex meta_mutex;
  double duplicate_ratio = 0.0;
  bool engaged = false;

  Shard& shard_for(std::uint64_t key) { return shards[util::shard_of(key, kShards)]; }

  /// Copies the memoized result into `out` and credits `hit_count` hits
  /// (the number of devices this lookup answered for). False on absence —
  /// counters untouched; the later put() records the miss.
  bool try_get(std::uint64_t key, const std::vector<geo::Circle>& discs,
               std::size_t hit_count, LocalizationResult& out) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.entries.find(key);
    if (it == s.entries.end()) return false;
    for (const auto& [cached_discs, cached_result] : it->second) {
      if (same_discs(cached_discs, discs)) {
        s.hits += hit_count;
        out = cached_result;
        return true;
      }
    }
    return false;
  }

  /// Records one computed disc set: `miss_count` misses (the compute) plus
  /// `hit_count` hits (duplicate devices the one compute covered). A racing
  /// thread may have inserted the same Gamma meanwhile; the localization is
  /// deterministic, so either copy is the same answer.
  void put(std::uint64_t key, const std::vector<geo::Circle>& discs,
           const LocalizationResult& result, std::size_t miss_count,
           std::size_t hit_count) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    s.misses += miss_count;
    s.hits += hit_count;
    auto& bucket = s.entries[key];
    for (const auto& [cached_discs, cached_result] : bucket) {
      if (same_discs(cached_discs, discs)) return;
    }
    bucket.emplace_back(discs, result);
  }

  void set_meta(double ratio, bool engaged_now) {
    std::lock_guard<std::mutex> lock(meta_mutex);
    duplicate_ratio = ratio;
    engaged = engaged_now;
  }

  [[nodiscard]] GammaCacheStats stats() {
    GammaCacheStats out;
    for (Shard& s : shards) {
      std::lock_guard<std::mutex> lock(s.mutex);
      out.hits += s.hits;
      out.misses += s.misses;
    }
    std::lock_guard<std::mutex> lock(meta_mutex);
    out.duplicate_ratio = duplicate_ratio;
    out.engaged = engaged;
    return out;
  }

  void clear() {
    for (Shard& s : shards) {
      std::lock_guard<std::mutex> lock(s.mutex);
      s.entries.clear();
      s.hits = 0;
      s.misses = 0;
    }
    set_meta(0.0, false);
  }
};

const char* to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kMLoc:
      return "M-Loc";
    case Algorithm::kApRad:
      return "AP-Rad";
    case Algorithm::kApLoc:
      return "AP-Loc";
    case Algorithm::kCentroid:
      return "Centroid";
    case Algorithm::kNearestAp:
      return "NearestAP";
    case Algorithm::kWeightedCentroid:
      return "WeightedCentroid";
  }
  return "?";
}

Tracker::Tracker(ApDatabase db, TrackerOptions options)
    : db_(std::move(db)),
      options_(std::move(options)),
      cache_(std::make_shared<GammaCache>()) {
  if (options_.algorithm == Algorithm::kApLoc) {
    throw std::invalid_argument("Tracker: AP-Loc requires from_training()");
  }
  if (options_.algorithm == Algorithm::kApRad) {
    // Location-only knowledge: radii must come from the LP, not the input.
    db_.strip_radii();
  }
}

Tracker Tracker::from_training(const std::vector<capture::TrainingTuple>& tuples,
                               TrackerOptions options) {
  ApDatabase db = aploc_build_database(tuples, options.aploc);
  // AP-Loc proceeds exactly like AP-Rad on the trained database.
  TrackerOptions adjusted = options;
  adjusted.algorithm = Algorithm::kApRad;
  adjusted.aprad = options.aploc.aprad;
  Tracker tracker(std::move(db), std::move(adjusted));
  for (const capture::TrainingTuple& tuple : tuples) {
    if (tuple.heard_aps.size() >= 2) tracker.training_evidence_.push_back(tuple.heard_aps);
  }
  return tracker;
}

void Tracker::prepare(const capture::ObservationStore& store,
                      const capture::ObservationWindow& window) {
  if (options_.algorithm != Algorithm::kApRad) {
    prepared_ = true;
    return;
  }
  std::vector<std::set<net80211::MacAddress>> gammas =
      store.session_gammas(options_.session_gap_s, window);
  gammas.insert(gammas.end(), training_evidence_.begin(), training_evidence_.end());
  // One parallelism knob for the whole tracker: the constraint-generation
  // scans inherit locate_all's thread budget.
  ApRadOptions aprad = options_.aprad;
  aprad.threads = options_.threads;
  const auto radii = aprad_estimate_radii(db_, gammas, aprad);
  for (const auto& [mac, radius] : radii) {
    if (radius > 0.0) db_.set_radius(mac, radius);
  }
  prepared_ = true;
  // The LP just rewrote the radii, so every memoized disc set is stale.
  cache_->clear();
}

LocalizationResult Tracker::locate(const capture::ObservationStore& store,
                                   const net80211::MacAddress& device,
                                   const capture::ObservationWindow& window) const {
  // The sorted-vector Gamma: same members, same ascending order as gamma(),
  // without a red-black-tree allocation per member on the hot path.
  const std::vector<net80211::MacAddress> gamma = store.gamma_sorted(device, window);
  switch (options_.algorithm) {
    case Algorithm::kMLoc: {
      LocalizationResult result = cached_mloc(
          db_.discs_for(gamma, options_.default_radius_m), options_.mloc, kCacheTagMLoc);
      result.method = "M-Loc";
      return result;
    }
    case Algorithm::kApRad: {
      if (!prepared_) {
        // Faultline convention: degrade, don't throw. Without the LP radii
        // the defensible disc set is the Theorem-1 cap for every heard AP —
        // a coarse but covering region — and the result is flagged so the
        // display can grey it out.
        LocalizationResult result =
            cached_mloc(db_.discs_for(gamma, options_.aprad.max_radius_m),
                        options_.aprad.mloc, kCacheTagApRad);
        result.method = "AP-Rad";
        result.used_fallback = true;
        return result;
      }
      // Radii were materialized into db_ by prepare(); unknown ones fall
      // back to the cap (overestimates preferred, Theorem 3).
      LocalizationResult result =
          cached_mloc(db_.discs_for(gamma, options_.aprad.max_radius_m),
                      options_.aprad.mloc, kCacheTagApRad);
      result.method = "AP-Rad";
      return result;
    }
    case Algorithm::kApLoc:
      throw std::logic_error("Tracker: AP-Loc trackers run as AP-Rad after training");
    case Algorithm::kCentroid: {
      return centroid_locate(db_.positions_for(gamma));
    }
    case Algorithm::kNearestAp:
    case Algorithm::kWeightedCentroid: {
      std::vector<std::pair<geo::Vec2, double>> with_rssi;
      const capture::DeviceRecord* rec = store.device(device);
      if (rec != nullptr) {
        for (const auto& [mac, contact] : rec->contacts) {
          if (!std::binary_search(gamma.begin(), gamma.end(), mac)) continue;
          const KnownAp* ap = db_.find(mac);
          if (ap != nullptr) with_rssi.emplace_back(ap->position, contact.last_rssi_dbm);
        }
      }
      return options_.algorithm == Algorithm::kNearestAp
                 ? nearest_ap_locate(with_rssi)
                 : weighted_centroid_locate(with_rssi);
    }
  }
  return {};
}

std::map<net80211::MacAddress, LocalizationResult> Tracker::locate_all(
    const capture::ObservationStore& store, const capture::ObservationWindow& window,
    LocateAllProfile* profile) const {
  if (options_.soa_arena && (options_.algorithm == Algorithm::kMLoc ||
                             options_.algorithm == Algorithm::kApRad)) {
    return locate_all_arena(store, window, profile);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<net80211::MacAddress> devices = store.devices();
  // Per-device localizations are independent: fan out over the sorted device
  // list, slot each result by index, then fold into the map in MAC order —
  // the exact sequence the serial loop produced. Chunks are coarse
  // (balanced_chunk): each dispatch must amortize over a batch of devices,
  // not the 4-device chunks that sank Afterburner's parallel win.
  std::vector<LocalizationResult> per_device(devices.size());
  util::parallel_map_into(
      util::ThreadPool::shared(), options_.threads, per_device,
      [&](std::size_t i) { return locate(store, devices[i], window); },
      util::ThreadPool::balanced_chunk(devices.size(), options_.threads));
  const auto t1 = std::chrono::steady_clock::now();
  std::map<net80211::MacAddress, LocalizationResult> results;
  std::size_t outliers = 0;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (!per_device[i].ok) continue;
    if (per_device[i].discs_rejected > 0) ++outliers;
    results.emplace(devices[i], std::move(per_device[i]));
  }
  const auto t2 = std::chrono::steady_clock::now();
  if (profile != nullptr) {
    *profile = {};
    profile->locate_s = seconds_between(t0, t1);
    profile->merge_s = seconds_between(t1, t2);
    profile->devices = devices.size();
    profile->unique_gammas = devices.size();
    profile->outlier_devices = outliers;
    profile->cache_engaged = options_.gamma_cache &&
                             (options_.algorithm == Algorithm::kMLoc ||
                              options_.algorithm == Algorithm::kApRad);
  }
  return results;
}

std::map<net80211::MacAddress, LocalizationResult> Tracker::locate_all_arena(
    const capture::ObservationStore& store, const capture::ObservationWindow& window,
    LocateAllProfile* profile) const {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<net80211::MacAddress> devices = store.devices();
  const std::size_t n = devices.size();

  // Force the database's lazy views once, up front: the workers below only
  // ever read them (no per-probe mutex).
  const ApDatabase::DiscSlabView slab = db_.disc_slab();
  const ApDatabase::RankMap& ranks = db_.rank_index();

  const bool aprad = options_.algorithm == Algorithm::kApRad;
  const double default_radius =
      aprad ? options_.aprad.max_radius_m : options_.default_radius_m;
  const MLocOptions& mloc_opts = aprad ? options_.aprad.mloc : options_.mloc;
  const std::uint64_t tag = aprad ? kCacheTagApRad : kCacheTagMLoc;
  const char* method = aprad ? "AP-Rad" : "M-Loc";

  util::ThreadPool& pool = util::ThreadPool::shared();

  // Plan: per-device disc ranks (ascending, because Gamma is sorted and the
  // slab is BSSID-ordered) and the exact disc-set key. Both are slotted by
  // device index, so the plan is identical at any parallelism. The key hash
  // sequence matches disc_set_key(discs_for(gamma, default), tag) bit for
  // bit — the slab holds the same doubles discs_for copies out of KnownAp —
  // so the arena and the per-device locate() path share one memo keyspace.
  std::vector<std::vector<std::uint32_t>> device_ranks(n);
  std::vector<std::uint64_t> keys(n);
  pool.run_chunks(
      n, util::ThreadPool::balanced_chunk(n, options_.threads), options_.threads,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<net80211::MacAddress> gamma;  // reused across the chunk
        for (std::size_t i = begin; i < end; ++i) {
          gamma.clear();
          store.gamma_append(devices[i], window, gamma);
          std::vector<std::uint32_t>& dr = device_ranks[i];
          dr.reserve(gamma.size());
          for (const net80211::MacAddress& mac : gamma) {
            const auto it = ranks.find(mac);
            if (it != ranks.end()) dr.push_back(it->second);
          }
          std::uint64_t h = util::hash_combine(tag, dr.size());
          for (const std::uint32_t r : dr) {
            const double radius =
                std::isnan(slab.radius[r]) ? default_radius : slab.radius[r];
            h = util::hash_combine(h, std::bit_cast<std::uint64_t>(slab.x[r]));
            h = util::hash_combine(h, std::bit_cast<std::uint64_t>(slab.y[r]));
            h = util::hash_combine(h, std::bit_cast<std::uint64_t>(radius));
          }
          keys[i] = h;
        }
      });

  // Group identical disc sets, walking devices in index (= ascending MAC)
  // order so group numbering is deterministic. Equality is rank-sequence
  // equality: within one call the slab is fixed, so equal ranks mean equal
  // discs; a cross-sequence hash collision merely splits a group (correct,
  // just one extra compute). Grouping is skipped entirely with the cache
  // off — that path is the true per-device baseline.
  constexpr std::uint32_t kNoGroup = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> group_of(n, 0);
  std::vector<std::uint32_t> rep;         // group -> representative device
  std::vector<std::uint32_t> group_size;  // group -> member count
  if (options_.gamma_cache) {
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
    index.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::uint32_t>& candidates = index[keys[i]];
      std::uint32_t g = kNoGroup;
      for (const std::uint32_t cand : candidates) {
        if (device_ranks[rep[cand]] == device_ranks[i]) {
          g = cand;
          break;
        }
      }
      if (g == kNoGroup) {
        g = static_cast<std::uint32_t>(rep.size());
        rep.push_back(static_cast<std::uint32_t>(i));
        group_size.push_back(0);
        candidates.push_back(g);
      }
      group_of[i] = g;
      ++group_size[g];
    }
  } else {
    rep.resize(n);
    group_size.assign(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
      rep[i] = static_cast<std::uint32_t>(i);
      group_of[i] = static_cast<std::uint32_t>(i);
    }
  }

  const double duplicate_ratio =
      n == 0 ? 0.0 : static_cast<double>(n - rep.size()) / static_cast<double>(n);
  // The cross-call memo engages only when the measured duplication clears
  // the bar; below it the memo would be a locked insert per unique Gamma
  // with nothing amortizing it. Within-batch grouping above already
  // captured whatever duplication exists.
  const bool engaged = options_.gamma_cache && n > 0 &&
                       duplicate_ratio >= options_.gamma_cache_min_duplicate_ratio;

  const auto t1 = std::chrono::steady_clock::now();

  // Localize each unique disc set once, slotted by group index. Per-chunk
  // scratch (disc vector + M-Loc workspace) is reused across the chunk's
  // groups, so the loop body allocates nothing once the buffers have grown.
  const std::size_t groups = rep.size();
  std::vector<LocalizationResult> group_results(groups);
  pool.run_chunks(
      groups, util::ThreadPool::balanced_chunk(groups, options_.threads, /*min_chunk=*/4),
      options_.threads, [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<geo::Circle> discs;
        MLocScratch scratch;
        for (std::size_t g = begin; g < end; ++g) {
          const std::uint32_t d = rep[g];
          discs.clear();
          for (const std::uint32_t r : device_ranks[d]) {
            const double radius =
                std::isnan(slab.radius[r]) ? default_radius : slab.radius[r];
            discs.push_back({{slab.x[r], slab.y[r]}, radius});
          }
          if (engaged && cache_->try_get(keys[d], discs, group_size[g], group_results[g])) {
            continue;
          }
          group_results[g] = mloc_locate(discs, mloc_opts, scratch);
          if (engaged) {
            cache_->put(keys[d], discs, group_results[g], 1, group_size[g] - 1);
          }
        }
      });

  const auto t2 = std::chrono::steady_clock::now();

  // Fan the group results back out to their devices and fold into the map in
  // ascending-MAC order — the exact sequence the serial per-device loop
  // produced. Unprepared AP-Rad results carry the Faultline fallback flag,
  // matching locate().
  const bool force_fallback = aprad && !prepared_;
  std::map<net80211::MacAddress, LocalizationResult> results;
  std::size_t outliers = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const LocalizationResult& group_result = group_results[group_of[i]];
    if (!group_result.ok) continue;
    LocalizationResult r = group_result;
    r.method = method;
    if (force_fallback) r.used_fallback = true;
    if (r.discs_rejected > 0) ++outliers;
    results.emplace(devices[i], std::move(r));
  }
  const auto t3 = std::chrono::steady_clock::now();

  cache_->set_meta(duplicate_ratio, engaged);
  if (profile != nullptr) {
    *profile = {};
    profile->plan_s = seconds_between(t0, t1);
    profile->locate_s = seconds_between(t1, t2);
    profile->merge_s = seconds_between(t2, t3);
    profile->devices = n;
    profile->unique_gammas = groups;
    profile->outlier_devices = outliers;
    profile->duplicate_ratio = duplicate_ratio;
    profile->cache_engaged = engaged;
  }
  return results;
}

LocalizationResult Tracker::cached_mloc(std::vector<geo::Circle> discs,
                                        const MLocOptions& mloc,
                                        std::uint64_t method_tag) const {
  if (!options_.gamma_cache) return mloc_locate(discs, mloc);
  const std::uint64_t key = disc_set_key(discs, method_tag);
  LocalizationResult result;
  if (cache_->try_get(key, discs, /*hit_count=*/1, result)) return result;
  result = mloc_locate(discs, mloc);
  cache_->put(key, discs, result, /*miss_count=*/1, /*hit_count=*/0);
  return result;
}

GammaCacheStats Tracker::gamma_cache_stats() const { return cache_->stats(); }

}  // namespace mm::marauder
