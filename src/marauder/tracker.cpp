#include "marauder/tracker.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace mm::marauder {

namespace {

/// Method tags mixed into the Gamma-cache key so the M-Loc and AP-Rad
/// keyspaces cannot collide (their MLocOptions differ).
constexpr std::uint64_t kCacheTagMLoc = 0x4d2d4c6f63ULL;    // "M-Loc"
constexpr std::uint64_t kCacheTagApRad = 0x41502d526164ULL; // "AP-Rad"

/// Key of a disc set: every coordinate enters the hash through its exact bit
/// pattern, so two Gammas collide only when their discs are identical to the
/// last bit (and a full equality check below rules out hash collisions).
std::uint64_t disc_set_key(const std::vector<geo::Circle>& discs, std::uint64_t tag) {
  std::uint64_t h = util::hash_combine(tag, discs.size());
  for (const geo::Circle& disc : discs) {
    h = util::hash_combine(h, std::bit_cast<std::uint64_t>(disc.center.x));
    h = util::hash_combine(h, std::bit_cast<std::uint64_t>(disc.center.y));
    h = util::hash_combine(h, std::bit_cast<std::uint64_t>(disc.radius));
  }
  return h;
}

bool same_discs(const std::vector<geo::Circle>& a, const std::vector<geo::Circle>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i].center.x) !=
            std::bit_cast<std::uint64_t>(b[i].center.x) ||
        std::bit_cast<std::uint64_t>(a[i].center.y) !=
            std::bit_cast<std::uint64_t>(b[i].center.y) ||
        std::bit_cast<std::uint64_t>(a[i].radius) !=
            std::bit_cast<std::uint64_t>(b[i].radius)) {
      return false;
    }
  }
  return true;
}

}  // namespace

/// Thread-safe memo of mloc_locate by disc set. Entries keep their full disc
/// vector: the 64-bit key is only a bucket address, equality is exact, so a
/// hit returns precisely what recomputing would have.
struct Tracker::GammaCache {
  std::mutex mutex;
  std::unordered_map<std::uint64_t, std::vector<std::pair<std::vector<geo::Circle>,
                                                          LocalizationResult>>>
      entries;
  GammaCacheStats stats;

  void clear() {
    std::lock_guard<std::mutex> lock(mutex);
    entries.clear();
    stats = {};
  }
};

const char* to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kMLoc:
      return "M-Loc";
    case Algorithm::kApRad:
      return "AP-Rad";
    case Algorithm::kApLoc:
      return "AP-Loc";
    case Algorithm::kCentroid:
      return "Centroid";
    case Algorithm::kNearestAp:
      return "NearestAP";
    case Algorithm::kWeightedCentroid:
      return "WeightedCentroid";
  }
  return "?";
}

Tracker::Tracker(ApDatabase db, TrackerOptions options)
    : db_(std::move(db)),
      options_(std::move(options)),
      cache_(std::make_shared<GammaCache>()) {
  if (options_.algorithm == Algorithm::kApLoc) {
    throw std::invalid_argument("Tracker: AP-Loc requires from_training()");
  }
  if (options_.algorithm == Algorithm::kApRad) {
    // Location-only knowledge: radii must come from the LP, not the input.
    db_.strip_radii();
  }
}

Tracker Tracker::from_training(const std::vector<capture::TrainingTuple>& tuples,
                               TrackerOptions options) {
  ApDatabase db = aploc_build_database(tuples, options.aploc);
  // AP-Loc proceeds exactly like AP-Rad on the trained database.
  TrackerOptions adjusted = options;
  adjusted.algorithm = Algorithm::kApRad;
  adjusted.aprad = options.aploc.aprad;
  Tracker tracker(std::move(db), std::move(adjusted));
  for (const capture::TrainingTuple& tuple : tuples) {
    if (tuple.heard_aps.size() >= 2) tracker.training_evidence_.push_back(tuple.heard_aps);
  }
  return tracker;
}

void Tracker::prepare(const capture::ObservationStore& store,
                      const capture::ObservationWindow& window) {
  if (options_.algorithm != Algorithm::kApRad) {
    prepared_ = true;
    return;
  }
  std::vector<std::set<net80211::MacAddress>> gammas =
      store.session_gammas(options_.session_gap_s, window);
  gammas.insert(gammas.end(), training_evidence_.begin(), training_evidence_.end());
  // One parallelism knob for the whole tracker: the constraint-generation
  // scans inherit locate_all's thread budget.
  ApRadOptions aprad = options_.aprad;
  aprad.threads = options_.threads;
  const auto radii = aprad_estimate_radii(db_, gammas, aprad);
  for (const auto& [mac, radius] : radii) {
    if (radius > 0.0) db_.set_radius(mac, radius);
  }
  prepared_ = true;
  // The LP just rewrote the radii, so every memoized disc set is stale.
  cache_->clear();
}

LocalizationResult Tracker::locate(const capture::ObservationStore& store,
                                   const net80211::MacAddress& device,
                                   const capture::ObservationWindow& window) const {
  // The sorted-vector Gamma: same members, same ascending order as gamma(),
  // without a red-black-tree allocation per member on the hot path.
  const std::vector<net80211::MacAddress> gamma = store.gamma_sorted(device, window);
  switch (options_.algorithm) {
    case Algorithm::kMLoc: {
      LocalizationResult result = cached_mloc(
          db_.discs_for(gamma, options_.default_radius_m), options_.mloc, kCacheTagMLoc);
      result.method = "M-Loc";
      return result;
    }
    case Algorithm::kApRad: {
      if (!prepared_) {
        // Faultline convention: degrade, don't throw. Without the LP radii
        // the defensible disc set is the Theorem-1 cap for every heard AP —
        // a coarse but covering region — and the result is flagged so the
        // display can grey it out.
        LocalizationResult result =
            cached_mloc(db_.discs_for(gamma, options_.aprad.max_radius_m),
                        options_.aprad.mloc, kCacheTagApRad);
        result.method = "AP-Rad";
        result.used_fallback = true;
        return result;
      }
      // Radii were materialized into db_ by prepare(); unknown ones fall
      // back to the cap (overestimates preferred, Theorem 3).
      LocalizationResult result =
          cached_mloc(db_.discs_for(gamma, options_.aprad.max_radius_m),
                      options_.aprad.mloc, kCacheTagApRad);
      result.method = "AP-Rad";
      return result;
    }
    case Algorithm::kApLoc:
      throw std::logic_error("Tracker: AP-Loc trackers run as AP-Rad after training");
    case Algorithm::kCentroid: {
      return centroid_locate(db_.positions_for(gamma));
    }
    case Algorithm::kNearestAp:
    case Algorithm::kWeightedCentroid: {
      std::vector<std::pair<geo::Vec2, double>> with_rssi;
      const capture::DeviceRecord* rec = store.device(device);
      if (rec != nullptr) {
        for (const auto& [mac, contact] : rec->contacts) {
          if (!std::binary_search(gamma.begin(), gamma.end(), mac)) continue;
          const KnownAp* ap = db_.find(mac);
          if (ap != nullptr) with_rssi.emplace_back(ap->position, contact.last_rssi_dbm);
        }
      }
      return options_.algorithm == Algorithm::kNearestAp
                 ? nearest_ap_locate(with_rssi)
                 : weighted_centroid_locate(with_rssi);
    }
  }
  return {};
}

std::map<net80211::MacAddress, LocalizationResult> Tracker::locate_all(
    const capture::ObservationStore& store,
    const capture::ObservationWindow& window) const {
  const std::vector<net80211::MacAddress> devices = store.devices();
  // Per-device localizations are independent: fan out over the sorted device
  // list, slot each result by index, then fold into the map in MAC order —
  // the exact sequence the serial loop produced.
  std::vector<LocalizationResult> per_device(devices.size());
  util::parallel_map_into(
      util::ThreadPool::shared(), options_.threads, per_device,
      [&](std::size_t i) { return locate(store, devices[i], window); },
      /*chunk_size=*/4);
  std::map<net80211::MacAddress, LocalizationResult> results;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (per_device[i].ok) results.emplace(devices[i], std::move(per_device[i]));
  }
  return results;
}

LocalizationResult Tracker::cached_mloc(std::vector<geo::Circle> discs,
                                        const MLocOptions& mloc,
                                        std::uint64_t method_tag) const {
  if (!options_.gamma_cache) return mloc_locate(discs, mloc);
  const std::uint64_t key = disc_set_key(discs, method_tag);
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    const auto it = cache_->entries.find(key);
    if (it != cache_->entries.end()) {
      for (const auto& [cached_discs, cached_result] : it->second) {
        if (same_discs(cached_discs, discs)) {
          ++cache_->stats.hits;
          return cached_result;
        }
      }
    }
  }
  LocalizationResult result = mloc_locate(discs, mloc);
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    ++cache_->stats.misses;
    auto& bucket = cache_->entries[key];
    // A racing thread may have inserted the same Gamma while we computed;
    // mloc_locate is deterministic, so either copy is the same answer.
    bool present = false;
    for (const auto& [cached_discs, cached_result] : bucket) {
      if (same_discs(cached_discs, discs)) {
        present = true;
        break;
      }
    }
    if (!present) bucket.emplace_back(std::move(discs), result);
  }
  return result;
}

GammaCacheStats Tracker::gamma_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->stats;
}

}  // namespace mm::marauder
