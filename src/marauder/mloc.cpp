#include "marauder/mloc.h"

#include <algorithm>
#include <limits>

#include "geo/disc_intersection.h"

namespace mm::marauder {

namespace {

/// Fills `result` from a non-empty intersection region (vertex average, or
/// the exact centroid where the vertex set is empty or requested).
void estimate_from_region(LocalizationResult& result, const geo::DiscIntersection& region,
                          const MLocOptions& options) {
  if (options.exact_region_centroid || region.is_full_disc()) {
    // Exact centroid; also the only sensible answer when one disc is nested
    // inside all others (the vertex set Delta is empty there).
    result.ok = true;
    result.used_fallback = region.is_full_disc() && !options.exact_region_centroid;
    result.estimate = region.centroid();
    return;
  }
  // Paper-faithful path: average of the boundary vertices Delta.
  const auto vertices = region.vertices();
  if (vertices.empty()) {
    result.ok = true;
    result.used_fallback = true;
    result.estimate = region.centroid();
    return;
  }
  geo::Vec2 acc;
  for (const geo::Vec2& v : vertices) acc += v;
  result.ok = true;
  result.estimate = acc / static_cast<double>(vertices.size());
}

/// Pairwise centre distances, computed once per rejection pass. The greedy
/// loop below runs O(n) compute() calls per eviction and, before this cache,
/// re-derived all O(n^2) centre distances on every most_violating_disc()
/// call on top of that; the matrix makes each lookup a load of the exact
/// same double the direct computation would produce.
class PairwiseDistances {
 public:
  explicit PairwiseDistances(const std::vector<geo::Circle>& discs)
      : n_(discs.size()), d_(n_ * n_, 0.0) {
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = i + 1; j < n_; ++j) {
        const double d = discs[i].center.distance_to(discs[j].center);
        d_[i * n_ + j] = d;
        d_[j * n_ + i] = d;
      }
    }
  }

  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return d_[i * n_ + j];
  }

 private:
  std::size_t n_;
  std::vector<double> d_;
};

/// Index (into `retained`) of the disc most inconsistent with the rest: the
/// one whose worst pairwise gap (centre distance minus the two radii) is
/// largest. `original` maps retained positions back to rows of `dist`.
std::size_t most_violating_disc(const std::vector<geo::Circle>& retained,
                                const std::vector<std::size_t>& original,
                                const PairwiseDistances& dist) {
  std::size_t worst = 0;
  double worst_gap = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < retained.size(); ++i) {
    double gap = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < retained.size(); ++j) {
      if (i == j) continue;
      const double d = dist(original[i], original[j]);
      gap = std::max(gap, d - retained[i].radius - retained[j].radius);
    }
    if (gap > worst_gap) {
      worst_gap = gap;
      worst = i;
    }
  }
  return worst;
}

/// Greedy minimal-rejection pass: removes up to `max_outliers` discs so the
/// intersection of the survivors is non-empty. Prefers the single removal
/// whose surviving region is tightest (most information kept); when no
/// single removal helps, evicts the most violating disc and retries.
/// Returns the number of discs removed, or nullopt if the region is still
/// empty at the budget.
std::optional<std::size_t> reject_outliers(std::vector<geo::Circle>& retained,
                                           std::size_t max_outliers) {
  const PairwiseDistances dist(retained);
  std::vector<std::size_t> original(retained.size());
  for (std::size_t i = 0; i < original.size(); ++i) original[i] = i;
  std::size_t rejected = 0;
  while (rejected < max_outliers && retained.size() > 1) {
    std::size_t best = retained.size();
    double best_area = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < retained.size(); ++i) {
      std::vector<geo::Circle> candidate;
      candidate.reserve(retained.size() - 1);
      for (std::size_t j = 0; j < retained.size(); ++j) {
        if (j != i) candidate.push_back(retained[j]);
      }
      const auto region = geo::DiscIntersection::compute(candidate);
      if (!region.empty() && region.area() < best_area) {
        best = i;
        best_area = region.area();
      }
    }
    if (best == retained.size()) best = most_violating_disc(retained, original, dist);
    retained.erase(retained.begin() + static_cast<std::ptrdiff_t>(best));
    original.erase(original.begin() + static_cast<std::ptrdiff_t>(best));
    ++rejected;
    if (!geo::DiscIntersection::compute(retained).empty()) return rejected;
  }
  return std::nullopt;
}

}  // namespace

double intersected_area(const LocalizationResult& result) {
  if (result.discs.empty()) return 0.0;
  const auto region = geo::DiscIntersection::compute(result.discs);
  return region.empty() ? 0.0 : region.area();
}

bool region_covers(const LocalizationResult& result, geo::Vec2 point, double eps_m) {
  if (result.discs.empty()) return false;
  for (const geo::Circle& disc : result.discs) {
    if (!disc.contains(point, eps_m)) return false;
  }
  return true;
}

LocalizationResult mloc_locate(std::span<const geo::Circle> discs,
                               const MLocOptions& options) {
  LocalizationResult result;
  result.method = "M-Loc";
  result.num_aps = discs.size();
  result.discs.assign(discs.begin(), discs.end());
  if (discs.empty()) return result;

  // |Gamma| = 1: the disc-intersection approach reduces to nearest-AP
  // (Section III-C.1).
  if (discs.size() == 1) {
    result.ok = true;
    result.estimate = discs.front().center;
    return result;
  }

  return mloc_locate_prepared(discs, geo::DiscIntersection::compute(discs), options);
}

LocalizationResult mloc_locate_prepared(std::span<const geo::Circle> discs,
                                        const geo::DiscIntersection& prepared,
                                        const MLocOptions& options) {
  LocalizationResult result;
  result.method = "M-Loc";
  result.num_aps = discs.size();
  result.discs.assign(discs.begin(), discs.end());
  if (discs.empty()) return result;
  if (discs.size() == 1) {
    result.ok = true;
    result.estimate = discs.front().center;
    return result;
  }

  geo::DiscIntersection region = prepared;

  if (region.empty() && options.reject_outliers) {
    // Inconsistent evidence (corrupted RSSI/radius rows, ghost APs from
    // bit-flipped BSSIDs, underestimated radii): discard the fewest discs
    // that restore a non-empty intersection so the estimate degrades
    // instead of collapsing to the centroid fallback.
    std::vector<geo::Circle> retained = result.discs;
    if (const auto rejected = reject_outliers(retained, options.max_outliers)) {
      result.discs_rejected = *rejected;
      result.discs = retained;
      if (retained.size() == 1) {
        result.ok = true;
        result.estimate = retained.front().center;
        return result;
      }
      region = geo::DiscIntersection::compute(retained);
    }
  }

  if (region.empty()) {
    // Inconsistent discs (underestimated radii). Fall back to the centroid
    // of AP positions so the attack still produces an answer.
    geo::Vec2 acc;
    for (const geo::Circle& disc : result.discs) acc += disc.center;
    result.ok = true;
    result.used_fallback = true;
    result.estimate = acc / static_cast<double>(result.discs.size());
    return result;
  }

  estimate_from_region(result, region, options);
  return result;
}

}  // namespace mm::marauder
