#include "marauder/mloc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/disc_intersection.h"

namespace mm::marauder {

namespace {

/// Fills `result` from a non-empty intersection region (vertex average, or
/// the exact centroid where the vertex set is empty or requested).
void estimate_from_region(LocalizationResult& result, const geo::DiscIntersection& region,
                          const MLocOptions& options) {
  if (options.exact_region_centroid || region.is_full_disc()) {
    // Exact centroid; also the only sensible answer when one disc is nested
    // inside all others (the vertex set Delta is empty there).
    result.ok = true;
    result.used_fallback = region.is_full_disc() && !options.exact_region_centroid;
    result.estimate = region.centroid();
    return;
  }
  // Paper-faithful path: average of the boundary vertices Delta.
  const auto vertices = region.vertices();
  if (vertices.empty()) {
    result.ok = true;
    result.used_fallback = true;
    result.estimate = region.centroid();
    return;
  }
  geo::Vec2 acc;
  for (const geo::Vec2& v : vertices) acc += v;
  result.ok = true;
  result.estimate = acc / static_cast<double>(vertices.size());
}

/// Pairwise centre distances into scratch.dist (n*n, symmetric), computed
/// once per rejection pass. The greedy loop below runs O(n) compute() calls
/// per eviction and would otherwise re-derive all O(n^2) centre distances on
/// every most_violating_disc() call on top of that. The centres stream
/// through scratch.sx/sy first so the distance loop reads two flat arrays;
/// std::hypot keeps every entry the exact double Vec2::distance_to produces.
void fill_pairwise_distances(const std::vector<geo::Circle>& discs, MLocScratch& s) {
  const std::size_t n = discs.size();
  s.sx.resize(n);
  s.sy.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.sx[i] = discs[i].center.x;
    s.sy[i] = discs[i].center.y;
  }
  s.dist.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = std::hypot(s.sx[j] - s.sx[i], s.sy[j] - s.sy[i]);
      s.dist[i * n + j] = d;
      s.dist[j * n + i] = d;
    }
  }
}

/// Index (into `retained`) of the disc most inconsistent with the rest: the
/// one whose worst pairwise gap (centre distance minus the two radii) is
/// largest. `original` maps retained positions back to rows of `dist`
/// (stride `n`, the pre-eviction disc count).
std::size_t most_violating_disc(const std::vector<geo::Circle>& retained,
                                const std::vector<std::size_t>& original,
                                const std::vector<double>& dist, std::size_t n) {
  std::size_t worst = 0;
  double worst_gap = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < retained.size(); ++i) {
    double gap = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < retained.size(); ++j) {
      if (i == j) continue;
      const double d = dist[original[i] * n + original[j]];
      gap = std::max(gap, d - retained[i].radius - retained[j].radius);
    }
    if (gap > worst_gap) {
      worst_gap = gap;
      worst = i;
    }
  }
  return worst;
}

/// Greedy minimal-rejection pass over scratch.retained: removes up to
/// `max_outliers` discs so the intersection of the survivors is non-empty.
/// Prefers the single removal whose surviving region is tightest (most
/// information kept); when no single removal helps, evicts the most violating
/// disc and retries. Returns the number of discs removed, or nullopt if the
/// region is still empty at the budget. All intermediates live in the
/// scratch, so repeat calls from one worker never allocate once the buffers
/// have grown to the largest Gamma.
std::optional<std::size_t> reject_outliers(MLocScratch& s, std::size_t max_outliers) {
  std::vector<geo::Circle>& retained = s.retained;
  const std::size_t n0 = retained.size();
  fill_pairwise_distances(retained, s);
  s.original.resize(n0);
  for (std::size_t i = 0; i < n0; ++i) s.original[i] = i;
  std::size_t rejected = 0;
  while (rejected < max_outliers && retained.size() > 1) {
    std::size_t best = retained.size();
    double best_area = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < retained.size(); ++i) {
      s.candidate.clear();
      for (std::size_t j = 0; j < retained.size(); ++j) {
        if (j != i) s.candidate.push_back(retained[j]);
      }
      const auto region = geo::DiscIntersection::compute(s.candidate);
      if (!region.empty() && region.area() < best_area) {
        best = i;
        best_area = region.area();
      }
    }
    if (best == retained.size()) {
      best = most_violating_disc(retained, s.original, s.dist, n0);
    }
    retained.erase(retained.begin() + static_cast<std::ptrdiff_t>(best));
    s.original.erase(s.original.begin() + static_cast<std::ptrdiff_t>(best));
    ++rejected;
    if (!geo::DiscIntersection::compute(retained).empty()) return rejected;
  }
  return std::nullopt;
}

LocalizationResult locate_prepared_impl(std::span<const geo::Circle> discs,
                                        const geo::DiscIntersection& prepared,
                                        const MLocOptions& options, MLocScratch& scratch) {
  LocalizationResult result;
  result.method = "M-Loc";
  result.num_aps = discs.size();
  result.discs.assign(discs.begin(), discs.end());
  if (discs.empty()) return result;
  if (discs.size() == 1) {
    result.ok = true;
    result.estimate = discs.front().center;
    return result;
  }

  geo::DiscIntersection region = prepared;

  if (region.empty() && options.reject_outliers) {
    // Inconsistent evidence (corrupted RSSI/radius rows, ghost APs from
    // bit-flipped BSSIDs, underestimated radii): discard the fewest discs
    // that restore a non-empty intersection so the estimate degrades
    // instead of collapsing to the centroid fallback.
    scratch.retained.assign(result.discs.begin(), result.discs.end());
    if (const auto rejected = reject_outliers(scratch, options.max_outliers)) {
      result.discs_rejected = *rejected;
      result.discs = scratch.retained;
      if (result.discs.size() == 1) {
        result.ok = true;
        result.estimate = result.discs.front().center;
        return result;
      }
      region = geo::DiscIntersection::compute(result.discs);
    }
  }

  if (region.empty()) {
    // Inconsistent discs (underestimated radii). Fall back to the centroid
    // of AP positions so the attack still produces an answer.
    geo::Vec2 acc;
    for (const geo::Circle& disc : result.discs) acc += disc.center;
    result.ok = true;
    result.used_fallback = true;
    result.estimate = acc / static_cast<double>(result.discs.size());
    return result;
  }

  estimate_from_region(result, region, options);
  return result;
}

/// Per-thread scratch for the overloads that don't take one; keeps the
/// public convenience API allocation-free on repeat calls without changing
/// its signature or results.
MLocScratch& local_scratch() {
  static thread_local MLocScratch scratch;
  return scratch;
}

}  // namespace

double intersected_area(const LocalizationResult& result) {
  if (result.discs.empty()) return 0.0;
  const auto region = geo::DiscIntersection::compute(result.discs);
  return region.empty() ? 0.0 : region.area();
}

bool region_covers(const LocalizationResult& result, geo::Vec2 point, double eps_m) {
  if (result.discs.empty()) return false;
  for (const geo::Circle& disc : result.discs) {
    if (!disc.contains(point, eps_m)) return false;
  }
  return true;
}

LocalizationResult mloc_locate(std::span<const geo::Circle> discs,
                               const MLocOptions& options) {
  return mloc_locate(discs, options, local_scratch());
}

LocalizationResult mloc_locate(std::span<const geo::Circle> discs,
                               const MLocOptions& options, MLocScratch& scratch) {
  LocalizationResult result;
  result.method = "M-Loc";
  result.num_aps = discs.size();
  result.discs.assign(discs.begin(), discs.end());
  if (discs.empty()) return result;

  // |Gamma| = 1: the disc-intersection approach reduces to nearest-AP
  // (Section III-C.1).
  if (discs.size() == 1) {
    result.ok = true;
    result.estimate = discs.front().center;
    return result;
  }

  return locate_prepared_impl(discs, geo::DiscIntersection::compute(discs), options,
                              scratch);
}

LocalizationResult mloc_locate_prepared(std::span<const geo::Circle> discs,
                                        const geo::DiscIntersection& prepared,
                                        const MLocOptions& options) {
  return locate_prepared_impl(discs, prepared, options, local_scratch());
}

}  // namespace mm::marauder
