#include "marauder/mloc.h"

#include "geo/disc_intersection.h"

namespace mm::marauder {

double intersected_area(const LocalizationResult& result) {
  if (result.discs.empty()) return 0.0;
  const auto region = geo::DiscIntersection::compute(result.discs);
  return region.empty() ? 0.0 : region.area();
}

bool region_covers(const LocalizationResult& result, geo::Vec2 point, double eps_m) {
  if (result.discs.empty()) return false;
  for (const geo::Circle& disc : result.discs) {
    if (!disc.contains(point, eps_m)) return false;
  }
  return true;
}

LocalizationResult mloc_locate(std::span<const geo::Circle> discs,
                               const MLocOptions& options) {
  LocalizationResult result;
  result.method = "M-Loc";
  result.num_aps = discs.size();
  result.discs.assign(discs.begin(), discs.end());
  if (discs.empty()) return result;

  // |Gamma| = 1: the disc-intersection approach reduces to nearest-AP
  // (Section III-C.1).
  if (discs.size() == 1) {
    result.ok = true;
    result.estimate = discs.front().center;
    return result;
  }

  const auto region = geo::DiscIntersection::compute(discs);

  if (region.empty()) {
    // Inconsistent discs (underestimated radii). Fall back to the centroid
    // of AP positions so the attack still produces an answer.
    geo::Vec2 acc;
    for (const geo::Circle& disc : discs) acc += disc.center;
    result.ok = true;
    result.used_fallback = true;
    result.estimate = acc / static_cast<double>(discs.size());
    return result;
  }

  if (options.exact_region_centroid || region.is_full_disc()) {
    // Exact centroid; also the only sensible answer when one disc is nested
    // inside all others (the vertex set Delta is empty there).
    result.ok = true;
    result.used_fallback = region.is_full_disc() && !options.exact_region_centroid;
    result.estimate = region.centroid();
    return result;
  }

  // Paper-faithful path: average of the boundary vertices Delta.
  const auto vertices = region.vertices();
  if (vertices.empty()) {
    result.ok = true;
    result.used_fallback = true;
    result.estimate = region.centroid();
    return result;
  }
  geo::Vec2 acc;
  for (const geo::Vec2& v : vertices) acc += v;
  result.ok = true;
  result.estimate = acc / static_cast<double>(vertices.size());
  return result;
}

}  // namespace mm::marauder
