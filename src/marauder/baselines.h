// Baseline localization approaches the paper compares against:
//   * Centroid [26]: the mean of the communicable APs' positions —
//     vulnerable to skewed AP distributions (Fig 4);
//   * Nearest AP: the position of the AP with the strongest observed signal
//     (reduces to the closest-AP positioning class of Section I).
#pragma once

#include <span>
#include <utility>

#include "marauder/localization.h"

namespace mm::marauder {

[[nodiscard]] LocalizationResult centroid_locate(std::span<const geo::Vec2> ap_positions);

/// Pairs of (AP position, observed RSSI dBm); picks the strongest.
[[nodiscard]] LocalizationResult nearest_ap_locate(
    std::span<const std::pair<geo::Vec2, double>> aps_with_rssi);

/// Weighted centroid (WCL): AP positions weighted by linear received power.
/// A classic range-free refinement of the centroid; shares the centroid's
/// vulnerability to skewed AP placement but down-weights distant APs.
/// If every weight underflows to zero (extremely low RSSI), degrades to the
/// unweighted centroid with used_fallback set rather than failing.
[[nodiscard]] LocalizationResult weighted_centroid_locate(
    std::span<const std::pair<geo::Vec2, double>> aps_with_rssi);

}  // namespace mm::marauder
