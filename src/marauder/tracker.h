// The end-to-end attack pipeline (Fig 1): consume the sniffer's observation
// store and produce a location estimate for every monitored device, using a
// selectable localization algorithm. This is the class the digital
// Marauder's map display feeds from.
#pragma once

#include <map>
#include <vector>

#include "capture/observation_store.h"
#include "capture/wardrive.h"
#include "marauder/ap_database.h"
#include "marauder/aploc.h"
#include "marauder/aprad.h"
#include "marauder/baselines.h"
#include "marauder/mloc.h"

namespace mm::marauder {

enum class Algorithm { kMLoc, kApRad, kApLoc, kCentroid, kNearestAp, kWeightedCentroid };

[[nodiscard]] const char* to_string(Algorithm algorithm) noexcept;

struct TrackerOptions {
  Algorithm algorithm = Algorithm::kMLoc;
  /// Radius used by M-Loc when the database lacks one for an AP.
  double default_radius_m = 100.0;
  /// Co-observation sessionization gap for AP-Rad's evidence: contacts of
  /// one device further apart than this are separate Gamma sessions (the
  /// paper's "within a short period of time").
  double session_gap_s = 5.0;
  ApRadOptions aprad;
  ApLocOptions aploc;
  MLocOptions mloc;
};

class Tracker {
 public:
  /// External-knowledge construction (M-Loc / AP-Rad / baselines).
  Tracker(ApDatabase db, TrackerOptions options);

  /// Training-phase construction (AP-Loc): the database is built from the
  /// wardriving tuples; tuples also seed co-observation evidence.
  static Tracker from_training(const std::vector<capture::TrainingTuple>& tuples,
                               TrackerOptions options);

  /// Estimates radii (AP-Rad / AP-Loc) from every Gamma observed in the
  /// window. Must be called before locate() for those algorithms; a no-op
  /// for the others. Safe to call repeatedly as observations accumulate.
  void prepare(const capture::ObservationStore& store,
               const capture::ObservationWindow& window = {});

  [[nodiscard]] LocalizationResult locate(const capture::ObservationStore& store,
                                          const net80211::MacAddress& device,
                                          const capture::ObservationWindow& window = {}) const;

  [[nodiscard]] std::map<net80211::MacAddress, LocalizationResult> locate_all(
      const capture::ObservationStore& store,
      const capture::ObservationWindow& window = {}) const;

  [[nodiscard]] const ApDatabase& database() const noexcept { return db_; }
  [[nodiscard]] const TrackerOptions& options() const noexcept { return options_; }

 private:
  ApDatabase db_;
  TrackerOptions options_;
  std::vector<std::set<net80211::MacAddress>> training_evidence_;
  bool prepared_ = false;
};

}  // namespace mm::marauder
