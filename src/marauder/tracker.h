// The end-to-end attack pipeline (Fig 1): consume the sniffer's observation
// store and produce a location estimate for every monitored device, using a
// selectable localization algorithm. This is the class the digital
// Marauder's map display feeds from.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "capture/observation_store.h"
#include "capture/wardrive.h"
#include "marauder/ap_database.h"
#include "marauder/aploc.h"
#include "marauder/aprad.h"
#include "marauder/baselines.h"
#include "marauder/mloc.h"

namespace mm::marauder {

enum class Algorithm { kMLoc, kApRad, kApLoc, kCentroid, kNearestAp, kWeightedCentroid };

[[nodiscard]] const char* to_string(Algorithm algorithm) noexcept;

struct TrackerOptions {
  Algorithm algorithm = Algorithm::kMLoc;
  /// Radius used by M-Loc when the database lacks one for an AP.
  double default_radius_m = 100.0;
  /// Co-observation sessionization gap for AP-Rad's evidence: contacts of
  /// one device further apart than this are separate Gamma sessions (the
  /// paper's "within a short period of time").
  double session_gap_s = 5.0;
  /// Parallelism for locate_all() and prepare()'s AP-Rad constraint
  /// generation: 1 = serial, 0 = one per hardware core. Per-device tasks are
  /// merged in ascending-MAC order, so the result map is identical — bit for
  /// bit — at any setting.
  std::size_t threads = 1;
  /// Memoize localization by Gamma disc set. Co-located devices (same room,
  /// same AP contacts) share identical disc sets, and M-Loc / AP-Rad are
  /// pure functions of those discs — so repeats cost one hash + compare.
  bool gamma_cache = true;
  ApRadOptions aprad;
  ApLocOptions aploc;
  MLocOptions mloc;
};

/// Counters for the Gamma-memo cache (cumulative since the last prepare()).
struct GammaCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
};

class Tracker {
 public:
  /// External-knowledge construction (M-Loc / AP-Rad / baselines).
  Tracker(ApDatabase db, TrackerOptions options);

  /// Training-phase construction (AP-Loc): the database is built from the
  /// wardriving tuples; tuples also seed co-observation evidence.
  static Tracker from_training(const std::vector<capture::TrainingTuple>& tuples,
                               TrackerOptions options);

  /// Estimates radii (AP-Rad / AP-Loc) from every Gamma observed in the
  /// window. Must be called before locate() for those algorithms; a no-op
  /// for the others. Safe to call repeatedly as observations accumulate.
  void prepare(const capture::ObservationStore& store,
               const capture::ObservationWindow& window = {});

  [[nodiscard]] LocalizationResult locate(const capture::ObservationStore& store,
                                          const net80211::MacAddress& device,
                                          const capture::ObservationWindow& window = {}) const;

  [[nodiscard]] std::map<net80211::MacAddress, LocalizationResult> locate_all(
      const capture::ObservationStore& store,
      const capture::ObservationWindow& window = {}) const;

  [[nodiscard]] const ApDatabase& database() const noexcept { return db_; }
  [[nodiscard]] const TrackerOptions& options() const noexcept { return options_; }

  /// Hit/miss counters of the Gamma-memo cache (zeros when disabled).
  [[nodiscard]] GammaCacheStats gamma_cache_stats() const;

 private:
  struct GammaCache;  ///< keyed by hashed disc set; thread-safe

  /// M-Loc through the Gamma-memo cache. `method_tag` distinguishes the
  /// M-Loc and AP-Rad keyspaces; `mloc` must be the per-algorithm options.
  [[nodiscard]] LocalizationResult cached_mloc(std::vector<geo::Circle> discs,
                                               const MLocOptions& mloc,
                                               std::uint64_t method_tag) const;

  ApDatabase db_;
  TrackerOptions options_;
  std::vector<std::set<net80211::MacAddress>> training_evidence_;
  bool prepared_ = false;
  std::shared_ptr<GammaCache> cache_;  ///< shared_ptr keeps Tracker movable
};

}  // namespace mm::marauder
