// The end-to-end attack pipeline (Fig 1): consume the sniffer's observation
// store and produce a location estimate for every monitored device, using a
// selectable localization algorithm. This is the class the digital
// Marauder's map display feeds from.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "capture/observation_store.h"
#include "capture/wardrive.h"
#include "marauder/ap_database.h"
#include "marauder/aploc.h"
#include "marauder/aprad.h"
#include "marauder/baselines.h"
#include "marauder/mloc.h"

namespace mm::marauder {

enum class Algorithm { kMLoc, kApRad, kApLoc, kCentroid, kNearestAp, kWeightedCentroid };

[[nodiscard]] const char* to_string(Algorithm algorithm) noexcept;

struct TrackerOptions {
  Algorithm algorithm = Algorithm::kMLoc;
  /// Radius used by M-Loc when the database lacks one for an AP.
  double default_radius_m = 100.0;
  /// Co-observation sessionization gap for AP-Rad's evidence: contacts of
  /// one device further apart than this are separate Gamma sessions (the
  /// paper's "within a short period of time").
  double session_gap_s = 5.0;
  /// Parallelism for locate_all() and prepare()'s AP-Rad constraint
  /// generation: 1 = serial, 0 = one per hardware core. Per-device tasks are
  /// merged in ascending-MAC order, so the result map is identical — bit for
  /// bit — at any setting.
  std::size_t threads = 1;
  /// Memoize localization by Gamma disc set. Co-located devices (same room,
  /// same AP contacts) share identical disc sets, and M-Loc / AP-Rad are
  /// pure functions of those discs — so repeats cost one hash + compare.
  bool gamma_cache = true;
  /// locate_all() measures the duplicate-Gamma ratio of each batch and only
  /// engages the cross-call memo when it clears this bar. Afterburner
  /// shipped the memo unconditionally; on low-duplication captures it was a
  /// mutex + map insert per device for nothing (and the single mutex
  /// serialized the whole parallel batch). Within-batch duplicate *grouping*
  /// is always on when gamma_cache is — only the shared memo is gated.
  double gamma_cache_min_duplicate_ratio = 0.05;
  /// Slipstream arena path for locate_all (M-Loc / AP-Rad): Gammas stream
  /// through the database's SoA disc slab, duplicates are grouped before any
  /// localization runs, and per-worker scratch makes the locate loop
  /// allocation-free. false = Afterburner's per-device loop (A/B reference;
  /// bit-identical results either way).
  bool soa_arena = true;
  ApRadOptions aprad;
  ApLocOptions aploc;
  MLocOptions mloc;
};

/// Counters for the Gamma-memo cache (cumulative since the last prepare()).
/// duplicate_ratio / engaged describe the most recent locate_all batch: the
/// measured fraction of devices whose disc set duplicated an earlier
/// device's, and whether that cleared gamma_cache_min_duplicate_ratio.
struct GammaCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  double duplicate_ratio = 0.0;
  bool engaged = false;
};

/// Per-stage wall-clock breakdown of one locate_all() call (filled when the
/// caller passes a profile pointer; used by bench_offline_throughput).
struct LocateAllProfile {
  double plan_s = 0.0;    ///< Gamma gather + slab key build + duplicate grouping
  double locate_s = 0.0;  ///< parallel localization of unique disc sets
  double merge_s = 0.0;   ///< fan-out to devices + ordered map fold
  std::size_t devices = 0;
  std::size_t unique_gammas = 0;    ///< disc sets actually localized
  std::size_t outlier_devices = 0;  ///< results that rejected >= 1 disc
  double duplicate_ratio = 0.0;     ///< (devices - unique_gammas) / devices
  bool cache_engaged = false;       ///< cross-call memo used for this batch
};

class Tracker {
 public:
  /// External-knowledge construction (M-Loc / AP-Rad / baselines).
  Tracker(ApDatabase db, TrackerOptions options);

  /// Training-phase construction (AP-Loc): the database is built from the
  /// wardriving tuples; tuples also seed co-observation evidence.
  static Tracker from_training(const std::vector<capture::TrainingTuple>& tuples,
                               TrackerOptions options);

  /// Estimates radii (AP-Rad / AP-Loc) from every Gamma observed in the
  /// window. Must be called before locate() for those algorithms; a no-op
  /// for the others. Safe to call repeatedly as observations accumulate.
  void prepare(const capture::ObservationStore& store,
               const capture::ObservationWindow& window = {});

  [[nodiscard]] LocalizationResult locate(const capture::ObservationStore& store,
                                          const net80211::MacAddress& device,
                                          const capture::ObservationWindow& window = {}) const;

  /// Locates every monitored device. With soa_arena (M-Loc / AP-Rad) the
  /// batch runs plan -> group -> locate-unique -> fan-out; otherwise one
  /// locate() per device. Either way the result map is bit-identical to the
  /// serial per-device loop at any thread count. `profile`, when non-null,
  /// receives the per-stage timing breakdown.
  [[nodiscard]] std::map<net80211::MacAddress, LocalizationResult> locate_all(
      const capture::ObservationStore& store,
      const capture::ObservationWindow& window = {},
      LocateAllProfile* profile = nullptr) const;

  [[nodiscard]] const ApDatabase& database() const noexcept { return db_; }
  [[nodiscard]] const TrackerOptions& options() const noexcept { return options_; }

  /// Hit/miss counters of the Gamma-memo cache (zeros when disabled).
  [[nodiscard]] GammaCacheStats gamma_cache_stats() const;

 private:
  struct GammaCache;  ///< sharded, keyed by hashed disc set; thread-safe

  /// M-Loc through the Gamma-memo cache. `method_tag` distinguishes the
  /// M-Loc and AP-Rad keyspaces; `mloc` must be the per-algorithm options.
  [[nodiscard]] LocalizationResult cached_mloc(std::vector<geo::Circle> discs,
                                               const MLocOptions& mloc,
                                               std::uint64_t method_tag) const;

  /// Slipstream batch path for M-Loc / AP-Rad (see locate_all).
  [[nodiscard]] std::map<net80211::MacAddress, LocalizationResult> locate_all_arena(
      const capture::ObservationStore& store, const capture::ObservationWindow& window,
      LocateAllProfile* profile) const;

  ApDatabase db_;
  TrackerOptions options_;
  std::vector<std::set<net80211::MacAddress>> training_evidence_;
  bool prepared_ = false;
  std::shared_ptr<GammaCache> cache_;  ///< shared_ptr keeps Tracker movable
};

}  // namespace mm::marauder
