#include "marauder/identity.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <numeric>

#include "util/thread_pool.h"

namespace mm::marauder {

namespace {

/// Plain union-find over device indices. unite(a, b) grafts a's root under
/// b's root — the exact orientation the legacy linker used, which (together
/// with processing link pairs in ascending (i, j) order over MAC-sorted
/// devices) reproduces its forest, its root values, and therefore its
/// std::map-ordered group output bit for bit.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

enum class Signal : std::uint8_t { kSsid = 0, kSeq = 1, kGamma = 2 };

/// One piece of linking evidence between two devices (indices into the
/// MAC-sorted working array, a < b).
struct Edge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  Signal signal = Signal::kSsid;

  friend bool operator<(const Edge& x, const Edge& y) noexcept {
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return static_cast<std::uint8_t>(x.signal) < static_cast<std::uint8_t>(y.signal);
  }
  friend bool operator==(const Edge& x, const Edge& y) noexcept {
    return x.a == y.a && x.b == y.b && x.signal == y.signal;
  }
};

Edge make_edge(std::size_t i, std::size_t j, Signal signal) noexcept {
  Edge e;
  e.a = static_cast<std::uint32_t>(std::min(i, j));
  e.b = static_cast<std::uint32_t>(std::max(i, j));
  e.signal = signal;
  return e;
}

/// Forward distance of the 12-bit sequence counter from `last` to `first`
/// (how many frames the radio transmitted in between, mod 4096).
std::uint16_t seq_forward_delta(std::uint16_t last, std::uint16_t first) noexcept {
  return static_cast<std::uint16_t>((first - last) & 0x0FFF);
}

/// APs active in the death-window of a vanishing device: every AP whose
/// contact span reaches into the last `window_s` seconds of the device's
/// life. Output ascending (contacts are stored ascending by AP).
void gamma_tail(const DeviceSummary& dev, double window_s,
                std::vector<net80211::MacAddress>& out) {
  out.clear();
  const sim::SimTime cut = dev.last_seen - window_s;
  for (const ContactSpan& c : dev.contacts) {
    if (c.last_seen >= cut) out.push_back(c.ap);
  }
}

/// APs active in the birth-window of a fresh device (first `window_s`
/// seconds). Output ascending.
void gamma_head(const DeviceSummary& dev, double window_s,
                std::vector<net80211::MacAddress>& out) {
  out.clear();
  const sim::SimTime cut = dev.first_seen + window_s;
  for (const ContactSpan& c : dev.contacts) {
    if (c.first_seen <= cut) out.push_back(c.ap);
  }
}

/// |a ∩ b| over two ascending MAC vectors.
std::size_t sorted_common(const std::vector<net80211::MacAddress>& a,
                          const std::vector<net80211::MacAddress>& b) noexcept {
  std::size_t common = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

}  // namespace

DeviceSummary summarize_device(const capture::DeviceRecord& record) {
  DeviceSummary s;
  s.mac = record.mac;
  s.first_seen = record.first_seen;
  s.last_seen = record.last_seen;
  s.directed_ssids = record.directed_ssids;
  s.seq_frames = record.seq_frames;
  s.first_seq = record.first_seq;
  s.last_seq = record.last_seq;
  s.first_seq_time = record.first_seq_time;
  s.last_seq_time = record.last_seq_time;
  s.contacts.reserve(record.contacts.size());
  for (const auto& [ap, contact] : record.contacts) {
    s.contacts.push_back(ContactSpan{ap, contact.first_seen, contact.last_seen});
  }
  return s;
}

const ResolvedIdentity* IdentityMap::identity_of(
    const net80211::MacAddress& mac) const {
  const auto it = by_mac.find(mac);
  if (it == by_mac.end()) return nullptr;
  return &identities[it->second];
}

IdentityResolver::IdentityResolver(ResolverOptions options)
    : options_(options) {}

void IdentityResolver::upsert(DeviceSummary summary) {
  const auto it = index_.find(summary.mac);
  if (it != index_.end()) {
    summaries_[it->second] = std::move(summary);
    return;
  }
  index_.emplace(summary.mac, summaries_.size());
  summaries_.push_back(std::move(summary));
}

void IdentityResolver::ingest_store(const capture::ObservationStore& store) {
  for (const net80211::MacAddress& mac : store.devices()) {
    upsert(summarize_device(*store.device(mac)));
  }
}

IdentityMap IdentityResolver::resolve() const {
  stats_ = ResolverStats{};
  stats_.devices = summaries_.size();

  // Working order: ascending MAC, independent of upsert order. This is the
  // order store.devices() hands the batch path, so live ingestion (which
  // upserts in shard-merge order) resolves to the identical map.
  std::vector<std::size_t> order(summaries_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return summaries_[a].mac < summaries_[b].mac;
  });
  std::vector<const DeviceSummary*> devices;
  devices.reserve(order.size());
  for (const std::size_t idx : order) devices.push_back(&summaries_[idx]);
  const std::size_t n = devices.size();

  // SSID fingerprints + popularity filtering (always computed: the filtered
  // fingerprint is part of the identity output even when the SSID signal is
  // not generating edges).
  std::vector<std::set<std::string>> fingerprints(n);
  std::map<std::string, std::size_t> ssid_popularity;
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& ssid : devices[i]->directed_ssids) {
      fingerprints[i].insert(ssid);
      ++ssid_popularity[ssid];
    }
  }
  // An SSID probed by a crowd identifies the crowd, not a user. The cutoff
  // is the larger of the absolute floor (legacy behaviour, right for small
  // captures) and a fixed fraction of the population (what actually scales:
  // at 10k devices a campus-wide "eduroam" trips the fraction long before
  // rare home SSIDs do).
  std::size_t popularity_cutoff = options_.max_ssid_popularity;
  if (options_.max_ssid_popularity_fraction > 0.0) {
    const auto scaled = static_cast<std::size_t>(
        std::ceil(options_.max_ssid_popularity_fraction * static_cast<double>(n)));
    popularity_cutoff = std::max(popularity_cutoff, scaled);
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto& fp = fingerprints[i];
    for (auto it = fp.begin(); it != fp.end();) {
      if (ssid_popularity[*it] > popularity_cutoff) {
        it = fp.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::vector<Edge> edges;

  // --- (a) SSID fingerprint overlap (the legacy linker's pairwise scan,
  // chunk-parallel over the outer index; chunk-ordered concatenation keeps
  // the edge list — and everything downstream — identical at any thread
  // count).
  if (options_.signals.ssid_fingerprint && n > 1) {
    const std::size_t parallelism = options_.threads == 0
                                        ? util::ThreadPool::default_parallelism()
                                        : options_.threads;
    const std::size_t chunk =
        util::ThreadPool::balanced_chunk(n, parallelism, /*min_chunk=*/16);
    const std::size_t chunks = (n + chunk - 1) / chunk;
    std::vector<std::vector<Edge>> partials(chunks);
    util::ThreadPool::shared().run_chunks(
        n, chunk, parallelism, [&](std::size_t c, std::size_t begin, std::size_t end) {
          std::vector<Edge>& out = partials[c];
          for (std::size_t i = begin; i < end; ++i) {
            if (fingerprints[i].empty()) continue;
            for (std::size_t j = i + 1; j < n; ++j) {
              std::size_t overlap = 0;
              for (const std::string& ssid : fingerprints[j]) {
                overlap += fingerprints[i].count(ssid);
              }
              if (overlap >= options_.min_overlap) {
                out.push_back(make_edge(i, j, Signal::kSsid));
              }
            }
          }
        });
    for (std::vector<Edge>& part : partials) {
      edges.insert(edges.end(), part.begin(), part.end());
      stats_.ssid_edges += part.size();
    }
  }

  // --- (b) sequence continuity across rotation: the vanished device's
  // 12-bit counter resumes (a short forward hop, mod 4096) on a fresh MAC
  // whose seq trace starts within seq_max_gap_s. Candidate pairs come from a
  // first-seq-time-sorted index, so the scan is near-linear.
  if (options_.signals.sequence_continuity && n > 1) {
    std::vector<std::size_t> by_first_seq_time;
    for (std::size_t i = 0; i < n; ++i) {
      if (devices[i]->has_seq()) by_first_seq_time.push_back(i);
    }
    std::sort(by_first_seq_time.begin(), by_first_seq_time.end(),
              [&](std::size_t a, std::size_t b) {
                if (devices[a]->first_seq_time != devices[b]->first_seq_time) {
                  return devices[a]->first_seq_time < devices[b]->first_seq_time;
                }
                return a < b;
              });
    std::vector<sim::SimTime> keys;
    keys.reserve(by_first_seq_time.size());
    for (const std::size_t i : by_first_seq_time) keys.push_back(devices[i]->first_seq_time);

    // A seam is claimed only when the match is *mutual best*: b is the
    // smallest forward counter hop among a's candidate successors AND a is
    // the smallest hop among b's candidate predecessors. A dying pseudonym
    // thus links to at most one newborn and vice versa — without this, a
    // crowd of devices rotating on similar schedules chains into one giant
    // false identity the moment two unrelated counters drift within
    // seq_max_delta of each other. Ties keep the first candidate in
    // deterministic scan order (a ascending by MAC, b ascending by
    // first_seq_time), so resolution stays order- and thread-independent.
    const std::size_t before = edges.size();
    constexpr std::size_t kUnmatched = static_cast<std::size_t>(-1);
    std::vector<std::size_t> best_successor(n, kUnmatched);
    std::vector<std::uint16_t> successor_delta(n, 0);
    std::vector<std::size_t> best_predecessor(n, kUnmatched);
    std::vector<std::uint16_t> predecessor_delta(n, 0);
    for (std::size_t a = 0; a < n; ++a) {
      const DeviceSummary& da = *devices[a];
      if (!da.has_seq()) continue;
      const auto lo = std::lower_bound(keys.begin(), keys.end(), da.last_seq_time);
      const auto hi = std::upper_bound(keys.begin(), keys.end(),
                                       da.last_seq_time + options_.seq_max_gap_s);
      for (auto it = lo; it != hi; ++it) {
        const std::size_t b = by_first_seq_time[static_cast<std::size_t>(it - keys.begin())];
        if (b == a) continue;
        const DeviceSummary& db = *devices[b];
        // The two pseudonyms must not coexist: a rotation ends one MAC's
        // life before the next begins.
        if (db.first_seen < da.last_seen) continue;
        const std::uint16_t delta = seq_forward_delta(da.last_seq, db.first_seq);
        if (delta == 0 || delta > options_.seq_max_delta) continue;
        if (best_successor[a] == kUnmatched || delta < successor_delta[a]) {
          best_successor[a] = b;
          successor_delta[a] = delta;
        }
        if (best_predecessor[b] == kUnmatched || delta < predecessor_delta[b]) {
          best_predecessor[b] = a;
          predecessor_delta[b] = delta;
        }
      }
    }
    for (std::size_t a = 0; a < n; ++a) {
      const std::size_t b = best_successor[a];
      if (b != kUnmatched && best_predecessor[b] == a) {
        edges.push_back(make_edge(a, b, Signal::kSeq));
      }
    }
    stats_.seq_edges = edges.size() - before;
  }

  // --- (c) Gamma similarity + temporal adjacency: a device vanishes and a
  // fresh MAC appears within gamma_max_gap_s hearing a near-identical AP
  // set. Compared over death/birth windows so long-lived devices that
  // wandered far apart still match on where they actually rotated.
  if (options_.signals.gamma_temporal && n > 1) {
    std::vector<std::size_t> by_first_seen(n);
    std::iota(by_first_seen.begin(), by_first_seen.end(), 0);
    std::sort(by_first_seen.begin(), by_first_seen.end(),
              [&](std::size_t a, std::size_t b) {
                if (devices[a]->first_seen != devices[b]->first_seen) {
                  return devices[a]->first_seen < devices[b]->first_seen;
                }
                return a < b;
              });
    std::vector<sim::SimTime> keys(n);
    for (std::size_t k = 0; k < n; ++k) keys[k] = devices[by_first_seen[k]]->first_seen;

    // Same mutual-best discipline as the sequence signal: in a dense
    // population every death window overlaps several births that hear
    // roughly the same campus APs, and accepting them all chains unrelated
    // devices together. Each vanished pseudonym nominates its
    // highest-Jaccard successor, each newborn its highest-Jaccard
    // predecessor; only mutual nominations become edges. Ties keep the
    // first candidate in deterministic scan order.
    const std::size_t before = edges.size();
    constexpr std::size_t kUnmatched = static_cast<std::size_t>(-1);
    std::vector<std::size_t> best_successor(n, kUnmatched);
    std::vector<double> successor_jaccard(n, 0.0);
    std::vector<std::size_t> best_predecessor(n, kUnmatched);
    std::vector<double> predecessor_jaccard(n, 0.0);
    std::vector<net80211::MacAddress> tail, head;
    for (std::size_t a = 0; a < n; ++a) {
      const DeviceSummary& da = *devices[a];
      const auto lo = std::lower_bound(keys.begin(), keys.end(), da.last_seen);
      const auto hi = std::upper_bound(keys.begin(), keys.end(),
                                       da.last_seen + options_.gamma_max_gap_s);
      if (lo == hi) continue;
      gamma_tail(da, options_.gamma_window_s, tail);
      if (tail.size() < options_.gamma_min_common) continue;
      for (auto it = lo; it != hi; ++it) {
        const std::size_t b = by_first_seen[static_cast<std::size_t>(it - keys.begin())];
        if (b == a) continue;
        const DeviceSummary& db = *devices[b];
        if (db.first_seen < da.last_seen) continue;  // coexistence veto
        gamma_head(db, options_.gamma_window_s, head);
        if (head.size() < options_.gamma_min_common) continue;
        const std::size_t common = sorted_common(tail, head);
        if (common < options_.gamma_min_common) continue;
        const std::size_t unioned = tail.size() + head.size() - common;
        const double jaccard =
            unioned == 0 ? 0.0 : static_cast<double>(common) / static_cast<double>(unioned);
        if (jaccard + 1e-12 < options_.gamma_min_jaccard) continue;
        if (best_successor[a] == kUnmatched || jaccard > successor_jaccard[a]) {
          best_successor[a] = b;
          successor_jaccard[a] = jaccard;
        }
        if (best_predecessor[b] == kUnmatched || jaccard > predecessor_jaccard[b]) {
          best_predecessor[b] = a;
          predecessor_jaccard[b] = jaccard;
        }
      }
    }
    for (std::size_t a = 0; a < n; ++a) {
      const std::size_t b = best_successor[a];
      if (b != kUnmatched && best_predecessor[b] == a) {
        edges.push_back(make_edge(a, b, Signal::kGamma));
      }
    }
    stats_.gamma_edges = edges.size() - before;
  }

  // --- evidence accumulation: per-pair score over deduplicated edges, then
  // union in ascending (i, j) order (the legacy unite sequence).
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  DisjointSets sets(n);
  std::size_t e = 0;
  while (e < edges.size()) {
    const std::uint32_t a = edges[e].a;
    const std::uint32_t b = edges[e].b;
    double score = 0.0;
    for (; e < edges.size() && edges[e].a == a && edges[e].b == b; ++e) {
      switch (edges[e].signal) {
        case Signal::kSsid: score += options_.ssid_weight; break;
        case Signal::kSeq: score += options_.seq_weight; break;
        case Signal::kGamma: score += options_.gamma_weight; break;
      }
    }
    if (score + 1e-9 >= options_.link_threshold) {
      sets.unite(a, b);
      ++stats_.linked_pairs;
    }
  }

  // --- assembly, exactly as the legacy linker: members in first-seen order,
  // groups in ascending union-find root order.
  std::vector<std::size_t> member_order(n);
  std::iota(member_order.begin(), member_order.end(), 0);
  std::sort(member_order.begin(), member_order.end(), [&](std::size_t a, std::size_t b) {
    return devices[a]->first_seen < devices[b]->first_seen;
  });
  std::map<std::size_t, ResolvedIdentity> groups;
  for (const std::size_t i : member_order) {
    ResolvedIdentity& identity = groups[sets.find(i)];
    if (identity.macs.empty()) {
      identity.first_seen = devices[i]->first_seen;
      identity.last_seen = devices[i]->last_seen;
    } else {
      identity.first_seen = std::min(identity.first_seen, devices[i]->first_seen);
      identity.last_seen = std::max(identity.last_seen, devices[i]->last_seen);
    }
    identity.macs.push_back(devices[i]->mac);
    identity.fingerprint.insert(fingerprints[i].begin(), fingerprints[i].end());
  }

  IdentityMap map;
  map.identities.reserve(groups.size());
  for (auto& [root, identity] : groups) {
    identity.id = static_cast<std::uint32_t>(map.identities.size());
    for (const net80211::MacAddress& mac : identity.macs) {
      map.by_mac.emplace(mac, identity.id);
    }
    map.identities.push_back(std::move(identity));
  }
  stats_.identities = map.identities.size();
  return map;
}

IdentityMap resolve_identities(const capture::ObservationStore& store,
                               const ResolverOptions& options) {
  IdentityResolver resolver(options);
  resolver.ingest_store(store);
  return resolver.resolve();
}

}  // namespace mm::marauder
