// The attacker's AP knowledge base — the WiGLE substitute (Section II-A).
// Stores per-AP location (and, when available, maximum transmission
// distance), round-trips through a WiGLE-style CSV, and projects geodetic
// records into the local tangent plane the algorithms work in.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/circle.h"
#include "geo/geodetic.h"
#include "geo/spatial_index.h"
#include "net80211/mac_address.h"
#include "sim/scenario.h"
#include "util/result.h"

namespace mm::marauder {

/// Per-record quarantine counters for the CSV importers: malformed rows are
/// skipped and counted, never fatal (a week of wardriving should survive a
/// few garbled GPS lines).
struct CsvImportStats {
  std::size_t rows_total = 0;
  std::size_t rows_loaded = 0;
  std::size_t quarantined = 0;
};

struct KnownAp {
  net80211::MacAddress bssid;
  std::string ssid;
  geo::Vec2 position;                 ///< local ENU meters
  std::optional<double> radius_m;     ///< max transmission distance when known
};

class ApDatabase {
 public:
  ApDatabase();
  ApDatabase(const ApDatabase& other);
  ApDatabase& operator=(const ApDatabase& other);
  ApDatabase(ApDatabase&& other) noexcept;
  ApDatabase& operator=(ApDatabase&& other) noexcept;
  ~ApDatabase();

  void add(KnownAp ap);

  [[nodiscard]] std::size_t size() const noexcept { return aps_.size(); }
  [[nodiscard]] bool empty() const noexcept { return aps_.empty(); }
  [[nodiscard]] const KnownAp* find(const net80211::MacAddress& bssid) const;
  /// Records in ascending-BSSID order. The backing store is a hash map (one
  /// mixed-u64 probe per disc lookup on the locate hot path); the sorted
  /// view is built lazily, cached, and invalidated by add() — set_radius /
  /// strip_radii mutate record fields in place and cannot reorder the
  /// pointer vector, so they keep the cache (set_radius / strip_radii patch
  /// the radius slab in place for the same reason).
  [[nodiscard]] const std::vector<const KnownAp*>& sorted_records() const;

  /// Flat SoA slab over sorted_records(): x[i]/y[i] are record i's position,
  /// radius[i] its stored radius or NaN when unknown (callers substitute
  /// their default). Built lazily alongside the sorted view and kept in
  /// lock-step with it: set_radius patches radius[i] in place, add()
  /// invalidates. Slipstream's locate arena and AP-Rad's constraint prep
  /// read positions straight out of these streams instead of re-gathering
  /// KnownAp structs per Gamma member.
  struct DiscSlabView {
    std::span<const double> x;
    std::span<const double> y;
    std::span<const double> radius;  ///< NaN = unknown
  };
  [[nodiscard]] DiscSlabView disc_slab() const;

  /// Rank of a BSSID in sorted_records() (= its index into the slab), or
  /// kNoRank when unknown. One mixed-u64 hash probe, same cost as find().
  static constexpr std::uint32_t kNoRank = 0xffffffffu;
  [[nodiscard]] std::uint32_t rank_of(const net80211::MacAddress& bssid) const;

  /// The BSSID -> rank map behind rank_of, returned by reference after the
  /// one locked lazy build (same read-only concurrency contract as
  /// sorted_records). Hot loops probe this directly so a million Gamma
  /// members don't take a mutex each.
  using RankMap =
      std::unordered_map<net80211::MacAddress, std::uint32_t, net80211::MacHasher>;
  [[nodiscard]] const RankMap& rank_index() const;

  /// APs whose position lies within `radius_m` of `center`, in ascending
  /// BSSID order, served by a lazily built Atlas grid (invalidated whenever
  /// add() can move a position). Results match a brute-force scan over
  /// sorted_records() exactly, boundary included.
  [[nodiscard]] std::vector<const KnownAp*> aps_in_range(geo::Vec2 center,
                                                         double radius_m) const;
  /// The k nearest APs to `center`, ordered by (distance, BSSID).
  [[nodiscard]] std::vector<const KnownAp*> nearest_aps(geo::Vec2 center,
                                                        std::size_t k) const;

  /// Overwrites the stored radius of one AP (used by AP-Rad's LP output).
  void set_radius(const net80211::MacAddress& bssid, double radius_m);
  /// Drops all radius knowledge (simulating location-only WiGLE data).
  void strip_radii();

  /// Discs for the subset of Gamma present in the database; APs with unknown
  /// radius use `default_radius_m`. Unknown BSSIDs are skipped.
  [[nodiscard]] std::vector<geo::Circle> discs_for(
      const std::set<net80211::MacAddress>& gamma, double default_radius_m) const;
  /// Same over a sorted MAC vector (the allocation-free Gamma produced by
  /// ObservationStore::gamma_sorted); identical output for identical input.
  [[nodiscard]] std::vector<geo::Circle> discs_for(
      std::span<const net80211::MacAddress> gamma_sorted, double default_radius_m) const;

  /// Positions of Gamma's members known to the database.
  [[nodiscard]] std::vector<geo::Vec2> positions_for(
      const std::set<net80211::MacAddress>& gamma) const;
  [[nodiscard]] std::vector<geo::Vec2> positions_for(
      std::span<const net80211::MacAddress> gamma_sorted) const;

  /// Builds the ground-truth database from a simulated deployment; radii are
  /// included only when `include_radii` (M-Loc scenario) and dropped
  /// otherwise (AP-Rad scenario).
  [[nodiscard]] static ApDatabase from_truth(std::span<const sim::ApTruth> truth,
                                             bool include_radii);

  /// CSV round-trip ("bssid,ssid,lat,lon[,radius_m]"); positions are stored
  /// geodetically and projected through `frame`. Fails (as a Result) only
  /// when the file is unreadable; malformed rows are quarantined into
  /// `stats` when given.
  [[nodiscard]] static util::Result<ApDatabase> from_csv(const std::filesystem::path& path,
                                                         const geo::EnuFrame& frame,
                                                         CsvImportStats* stats = nullptr);
  void to_csv(const std::filesystem::path& path, const geo::EnuFrame& frame) const;

  /// Imports a WiGLE export file (the "WigleWifi-1.4" CSV app format: a
  /// pre-header line, then netid,ssid,authmode,firstseen,channel,rssi,
  /// currentlatitude,currentlongitude,...,type). Non-WIFI rows and rows
  /// with unparsable BSSIDs or coordinates are quarantined; duplicate
  /// BSSIDs keep the last sighting. WiGLE carries no transmission
  /// distances — radii stay unset (the AP-Rad scenario, Section III-C.2).
  [[nodiscard]] static util::Result<ApDatabase> from_wigle_csv(
      const std::filesystem::path& path, const geo::EnuFrame& frame,
      CsvImportStats* stats = nullptr);

 private:
  /// Lazily built derived views. Kept behind a unique_ptr so the database
  /// stays movable/copyable (copies start with cold caches — the cached
  /// pointers refer into the source map). A mutex serializes lazy builds so
  /// const readers (locate_all worker threads) may race on first use; the
  /// returned views themselves are only read, never handed out mutable.
  /// Mutations (add / CSV import) follow the repo-wide convention that the
  /// database is not concurrently read while being written.
  struct Caches;
  Caches& caches() const;
  void invalidate_caches();
  /// Builds the sorted view + SoA slab + rank index; caller holds c.mutex.
  void build_sorted_locked(Caches& c) const;

  std::unordered_map<net80211::MacAddress, KnownAp, net80211::MacHasher> aps_;
  mutable std::unique_ptr<Caches> caches_;
};

}  // namespace mm::marauder
