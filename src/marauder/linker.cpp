#include "marauder/linker.h"

#include <algorithm>
#include <numeric>

namespace mm::marauder {

namespace {

/// Plain union-find over device indices.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<LinkedIdentity> link_identities(const capture::ObservationStore& store,
                                            const LinkerOptions& options) {
  struct Device {
    net80211::MacAddress mac;
    sim::SimTime first_seen = 0.0;
    std::set<std::string> fingerprint;
  };
  std::vector<Device> devices;
  std::map<std::string, std::size_t> ssid_popularity;
  for (const auto& mac : store.devices()) {
    const capture::DeviceRecord* rec = store.device(mac);
    Device dev;
    dev.mac = mac;
    dev.first_seen = rec->first_seen;
    for (const std::string& ssid : rec->directed_ssids) {
      dev.fingerprint.insert(ssid);
      ++ssid_popularity[ssid];
    }
    devices.push_back(std::move(dev));
  }

  // Drop over-popular SSIDs from every fingerprint: they identify a crowd,
  // not a user.
  for (Device& dev : devices) {
    for (auto it = dev.fingerprint.begin(); it != dev.fingerprint.end();) {
      if (ssid_popularity[*it] > options.max_ssid_popularity) {
        it = dev.fingerprint.erase(it);
      } else {
        ++it;
      }
    }
  }

  DisjointSets sets(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].fingerprint.empty()) continue;
    for (std::size_t j = i + 1; j < devices.size(); ++j) {
      std::size_t overlap = 0;
      for (const std::string& ssid : devices[j].fingerprint) {
        overlap += devices[i].fingerprint.count(ssid);
      }
      if (overlap >= options.min_overlap) sets.unite(i, j);
    }
  }

  std::map<std::size_t, LinkedIdentity> groups;
  // Assemble groups in first-seen order so macs[0] is the earliest alias.
  std::vector<std::size_t> order(devices.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return devices[a].first_seen < devices[b].first_seen;
  });
  for (const std::size_t i : order) {
    LinkedIdentity& identity = groups[sets.find(i)];
    identity.macs.push_back(devices[i].mac);
    identity.fingerprint.insert(devices[i].fingerprint.begin(),
                                devices[i].fingerprint.end());
  }

  std::vector<LinkedIdentity> result;
  result.reserve(groups.size());
  for (auto& [root, identity] : groups) result.push_back(std::move(identity));
  return result;
}

}  // namespace mm::marauder
