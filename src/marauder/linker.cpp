#include "marauder/linker.h"

#include "marauder/identity.h"

namespace mm::marauder {

std::vector<LinkedIdentity> link_identities(const capture::ObservationStore& store,
                                            const LinkerOptions& options) {
  ResolverOptions resolver_options;
  resolver_options.signals.ssid_fingerprint = true;
  resolver_options.signals.sequence_continuity = false;
  resolver_options.signals.gamma_temporal = false;
  resolver_options.min_overlap = options.min_overlap;
  resolver_options.max_ssid_popularity = options.max_ssid_popularity;
  resolver_options.max_ssid_popularity_fraction = options.max_ssid_popularity_fraction;

  const IdentityMap map = resolve_identities(store, resolver_options);
  std::vector<LinkedIdentity> result;
  result.reserve(map.identities.size());
  for (const ResolvedIdentity& identity : map.identities) {
    LinkedIdentity out;
    out.macs = identity.macs;
    out.fingerprint = identity.fingerprint;
    result.push_back(std::move(out));
  }
  return result;
}

}  // namespace mm::marauder
