// AP-Loc (Section III-C.3 / III-D): no external AP knowledge at all. From
// wardriving training tuples (location, heard-AP set) the attacker first
// places each AP by disc-intersecting its training locations with a
// theoretical-upper-bound radius, then estimates radii with AP-Rad's LP, and
// finally locates mobiles with M-Loc.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "capture/wardrive.h"
#include "marauder/ap_database.h"
#include "marauder/aprad.h"
#include "marauder/localization.h"

namespace mm::marauder {

enum class ApPlacement {
  /// The paper's method: intersect discs of the theoretical upper bound
  /// around the hearing locations, take the region's centroid.
  kBoundedIntersection,
  /// Refinement: center of the smallest circle enclosing the hearing
  /// locations — the limit of the intersection as the disc radius shrinks
  /// to the smallest feasible value (needs no radius bound at all).
  kSmallestEnclosingCircle,
};

struct ApLocOptions {
  ApPlacement placement = ApPlacement::kBoundedIntersection;
  /// Theoretical upper bound on AP transmission distance used as the disc
  /// radius around each training location (Section III-C.3).
  double training_disc_radius_m = 150.0;
  /// AP-Rad stage options. AP-Loc defaults to the exact-region centroid for
  /// the final M-Loc (the paper's own wording for this scenario: "estimate
  /// ... as the centroid of the intersected area"); the vertex-average
  /// shortcut is badly biased once both positions and radii carry training
  /// noise (see bench_ablation).
  ApRadOptions aprad{.mloc = {.exact_region_centroid = true}};
};

/// Estimated AP positions, keyed by BSSID; APs never heard in any tuple do
/// not appear.
[[nodiscard]] std::map<net80211::MacAddress, geo::Vec2> aploc_estimate_positions(
    const std::vector<capture::TrainingTuple>& tuples, const ApLocOptions& options = {});

/// Builds a location-only database from the estimated positions.
[[nodiscard]] ApDatabase aploc_build_database(
    const std::vector<capture::TrainingTuple>& tuples, const ApLocOptions& options = {});

/// Full AP-Loc: train AP positions, estimate radii from the observed Gammas
/// (the training tuples double as co-observation evidence), locate `target`.
[[nodiscard]] LocalizationResult aploc_locate(
    const std::vector<capture::TrainingTuple>& tuples,
    const std::vector<std::set<net80211::MacAddress>>& gammas,
    const std::set<net80211::MacAddress>& target, const ApLocOptions& options = {});

}  // namespace mm::marauder
