#include "marauder/trajectory.h"

#include <algorithm>

namespace mm::marauder {

namespace {

struct Burst {
  sim::SimTime begin = 0.0;
  sim::SimTime end = 0.0;
  net80211::MacAddress mac;
};

/// Clusters the identity's contact timestamps into scan bursts.
std::vector<Burst> find_bursts(const capture::ObservationStore& store,
                               std::span<const net80211::MacAddress> identity,
                               double burst_gap_s) {
  std::vector<std::pair<sim::SimTime, net80211::MacAddress>> events;
  for (const auto& mac : identity) {
    const capture::DeviceRecord* rec = store.device(mac);
    if (rec == nullptr) continue;
    for (const auto& [ap, contact] : rec->contacts) {
      for (const sim::SimTime t : contact.times) events.emplace_back(t, mac);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<Burst> bursts;
  for (const auto& [t, mac] : events) {
    if (bursts.empty() || t - bursts.back().end > burst_gap_s) {
      bursts.push_back({t, t, mac});
    } else {
      bursts.back().end = t;
    }
  }
  return bursts;
}

}  // namespace

std::vector<TrackPoint> build_trajectory(const Tracker& tracker,
                                         const capture::ObservationStore& store,
                                         std::span<const net80211::MacAddress> identity,
                                         const TrajectoryOptions& options) {
  std::vector<TrackPoint> track;
  for (const Burst& burst : find_bursts(store, identity, options.burst_gap_s)) {
    const capture::ObservationWindow window{burst.begin - options.window_pad_s,
                                            burst.end + options.window_pad_s};
    const LocalizationResult result = tracker.locate(store, burst.mac, window);
    if (!result.ok) continue;

    TrackPoint point;
    point.time = 0.5 * (burst.begin + burst.end);
    point.raw_position = result.estimate;
    point.position = result.estimate;
    point.num_aps = result.num_aps;
    point.mac = burst.mac;
    point.degraded = result.degraded();
    point.discs_rejected = result.discs_rejected;

    if (options.max_speed_mps > 0.0 && !track.empty()) {
      const TrackPoint& prev = track.back();
      const double dt = std::max(1e-6, point.time - prev.time);
      if (point.raw_position.distance_to(prev.raw_position) / dt > options.max_speed_mps) {
        continue;  // physically impossible jump: drop the estimate
      }
    }
    track.push_back(point);
  }

  // Centered moving average over the raw positions.
  if (options.smoothing_span > 1 && track.size() > 2) {
    const auto half = static_cast<std::ptrdiff_t>(options.smoothing_span / 2);
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(track.size()); ++i) {
      const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
      const std::ptrdiff_t hi =
          std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(track.size()) - 1, i + half);
      geo::Vec2 acc;
      for (std::ptrdiff_t j = lo; j <= hi; ++j) {
        acc += track[static_cast<std::size_t>(j)].raw_position;
      }
      track[static_cast<std::size_t>(i)].position =
          acc / static_cast<double>(hi - lo + 1);
    }
  }
  return track;
}

std::vector<IdentityTrack> build_identity_trajectories(
    const Tracker& tracker, const capture::ObservationStore& store,
    const IdentityMap& identities, const TrajectoryOptions& options) {
  std::vector<IdentityTrack> tracks;
  tracks.reserve(identities.size());
  for (const ResolvedIdentity& identity : identities.identities) {
    IdentityTrack track;
    track.identity = identity.id;
    track.points = build_trajectory(
        tracker, store,
        std::span<const net80211::MacAddress>(identity.macs), options);
    tracks.push_back(std::move(track));
  }
  return tracks;
}

double track_length_m(std::span<const TrackPoint> track) {
  double total = 0.0;
  for (std::size_t i = 1; i < track.size(); ++i) {
    total += track[i].position.distance_to(track[i - 1].position);
  }
  return total;
}

}  // namespace mm::marauder
