#include "marauder/baselines.h"

#include <vector>

#include "rf/units.h"

namespace mm::marauder {

LocalizationResult centroid_locate(std::span<const geo::Vec2> ap_positions) {
  LocalizationResult result;
  result.method = "Centroid";
  result.num_aps = ap_positions.size();
  if (ap_positions.empty()) return result;
  geo::Vec2 acc;
  for (const geo::Vec2& p : ap_positions) acc += p;
  result.ok = true;
  result.estimate = acc / static_cast<double>(ap_positions.size());
  return result;
}

LocalizationResult nearest_ap_locate(
    std::span<const std::pair<geo::Vec2, double>> aps_with_rssi) {
  LocalizationResult result;
  result.method = "NearestAP";
  result.num_aps = aps_with_rssi.size();
  if (aps_with_rssi.empty()) return result;
  const auto* best = &aps_with_rssi.front();
  for (const auto& candidate : aps_with_rssi) {
    if (candidate.second > best->second) best = &candidate;
  }
  result.ok = true;
  result.estimate = best->first;
  return result;
}

LocalizationResult weighted_centroid_locate(
    std::span<const std::pair<geo::Vec2, double>> aps_with_rssi) {
  LocalizationResult result;
  result.method = "WeightedCentroid";
  result.num_aps = aps_with_rssi.size();
  if (aps_with_rssi.empty()) return result;
  geo::Vec2 acc;
  double total_weight = 0.0;
  for (const auto& [position, rssi_dbm] : aps_with_rssi) {
    const double weight = rf::dbm_to_mw(rssi_dbm);
    acc += position * weight;
    total_weight += weight;
  }
  if (total_weight <= 0.0) {
    // Every weight underflowed to zero (all RSSI below ~-320 dBm, or
    // denormal-flushed): dividing would yield NaN/inf. The positions are
    // still evidence, so degrade to the unweighted centroid and flag it.
    std::vector<geo::Vec2> positions;
    positions.reserve(aps_with_rssi.size());
    for (const auto& [position, rssi_dbm] : aps_with_rssi) positions.push_back(position);
    LocalizationResult fallback = centroid_locate(positions);
    fallback.method = result.method;
    fallback.used_fallback = true;
    return fallback;
  }
  result.ok = true;
  result.estimate = acc / total_weight;
  return result;
}

}  // namespace mm::marauder
