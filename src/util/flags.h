// Command-line flag parsing for the bench/example binaries: `--key=value` or
// `--key value`; everything else is a positional argument. Keeps the
// experiment entry points uniform (`--seed`, `--trials`, `--out`, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mm::util {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::uint64_t get_seed(std::uint64_t fallback) const {
    return static_cast<std::uint64_t>(get_int("seed", static_cast<std::int64_t>(fallback)));
  }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mm::util
