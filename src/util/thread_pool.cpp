#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

namespace mm::util {

namespace {

/// One run_chunks() invocation: an atomic chunk cursor shared by the caller
/// and its helper jobs. Chunk boundaries are fixed up front, so which
/// participant executes a chunk never affects what the chunk computes.
struct Batch {
  const ThreadPool::ChunkFn* fn = nullptr;
  std::size_t count = 0;
  std::size_t chunk_size = 0;
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t outstanding_jobs = 0;  ///< helper jobs queued or running (guarded)
  std::exception_ptr error;          ///< first failure wins (guarded)

  void drain() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(count, begin + chunk_size);
      try {
        (*fn)(c, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        // Abandon the remaining chunks: the batch is failing anyway and the
        // caller will rethrow.
        next.store(chunks, std::memory_order_relaxed);
        return;
      }
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::size_t max_workers = 0;

  std::mutex mutex;
  std::condition_variable work_cv;
  std::deque<std::shared_ptr<Batch>> queue;  ///< one entry per requested helper
  std::vector<std::thread> workers;
  bool stopping = false;

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping
        batch = std::move(queue.front());
        queue.pop_front();
      }
      batch->drain();
      {
        std::lock_guard<std::mutex> lock(batch->mutex);
        --batch->outstanding_jobs;
      }
      batch->done_cv.notify_one();
    }
  }

  /// Spawns helpers up to the cap; called under mutex.
  void ensure_workers(std::size_t want) {
    const std::size_t target = std::min(want, max_workers);
    while (workers.size() < target) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }
};

ThreadPool::ThreadPool(std::size_t max_workers) : impl_(std::make_unique<Impl>()) {
  impl_->max_workers =
      max_workers == 0 ? ThreadPool::default_parallelism() : max_workers;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::max_workers() const noexcept { return impl_->max_workers; }

std::size_t ThreadPool::spawned_workers() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->workers.size();
}

ThreadPool& ThreadPool::shared() {
  // Sized past the hardware so determinism tests (1 vs 2 vs 8 threads) run
  // real concurrency even on small CI machines; workers are lazy, so the
  // cap costs nothing until someone asks for that much parallelism.
  static ThreadPool instance(std::max<std::size_t>(default_parallelism(), 16) - 1);
  return instance;
}

std::size_t ThreadPool::default_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t ThreadPool::balanced_chunk(std::size_t count, std::size_t parallelism,
                                       std::size_t min_chunk) {
  if (parallelism == 0) parallelism = default_parallelism();
  if (count == 0) return std::max<std::size_t>(min_chunk, 1);
  // ~4 chunks per participant: coarse enough to amortize dispatch, fine
  // enough that one slow chunk can't leave the other participants idle for
  // the whole tail.
  const std::size_t target_chunks = std::max<std::size_t>(parallelism * 4, 1);
  const std::size_t chunk = (count + target_chunks - 1) / target_chunks;
  return std::max({chunk, min_chunk, std::size_t{1}});
}

void ThreadPool::run_chunks(std::size_t count, std::size_t chunk_size,
                            std::size_t parallelism, const ChunkFn& fn) {
  if (count == 0) return;
  chunk_size = std::max<std::size_t>(chunk_size, 1);
  const std::size_t chunks = (count + chunk_size - 1) / chunk_size;
  if (parallelism == 0) parallelism = default_parallelism();
  const std::size_t helpers =
      std::min({parallelism - 1, impl_->max_workers, chunks - 1});

  if (helpers == 0) {
    // Serial fast path: no queue, no atomics. Chunk boundaries are the same
    // ones the parallel path uses, so results match it bit for bit.
    for (std::size_t c = 0; c < chunks; ++c) {
      fn(c, c * chunk_size, std::min(count, (c + 1) * chunk_size));
    }
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->count = count;
  batch->chunk_size = chunk_size;
  batch->chunks = chunks;
  batch->outstanding_jobs = helpers;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->ensure_workers(helpers);
    for (std::size_t h = 0; h < helpers; ++h) impl_->queue.push_back(batch);
  }
  impl_->work_cv.notify_all();

  // The caller drains too: even if every worker is busy with other batches
  // (including a batch *this call* is nested inside), the chunks all get
  // executed and the nested call can't deadlock.
  batch->drain();

  // Helper jobs that never left the queue have nothing left to do — cancel
  // them so the wait below only covers jobs actually running on a worker.
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto& queue = impl_->queue;
    for (auto it = queue.begin(); it != queue.end();) {
      if (*it == batch) {
        it = queue.erase(it);
        std::lock_guard<std::mutex> batch_lock(batch->mutex);
        --batch->outstanding_jobs;
      } else {
        ++it;
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done_cv.wait(lock, [&] { return batch->outstanding_jobs == 0; });
    if (batch->error) std::rethrow_exception(batch->error);
  }
}

}  // namespace mm::util
