// Lightweight descriptive statistics used by the experiment harnesses:
// running moments, sample collections with percentiles, and fixed-bin
// histograms (the paper reports error histograms and per-day percentages).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mm::util {

/// Single-pass mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores all samples; supports exact percentiles. Use for modest sample
/// counts (the experiments collect at most a few hundred thousand values).
class SampleSet {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, p in [0, 100]. Requires non-empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so totals always match the sample count.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;
  [[nodiscard]] double fraction(std::size_t bin) const;
  /// Render as aligned text rows "lo..hi | count | bar" for console output.
  [[nodiscard]] std::string to_string(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mm::util
