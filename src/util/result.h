// Minimal expected-like result type (C++20 has no std::expected yet). Used
// by the frame/pcap parsers so malformed input is reported as a value, not
// an exception, on the capture hot path.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mm::util {

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  static Result failure(std::string message) {
    return Result(Error{std::move(message)});
  }

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error());
    return std::get<T>(std::move(storage_));
  }
  [[nodiscard]] const std::string& error() const {
    static const std::string kNone = "(no error)";
    if (ok()) return kNone;
    return std::get<Error>(storage_).message;
  }

 private:
  struct Error {
    std::string message;
  };
  explicit Result(Error e) : storage_(std::move(e)) {}

  std::variant<T, Error> storage_;
};

}  // namespace mm::util
