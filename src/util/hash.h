// Shared integer hashing for hot-path containers and the streaming engine's
// shard partitioner. The libstdc++ std::hash<uint64_t> is the identity
// function, which is useless both for unordered_map bucket spread on
// structured keys (MAC addresses share OUI prefixes) and for hash-partitioning
// devices across Riptide shards — both need every input bit to influence the
// output. mix64 is the SplitMix64 finalizer: cheap, constexpr, and full
// avalanche.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mm::util {

/// SplitMix64 finalizer: a bijective full-avalanche mix of one 64-bit word.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Shard index for a key already passed through mix64 (or any well-mixed
/// hash); every output bit of the mix participates, so shard counts that are
/// not powers of two still spread evenly.
constexpr std::size_t shard_of(std::uint64_t mixed, std::size_t shards) noexcept {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(mixed % shards);
}

}  // namespace mm::util
