#include "util/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mm::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_join(const CsvRow& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += ',';
    out += csv_escape(fields[i]);
  }
  return out;
}

CsvRow csv_parse_line(const std::string& line) {
  CsvRow fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF endings.
    } else {
      current += c;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted field: " + line);
  fields.push_back(std::move(current));
  return fields;
}

void csv_write_file(const std::filesystem::path& path, const std::vector<CsvRow>& rows) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("csv: cannot open for writing: " + path.string());
  for (const auto& row : rows) out << csv_join(row) << '\n';
}

std::vector<CsvRow> csv_read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv: cannot open for reading: " + path.string());
  std::vector<CsvRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(csv_parse_line(line));
  }
  return rows;
}

}  // namespace mm::util
