// Minimal INI-style config parser for the mmctl experiment runner:
// `[section]` headers, `key = value` pairs, `#`/`;` comments, trailing
// whitespace trimmed. Sections and keys are case-sensitive.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>

namespace mm::util {

class IniFile {
 public:
  /// Parses text; throws std::runtime_error with a line number on malformed
  /// input (junk outside a section, lines without '=').
  [[nodiscard]] static IniFile parse(const std::string& text);
  [[nodiscard]] static IniFile load(const std::filesystem::path& path);

  [[nodiscard]] bool has_section(const std::string& section) const;
  [[nodiscard]] bool has(const std::string& section, const std::string& key) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& section, const std::string& key,
                                   const std::string& fallback) const;
  /// Numeric accessors throw std::runtime_error on unparsable values.
  [[nodiscard]] double get_double(const std::string& section, const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& section, const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& section, const std::string& key,
                              bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::map<std::string, std::string>>& sections()
      const noexcept {
    return sections_;
  }

 private:
  std::map<std::string, std::map<std::string, std::string>> sections_;
};

}  // namespace mm::util
