// Minimal CSV reader/writer with RFC-4180 quoting. Used for the WiGLE-style
// AP database import/export and for dumping experiment series alongside the
// console tables.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace mm::util {

/// One parsed CSV row (fields already unescaped).
using CsvRow = std::vector<std::string>;

/// Escapes a field if it contains separators, quotes, or newlines.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Joins fields into one CSV line (no trailing newline).
[[nodiscard]] std::string csv_join(const CsvRow& fields);

/// Parses one CSV line into fields, honoring quoted fields with embedded
/// commas and doubled quotes. Throws std::runtime_error on unterminated quotes.
[[nodiscard]] CsvRow csv_parse_line(const std::string& line);

/// Writes rows (with optional header as first row) to a file.
void csv_write_file(const std::filesystem::path& path, const std::vector<CsvRow>& rows);

/// Reads all rows of a CSV file. Handles quoted fields spanning one line;
/// throws std::runtime_error if the file cannot be opened.
[[nodiscard]] std::vector<CsvRow> csv_read_file(const std::filesystem::path& path);

}  // namespace mm::util
