#include "util/table.h"

#include <algorithm>
#include <iostream>
#include <sstream>

namespace mm::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double value : cells) row.push_back(fmt(value, precision));
  add_row(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << (c == 0 ? "| " : " ");
      out << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& out) const { out << to_string(); }

}  // namespace mm::util
