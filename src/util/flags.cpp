#include "util/flags.h"

#include <stdexcept>

namespace mm::util {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) != 0; }

std::string Flags::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " expects an integer, got: " + it->second);
  }
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " expects a number, got: " + it->second);
  }
}

}  // namespace mm::util
