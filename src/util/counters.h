// Saturating counter arithmetic for the long-haul accounting surfaces
// (drop, quarantine, and fault counters). A multi-day soak must never wrap a
// counter back to zero — a wrapped drop count reads as "healthy" exactly when
// the engine has been shedding the longest. Saturation pins the counter at
// max instead, which is unambiguous to an operator and monotone for the
// harnesses that watch deltas.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

namespace mm::util {

/// a + b, pinned at numeric_limits<uint64_t>::max() instead of wrapping.
constexpr std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t sum = a + b;
  return sum < a ? std::numeric_limits<std::uint64_t>::max() : sum;
}

/// counter = sat_add(counter, delta) for a plain counter field.
constexpr void sat_inc(std::uint64_t& counter, std::uint64_t delta = 1) noexcept {
  counter = sat_add(counter, delta);
}

/// Saturating increment of an atomic counter (CAS loop; the counter is cold —
/// it only moves when something is being dropped or quarantined).
inline void sat_fetch_add(std::atomic<std::uint64_t>& counter,
                          std::uint64_t delta = 1) noexcept {
  std::uint64_t seen = counter.load(std::memory_order_relaxed);
  while (!counter.compare_exchange_weak(seen, sat_add(seen, delta),
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace mm::util
