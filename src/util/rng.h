// Deterministic random number generation for the whole project.
//
// Every stochastic component (simulator, scenario builders, Monte-Carlo
// cross-checks) draws from an explicitly seeded mm::util::Rng so that any
// experiment in EXPERIMENTS.md can be reproduced bit-for-bit from its seed.
// The generator is xoshiro256++ seeded through SplitMix64, which is fast,
// has a 2^256-1 period, and passes BigCrush; we deliberately avoid
// std::mt19937 + std::*_distribution because their outputs are not
// guaranteed identical across standard library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace mm::util {

/// SplitMix64 step; used to expand a single seed into generator state and as
/// a cheap stateless hash for deterministic per-link randomness.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values; handy for seeding per-entity streams.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256++ pseudo-random generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6d617261756465ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    has_gauss_ = false;
  }

  /// Derive an independent child stream (e.g., one per simulated entity).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) noexcept {
    return Rng{hash_combine(next_u64(), stream_id)};
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached pair).
  double gaussian() noexcept {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * factor;
    has_gauss_ = true;
    return u * factor;
  }

  double gaussian(double mean, double stddev) noexcept { return mean + stddev * gaussian(); }

  /// Exponential with given rate (events per unit time).
  double exponential(double rate) noexcept {
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Poisson-distributed count (Knuth for small means, normal approx above 64).
  std::uint64_t poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean > 64.0) {
      const double x = gaussian(mean, std::sqrt(mean));
      return x <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(x));
    }
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }

  /// Uniform angle in [0, 2*pi).
  double angle() noexcept { return uniform(0.0, 2.0 * std::numbers::pi); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Pick a random index weighted by non-negative weights; returns weights.size() if all zero.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return weights.size();
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return i;
    }
    return weights.size() - 1;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace mm::util
