#include "util/ini.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mm::util {

namespace {
std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}
}  // namespace

IniFile IniFile::parse(const std::string& text) {
  IniFile ini;
  std::istringstream stream(text);
  std::string line;
  std::string current_section;
  bool in_section = false;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == ';') continue;
    if (trimmed.front() == '[') {
      if (trimmed.back() != ']') {
        throw std::runtime_error("ini: unterminated section header at line " +
                                 std::to_string(line_no));
      }
      current_section = trim(trimmed.substr(1, trimmed.size() - 2));
      in_section = true;
      ini.sections_[current_section];  // record even if empty
      continue;
    }
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("ini: expected key=value at line " + std::to_string(line_no));
    }
    if (!in_section) {
      throw std::runtime_error("ini: key outside any section at line " +
                               std::to_string(line_no));
    }
    ini.sections_[current_section][trim(trimmed.substr(0, eq))] =
        trim(trimmed.substr(eq + 1));
  }
  return ini;
}

IniFile IniFile::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ini: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool IniFile::has_section(const std::string& section) const {
  return sections_.count(section) != 0;
}

bool IniFile::has(const std::string& section, const std::string& key) const {
  const auto it = sections_.find(section);
  return it != sections_.end() && it->second.count(key) != 0;
}

std::optional<std::string> IniFile::get(const std::string& section,
                                        const std::string& key) const {
  const auto sec = sections_.find(section);
  if (sec == sections_.end()) return std::nullopt;
  const auto val = sec->second.find(key);
  if (val == sec->second.end()) return std::nullopt;
  return val->second;
}

std::string IniFile::get_or(const std::string& section, const std::string& key,
                            const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

double IniFile::get_double(const std::string& section, const std::string& key,
                           double fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("ini: [" + section + "] " + key + " is not a number: " + *value);
  }
}

std::int64_t IniFile::get_int(const std::string& section, const std::string& key,
                              std::int64_t fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("ini: [" + section + "] " + key +
                             " is not an integer: " + *value);
  }
}

bool IniFile::get_bool(const std::string& section, const std::string& key,
                       bool fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  std::string lower = *value;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") return false;
  throw std::runtime_error("ini: [" + section + "] " + key + " is not a boolean: " + *value);
}

}  // namespace mm::util
