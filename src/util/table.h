// Console table renderer for experiment output. Every bench binary prints the
// rows/series of the paper figure it reproduces through this class, so the
// output format is uniform across the harness.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mm::util {

/// Right-pads/aligns cells and renders an ASCII table with a header rule.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; the row is padded or truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row(const std::vector<double>& cells, int precision = 4);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& out) const;

  /// Formats a double with fixed precision (shared helper for cells).
  static std::string fmt(double value, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mm::util
