#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mm::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void SampleSet::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double x : samples_) total += x;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  if (samples_.empty()) throw std::out_of_range("SampleSet::min on empty set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) throw std::out_of_range("SampleSet::max on empty set");
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) throw std::out_of_range("SampleSet::percentile on empty set");
  ensure_sorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto below = static_cast<std::size_t>(rank);
  const auto above = std::min(below + 1, sorted_.size() - 1);
  const double fraction = rank - static_cast<double>(below);
  return sorted_[below] + fraction * (sorted_[above] - sorted_[below]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo and bins > 0");
}

void Histogram::add(double x) noexcept {
  auto raw = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  raw = std::clamp<std::ptrdiff_t>(raw, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(raw)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::to_string(std::size_t bar_width) const {
  std::ostringstream out;
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out.width(9);
    out << bin_lo(i) << " ..";
    out.width(9);
    out << bin_hi(i) << " |";
    out.width(7);
    out << counts_[i] << " | ";
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * bar_width / peak;
    for (std::size_t b = 0; b < bar; ++b) out << '#';
    out << '\n';
  }
  return out.str();
}

}  // namespace mm::util
