// Afterburner: the offline attack stack's chunked thread pool.
//
// The offline path (Tracker::locate_all over every captured device, AP-Rad
// constraint generation, the bench harness's Monte-Carlo sweeps) is
// embarrassingly parallel but must stay *bit-for-bit deterministic*: a
// replayed attack is evidence, and EXPERIMENTS.md promises every number is
// reproducible from its seed regardless of the machine. The pool therefore
// never lets scheduling order leak into results:
//
//   * work is split into fixed-size chunks whose boundaries depend only on
//     (count, chunk_size) — never on the thread count — and each chunk knows
//     its index, so per-chunk partial results land in pre-assigned slots;
//   * reductions combine those partials in chunk-index order, which keeps
//     even floating-point sums identical at 1, 2, or 64 threads;
//   * `parallelism == 1` runs inline on the caller with no queue or atomics,
//     so the serial path is trivially the same computation.
//
// The calling thread always participates in draining its own chunk set, so a
// nested run_chunks() from inside a pool worker makes progress even when
// every worker is busy — no deadlock, no special nesting rules. Workers are
// spawned lazily up to the pool's cap and persist (blocked on a condvar)
// between batches.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace mm::util {

class ThreadPool {
 public:
  /// A pool that lazily spawns up to `max_workers` helper threads
  /// (0 = one per hardware core). The caller of run_chunks() is always an
  /// additional participant, so total concurrency is `parallelism` when
  /// `parallelism - 1 <= max_workers`.
  explicit ThreadPool(std::size_t max_workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t max_workers() const noexcept;
  /// Helper threads actually spawned so far.
  [[nodiscard]] std::size_t spawned_workers() const;

  /// Process-wide pool shared by the offline stack. Sized generously enough
  /// that determinism tests can run real threads even on small machines.
  static ThreadPool& shared();

  /// Hardware concurrency, clamped to >= 1 (the conventional meaning of
  /// `threads == 0` in the offline options structs).
  [[nodiscard]] static std::size_t default_parallelism();

  /// Chunk size for device-batch workloads: ~4 chunks per participant for
  /// load balance, floored at `min_chunk` so per-chunk dispatch (queue +
  /// atomic + std::function call) stays amortized over real work. Afterburner
  /// shipped locate_all with chunk_size=4 — at ~1.5 us/device that is ~6 us
  /// of work per dispatch, and the pool overhead ate the whole parallel win
  /// (BENCH_offline showed 0.25x). Callers whose results are slotted by index
  /// may derive chunk_size from parallelism freely: chunk boundaries never
  /// affect per-index outputs, only scheduling. Chunk-ordered *reductions*
  /// must keep passing a fixed chunk_size instead (boundaries change the
  /// floating-point grouping there).
  [[nodiscard]] static std::size_t balanced_chunk(std::size_t count,
                                                  std::size_t parallelism,
                                                  std::size_t min_chunk = 64);

  using ChunkFn =
      std::function<void(std::size_t chunk_index, std::size_t begin, std::size_t end)>;

  /// Runs fn(chunk_index, begin, end) over the fixed-size chunks of
  /// [0, count). `parallelism` is the total number of concurrent
  /// participants including the caller (0 = default_parallelism(); 1 = run
  /// inline, touching no queue). Blocks until every chunk has run; the
  /// first exception thrown by any chunk is rethrown here (remaining
  /// chunks are abandoned).
  void run_chunks(std::size_t count, std::size_t chunk_size, std::size_t parallelism,
                  const ChunkFn& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Deterministic parallel map: out[i] = fn(i) for i in [0, out.size()).
/// Results are slotted by index, so the output is identical at any
/// parallelism.
template <typename R, typename Fn>
void parallel_map_into(ThreadPool& pool, std::size_t parallelism, std::vector<R>& out,
                       Fn&& fn, std::size_t chunk_size = 1) {
  pool.run_chunks(out.size(), chunk_size, parallelism,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
                  });
}

/// Deterministic chunk-ordered reduce: per_chunk(begin, end) -> Acc partial,
/// partials combined left-to-right in chunk-index order. Because the chunk
/// boundaries depend only on chunk_size, the grouping of floating-point
/// additions — and hence the result, to the last bit — is independent of
/// the thread count.
template <typename Acc, typename ChunkFn, typename CombineFn>
[[nodiscard]] Acc parallel_reduce(ThreadPool& pool, std::size_t count,
                                  std::size_t chunk_size, std::size_t parallelism,
                                  Acc init, ChunkFn&& per_chunk, CombineFn&& combine) {
  if (count == 0) return init;
  chunk_size = std::max<std::size_t>(chunk_size, 1);
  const std::size_t chunks = (count + chunk_size - 1) / chunk_size;
  std::vector<Acc> partials(chunks);
  pool.run_chunks(count, chunk_size, parallelism,
                  [&](std::size_t c, std::size_t begin, std::size_t end) {
                    partials[c] = per_chunk(begin, end);
                  });
  Acc acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c) acc = combine(std::move(acc), partials[c]);
  return acc;
}

}  // namespace mm::util
