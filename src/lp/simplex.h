// Dense two-phase simplex linear-programming solver, built for the AP-Rad
// algorithm: maximize the sum of AP transmission radii subject to pairwise
// co-observation constraints (r_i + r_j >= d_ij when two APs were seen by
// one mobile, r_i + r_j < d_ij when they never were).
//
// Real observation sets routinely make the "<" constraints mutually
// infeasible, so constraints can be marked *soft*: a violation variable is
// added and charged to the objective, which yields the least-violating
// radius assignment instead of an INFEASIBLE verdict. Variables are
// non-negative; upper bounds (the Theorem-1 radius cap, without which the
// LP is unbounded) are expressed as explicit rows.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mm::lp {

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

[[nodiscard]] const char* to_string(SolveStatus status) noexcept;

struct Constraint {
  /// Sparse left-hand side: (variable index, coefficient).
  std::vector<std::pair<std::size_t, double>> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
  /// Soft constraints may be violated; each unit of violation costs
  /// `penalty` in the (maximized) objective.
  bool soft = false;
  double penalty = 1e6;
};

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  std::vector<double> values;      ///< one per structural variable
  double objective = 0.0;          ///< original objective (soft penalties excluded)
  double total_violation = 0.0;    ///< summed violation across soft constraints
  std::vector<double> violations;  ///< per-constraint violation (0 for hard rows)

  [[nodiscard]] bool optimal() const noexcept { return status == SolveStatus::kOptimal; }
};

/// A maximization LP over non-negative variables.
class LinearProgram {
 public:
  explicit LinearProgram(std::size_t num_variables);

  [[nodiscard]] std::size_t num_variables() const noexcept { return objective_.size(); }
  [[nodiscard]] std::size_t num_constraints() const noexcept { return constraints_.size(); }

  /// Sets the (maximize) objective coefficient of a variable.
  void set_objective(std::size_t var, double coefficient);

  /// Convenience: adds the row x_var <= bound.
  void add_upper_bound(std::size_t var, double bound);

  /// Adds a general constraint; returns its index (for violations lookup).
  /// Throws std::out_of_range for a term referencing an unknown variable.
  std::size_t add_constraint(Constraint constraint);

  /// Solves with Dantzig pricing (Bland's rule after degeneracy stalls).
  [[nodiscard]] Solution solve(std::size_t max_iterations = 0) const;

 private:
  std::vector<double> objective_;
  std::vector<Constraint> constraints_;
};

}  // namespace mm::lp
