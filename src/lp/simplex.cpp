#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mm::lp {

namespace {

constexpr double kTol = 1e-9;

/// Dense simplex tableau in canonical form. Rows are constraints (rhs kept
/// separately), `basis[i]` is the variable basic in row i.
struct Tableau {
  std::size_t rows = 0;
  std::size_t cols = 0;  // number of variables (structural + slack + artificial)
  std::vector<double> a;  // rows x cols, row-major
  std::vector<double> rhs;
  std::vector<std::size_t> basis;

  double& at(std::size_t r, std::size_t c) { return a[r * cols + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return a[r * cols + c]; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double pivot_value = at(pr, pc);
    const double inv = 1.0 / pivot_value;
    for (std::size_t c = 0; c < cols; ++c) at(pr, c) *= inv;
    rhs[pr] *= inv;
    at(pr, pc) = 1.0;  // kill residual round-off on the pivot itself
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (std::abs(factor) < kTol) {
        at(r, pc) = 0.0;
        continue;
      }
      for (std::size_t c = 0; c < cols; ++c) at(r, c) -= factor * at(pr, c);
      rhs[r] -= factor * rhs[pr];
      at(r, pc) = 0.0;
    }
    basis[pr] = pc;
  }
};

/// Reduced costs for minimizing cost vector `cost`: z_j = c_j - c_B B^-1 A_j.
std::vector<double> reduced_costs(const Tableau& t, const std::vector<double>& cost) {
  std::vector<double> z(cost);
  for (std::size_t r = 0; r < t.rows; ++r) {
    const double cb = cost[t.basis[r]];
    if (cb == 0.0) continue;
    for (std::size_t c = 0; c < t.cols; ++c) z[c] -= cb * t.at(r, c);
  }
  return z;
}

enum class PhaseResult { kOptimal, kUnbounded, kIterationLimit };

/// Runs simplex iterations minimizing `cost`. `allowed[j]` masks columns
/// that may enter the basis (used to lock artificials out in phase 2).
PhaseResult run_simplex(Tableau& t, const std::vector<double>& cost,
                        const std::vector<bool>& allowed, std::size_t max_iters) {
  std::vector<double> z = reduced_costs(t, cost);
  std::size_t stall = 0;
  double last_objective = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    // Periodic full recompute guards against drift from the incremental
    // z-row updates below.
    if (iter != 0 && iter % 256 == 0) z = reduced_costs(t, cost);
    // Pricing: Dantzig (most negative reduced cost); Bland after stalls.
    const bool bland = stall > 64;
    std::size_t entering = t.cols;
    double best = -kTol;
    for (std::size_t c = 0; c < t.cols; ++c) {
      if (!allowed[c]) continue;
      if (z[c] < best) {
        best = z[c];
        entering = c;
        if (bland) break;  // Bland: first improving index
      }
    }
    if (entering == t.cols) return PhaseResult::kOptimal;

    // Ratio test (Bland tie-break on the smallest basis variable index).
    std::size_t leaving = t.rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < t.rows; ++r) {
      const double coeff = t.at(r, entering);
      if (coeff <= kTol) continue;
      const double ratio = t.rhs[r] / coeff;
      if (ratio < best_ratio - kTol ||
          (ratio < best_ratio + kTol &&
           (leaving == t.rows || t.basis[r] < t.basis[leaving]))) {
        best_ratio = ratio;
        leaving = r;
      }
    }
    if (leaving == t.rows) return PhaseResult::kUnbounded;

    t.pivot(leaving, entering);
    // Incremental z-row update: after the pivot, row `leaving` is the
    // normalized pivot row; z' = z - z[entering] * pivot_row (O(cols)
    // instead of the O(rows*cols) full recompute).
    const double z_enter = z[entering];
    if (z_enter != 0.0) {
      for (std::size_t c = 0; c < t.cols; ++c) z[c] -= z_enter * t.at(leaving, c);
    }
    z[entering] = 0.0;

    // Track degeneracy: objective = c_B * rhs.
    double objective = 0.0;
    for (std::size_t r = 0; r < t.rows; ++r) objective += cost[t.basis[r]] * t.rhs[r];
    if (objective < last_objective - kTol) {
      stall = 0;
      last_objective = objective;
    } else {
      ++stall;
    }
  }
  return PhaseResult::kIterationLimit;
}

}  // namespace

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "?";
}

LinearProgram::LinearProgram(std::size_t num_variables) : objective_(num_variables, 0.0) {}

void LinearProgram::set_objective(std::size_t var, double coefficient) {
  objective_.at(var) = coefficient;
}

void LinearProgram::add_upper_bound(std::size_t var, double bound) {
  if (var >= num_variables()) throw std::out_of_range("add_upper_bound: bad variable");
  add_constraint({{{var, 1.0}}, Relation::kLessEqual, bound, false, 0.0});
}

std::size_t LinearProgram::add_constraint(Constraint constraint) {
  for (const auto& [var, coeff] : constraint.terms) {
    (void)coeff;
    if (var >= num_variables()) throw std::out_of_range("add_constraint: bad variable");
  }
  constraints_.push_back(std::move(constraint));
  return constraints_.size() - 1;
}

Solution LinearProgram::solve(std::size_t max_iterations) const {
  const std::size_t n = num_variables();
  const std::size_t m = constraints_.size();
  if (max_iterations == 0) max_iterations = 200 * (m + n) + 2000;

  // Column layout: [structural n][violation vars per soft row][slack/surplus
  // per row][artificials as needed].
  std::size_t num_soft = 0;
  for (const Constraint& c : constraints_) num_soft += c.soft ? 1 : 0;

  const std::size_t viol_base = n;
  const std::size_t slack_base = viol_base + num_soft;
  // Upper bound on columns: slack for every row + artificial for every row.
  const std::size_t art_base = slack_base + m;
  const std::size_t max_cols = art_base + m;

  Tableau t;
  t.rows = m;
  t.cols = max_cols;
  t.a.assign(m * max_cols, 0.0);
  t.rhs.assign(m, 0.0);
  t.basis.assign(m, 0);

  std::vector<double> phase2_cost(max_cols, 0.0);  // minimize -objective
  for (std::size_t j = 0; j < n; ++j) phase2_cost[j] = -objective_[j];

  std::vector<std::size_t> viol_col_of_row(m, max_cols);
  std::vector<bool> is_artificial(max_cols, false);
  std::size_t next_viol = viol_base;
  std::size_t next_art = art_base;

  for (std::size_t r = 0; r < m; ++r) {
    const Constraint& c = constraints_[r];
    for (const auto& [var, coeff] : c.terms) t.at(r, var) += coeff;
    double rhs = c.rhs;
    Relation rel = c.relation;

    if (c.soft) {
      // Violation variable relaxes the row toward feasibility.
      const std::size_t v = next_viol++;
      viol_col_of_row[r] = v;
      if (rel == Relation::kLessEqual) {
        t.at(r, v) = -1.0;
      } else if (rel == Relation::kGreaterEqual) {
        t.at(r, v) = 1.0;
      } else {
        // Soft equality: allow slack both ways via one signed pair would need
        // two columns; keep it simple and treat as >= with violation.
        t.at(r, v) = 1.0;
        rel = Relation::kGreaterEqual;
      }
      phase2_cost[v] = c.penalty;  // minimizing, so violation is charged
    }

    // Normalize to rhs >= 0.
    if (rhs < 0.0) {
      for (std::size_t col = 0; col < max_cols; ++col) t.at(r, col) = -t.at(r, col);
      rhs = -rhs;
      if (rel == Relation::kLessEqual) {
        rel = Relation::kGreaterEqual;
      } else if (rel == Relation::kGreaterEqual) {
        rel = Relation::kLessEqual;
      }
    }
    t.rhs[r] = rhs;

    const std::size_t slack = slack_base + r;
    if (rel == Relation::kLessEqual) {
      t.at(r, slack) = 1.0;
      t.basis[r] = slack;
    } else if (rel == Relation::kGreaterEqual) {
      t.at(r, slack) = -1.0;  // surplus
      const std::size_t art = next_art++;
      is_artificial[art] = true;
      t.at(r, art) = 1.0;
      t.basis[r] = art;
    } else {  // equality
      const std::size_t art = next_art++;
      is_artificial[art] = true;
      t.at(r, art) = 1.0;
      t.basis[r] = art;
    }
  }

  Solution solution;
  solution.values.assign(n, 0.0);
  solution.violations.assign(m, 0.0);

  std::vector<bool> allowed(max_cols, true);

  // Phase 1: drive artificials to zero.
  bool any_artificial = false;
  for (std::size_t c = 0; c < max_cols; ++c) any_artificial |= is_artificial[c];
  if (any_artificial) {
    std::vector<double> phase1_cost(max_cols, 0.0);
    for (std::size_t c = 0; c < max_cols; ++c) {
      if (is_artificial[c]) phase1_cost[c] = 1.0;
    }
    const PhaseResult pr = run_simplex(t, phase1_cost, allowed, max_iterations);
    if (pr == PhaseResult::kIterationLimit) {
      solution.status = SolveStatus::kIterationLimit;
      return solution;
    }
    double artificial_sum = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      if (is_artificial[t.basis[r]]) artificial_sum += t.rhs[r];
    }
    if (artificial_sum > 1e-6) {
      solution.status = SolveStatus::kInfeasible;
      return solution;
    }
    // Pivot lingering degenerate artificials out of the basis where possible.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[t.basis[r]]) continue;
      for (std::size_t c = 0; c < art_base; ++c) {
        if (std::abs(t.at(r, c)) > kTol) {
          t.pivot(r, c);
          break;
        }
      }
    }
    for (std::size_t c = 0; c < max_cols; ++c) {
      if (is_artificial[c]) allowed[c] = false;
    }
  }

  // Phase 2: optimize the real objective.
  const PhaseResult pr = run_simplex(t, phase2_cost, allowed, max_iterations);
  if (pr == PhaseResult::kUnbounded) {
    solution.status = SolveStatus::kUnbounded;
    return solution;
  }
  if (pr == PhaseResult::kIterationLimit) {
    solution.status = SolveStatus::kIterationLimit;
    return solution;
  }

  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t var = t.basis[r];
    if (var < n) {
      solution.values[var] = t.rhs[r];
    } else if (var < slack_base) {
      // violation variable: find its row index
      for (std::size_t row = 0; row < m; ++row) {
        if (viol_col_of_row[row] == var) {
          solution.violations[row] = t.rhs[r];
          break;
        }
      }
    }
  }
  solution.status = SolveStatus::kOptimal;
  solution.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) solution.objective += objective_[j] * solution.values[j];
  for (double v : solution.violations) solution.total_violation += v;
  return solution;
}

}  // namespace mm::lp
