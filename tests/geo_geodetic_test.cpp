#include "geo/geodetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mm::geo {
namespace {

// UMass Lowell north campus — the paper's primary deployment site.
const Geodetic kUml{42.6555, -71.3248, 30.0};
// George Washington University — the second campus.
const Geodetic kGwu{38.8997, -77.0486, 20.0};

TEST(Geodetic, EquatorPrimeMeridianEcef) {
  const Ecef e = to_ecef({0.0, 0.0, 0.0});
  EXPECT_NEAR(e.x, kWgs84A, 1e-6);
  EXPECT_NEAR(e.y, 0.0, 1e-6);
  EXPECT_NEAR(e.z, 0.0, 1e-6);
}

TEST(Geodetic, NorthPoleEcef) {
  const Ecef e = to_ecef({90.0, 0.0, 0.0});
  EXPECT_NEAR(e.x, 0.0, 1e-6);
  EXPECT_NEAR(e.y, 0.0, 1e-6);
  EXPECT_NEAR(e.z, kWgs84B, 1e-6);
}

TEST(Geodetic, EcefRoundtripCampus) {
  const Geodetic g = to_geodetic(to_ecef(kUml));
  EXPECT_NEAR(g.lat_deg, kUml.lat_deg, 1e-9);
  EXPECT_NEAR(g.lon_deg, kUml.lon_deg, 1e-9);
  EXPECT_NEAR(g.alt_m, kUml.alt_m, 1e-4);
}

TEST(Geodetic, EcefRoundtripSouthernHemisphere) {
  const Geodetic sydney{-33.8688, 151.2093, 58.0};
  const Geodetic g = to_geodetic(to_ecef(sydney));
  EXPECT_NEAR(g.lat_deg, sydney.lat_deg, 1e-9);
  EXPECT_NEAR(g.lon_deg, sydney.lon_deg, 1e-9);
  EXPECT_NEAR(g.alt_m, sydney.alt_m, 1e-4);
}

TEST(Geodetic, AltitudeMovesRadially) {
  const Ecef lo = to_ecef({45.0, 45.0, 0.0});
  const Ecef hi = to_ecef({45.0, 45.0, 100.0});
  const double d = std::sqrt((hi.x - lo.x) * (hi.x - lo.x) + (hi.y - lo.y) * (hi.y - lo.y) +
                             (hi.z - lo.z) * (hi.z - lo.z));
  EXPECT_NEAR(d, 100.0, 1e-6);
}

TEST(EnuFrame, OriginMapsToZero) {
  const EnuFrame frame(kUml);
  const Vec2 v = frame.to_enu(kUml);
  EXPECT_NEAR(v.x, 0.0, 1e-9);
  EXPECT_NEAR(v.y, 0.0, 1e-9);
}

TEST(EnuFrame, NorthDisplacement) {
  const EnuFrame frame(kUml);
  // ~111 m per 0.001 degrees of latitude.
  const Vec2 v = frame.to_enu({kUml.lat_deg + 0.001, kUml.lon_deg, kUml.alt_m});
  EXPECT_NEAR(v.x, 0.0, 0.01);
  EXPECT_NEAR(v.y, 111.0, 0.5);
}

TEST(EnuFrame, EastDisplacement) {
  const EnuFrame frame(kUml);
  // Longitude meters shrink with cos(latitude).
  const Vec2 v = frame.to_enu({kUml.lat_deg, kUml.lon_deg + 0.001, kUml.alt_m});
  EXPECT_NEAR(v.y, 0.0, 0.05);
  EXPECT_NEAR(v.x, 111.32 * std::cos(kUml.lat_deg * std::numbers::pi / 180.0), 0.5);
}

TEST(EnuFrame, RoundtripWithinCampusScale) {
  const EnuFrame frame(kUml);
  for (double east : {-900.0, -250.0, 0.0, 137.5, 800.0}) {
    for (double north : {-700.0, -10.0, 425.0, 950.0}) {
      const Geodetic g = frame.to_geodetic({east, north});
      const Vec2 back = frame.to_enu(g);
      EXPECT_NEAR(back.x, east, 1e-3);
      EXPECT_NEAR(back.y, north, 1e-3);
    }
  }
}

TEST(EnuFrame, DistancesMatchEcefChordAtCampusScale) {
  const EnuFrame frame(kGwu);
  const Geodetic a = frame.to_geodetic({100.0, 200.0});
  const Geodetic b = frame.to_geodetic({-300.0, 50.0});
  const double enu_dist = frame.to_enu(a).distance_to(frame.to_enu(b));
  const double chord = ecef_distance_m(a, b);
  EXPECT_NEAR(enu_dist, chord, 0.01);
}

TEST(EnuFrame, TwoCampusesFarApart) {
  const EnuFrame frame(kUml);
  const Vec2 gwu = frame.to_enu(kGwu);
  // UML to GWU is roughly 600 km; sanity check the projection magnitude.
  EXPECT_GT(gwu.norm(), 400000.0);
  EXPECT_LT(gwu.norm(), 800000.0);
  EXPECT_LT(gwu.y, 0.0);  // GWU is south of Lowell
}

TEST(EcefDistance, SymmetricAndPositive) {
  EXPECT_DOUBLE_EQ(ecef_distance_m(kUml, kGwu), ecef_distance_m(kGwu, kUml));
  EXPECT_GT(ecef_distance_m(kUml, kGwu), 0.0);
  EXPECT_DOUBLE_EQ(ecef_distance_m(kUml, kUml), 0.0);
}

}  // namespace
}  // namespace mm::geo
