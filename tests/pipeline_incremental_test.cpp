// Incremental M-Loc invariant: after every disc arrival, the streaming
// locator's result is BIT-identical to the batch mloc_locate over the same
// (MAC-sorted) disc list — including the degenerate geometries where the
// incremental path must detect that its cached region cannot be extended
// (pruned discs, nested/full-disc regions, disjoint evidence) and fall back
// to a full recompute.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "marauder/mloc.h"
#include "pipeline/incremental_mloc.h"
#include "util/rng.h"

namespace mm::pipeline {
namespace {

net80211::MacAddress mac_of(std::uint64_t id) {
  return net80211::MacAddress::from_u64(id);
}

/// Bit-level double equality (covers -0.0 vs 0.0 and any ulp drift an
/// EXPECT_DOUBLE_EQ would wave through).
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits differ by "
         << (std::bit_cast<std::uint64_t>(a) ^ std::bit_cast<std::uint64_t>(b)) << ")";
}

void expect_results_identical(const marauder::LocalizationResult& live,
                              const marauder::LocalizationResult& batch) {
  EXPECT_EQ(live.ok, batch.ok);
  EXPECT_TRUE(bits_equal(live.estimate.x, batch.estimate.x));
  EXPECT_TRUE(bits_equal(live.estimate.y, batch.estimate.y));
  EXPECT_EQ(live.used_fallback, batch.used_fallback);
  EXPECT_EQ(live.discs_rejected, batch.discs_rejected);
  EXPECT_EQ(live.num_aps, batch.num_aps);
  ASSERT_EQ(live.discs.size(), batch.discs.size());
  for (std::size_t i = 0; i < live.discs.size(); ++i) {
    EXPECT_TRUE(bits_equal(live.discs[i].center.x, batch.discs[i].center.x));
    EXPECT_TRUE(bits_equal(live.discs[i].center.y, batch.discs[i].center.y));
    EXPECT_TRUE(bits_equal(live.discs[i].radius, batch.discs[i].radius));
  }
}

/// Feeds `discs` (keyed by ascending MAC ids 1..n, delivered in `order`) to
/// an IncrementalDeviceLocator, checking the invariant after every add.
void check_sequence(const std::vector<geo::Circle>& discs,
                    const std::vector<std::size_t>& order,
                    const marauder::MLocOptions& options) {
  IncrementalDeviceLocator locator;
  IncrementalStats stats;
  std::vector<std::pair<std::uint64_t, geo::Circle>> sorted;  // batch reference
  for (const std::size_t idx : order) {
    ASSERT_TRUE(locator.add(mac_of(idx + 1), discs[idx]));
    sorted.emplace_back(idx + 1, discs[idx]);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<geo::Circle> batch_discs;
    for (const auto& [id, c] : sorted) batch_discs.push_back(c);

    const auto& live = locator.locate(options, stats);
    const auto batch = marauder::mloc_locate(batch_discs, options);
    SCOPED_TRACE("after disc " + std::to_string(idx + 1) + " (" +
                 std::to_string(sorted.size()) + " discs)");
    expect_results_identical(live, batch);
  }
}

TEST(IncrementalMloc, DuplicateApIsIgnored) {
  IncrementalDeviceLocator locator;
  EXPECT_TRUE(locator.add(mac_of(1), {{0.0, 0.0}, 50.0}));
  EXPECT_FALSE(locator.add(mac_of(1), {{0.0, 0.0}, 50.0}));
  EXPECT_EQ(locator.disc_count(), 1u);
}

TEST(IncrementalMloc, OverlappingChainMatchesBatchBitForBit) {
  const std::vector<geo::Circle> discs = {
      {{0.0, 0.0}, 60.0},  {{40.0, 10.0}, 55.0}, {{20.0, -30.0}, 70.0},
      {{-10.0, 25.0}, 65.0}, {{35.0, 35.0}, 80.0},
  };
  check_sequence(discs, {0, 1, 2, 3, 4}, {});
  check_sequence(discs, {4, 2, 0, 3, 1}, {});  // arrival != MAC order
}

TEST(IncrementalMloc, NestedDiscsForceRecomputeAndStillMatch) {
  // Disc 2 is strictly inside disc 0 (prunes it); disc 3 duplicates disc 1.
  const std::vector<geo::Circle> discs = {
      {{0.0, 0.0}, 100.0},
      {{30.0, 0.0}, 80.0},
      {{5.0, 5.0}, 20.0},
      {{30.0, 0.0}, 80.0},
  };
  check_sequence(discs, {0, 1, 2, 3}, {});
  check_sequence(discs, {2, 3, 1, 0}, {});  // big pruned disc arrives last
}

TEST(IncrementalMloc, FullDiscRegionThenGrowth) {
  // After discs {0,1} the region is exactly disc 1 (nested, full-disc
  // state): incremental_add must refuse and the recompute must land the
  // same answer as batch.
  const std::vector<geo::Circle> discs = {
      {{0.0, 0.0}, 100.0},
      {{0.0, 10.0}, 30.0},
      {{15.0, 10.0}, 40.0},
  };
  check_sequence(discs, {0, 1, 2}, {});
}

TEST(IncrementalMloc, DisjointEvidenceMatchesBatchFallback) {
  const std::vector<geo::Circle> discs = {
      {{0.0, 0.0}, 30.0},
      {{25.0, 0.0}, 30.0},
      {{500.0, 500.0}, 20.0},  // disjoint from both: batch early-exits empty
      {{520.0, 500.0}, 25.0},
  };
  check_sequence(discs, {0, 1, 2, 3}, {});
  marauder::MLocOptions reject;
  reject.reject_outliers = true;
  check_sequence(discs, {0, 1, 2, 3}, reject);  // rejection path, per call
  check_sequence(discs, {2, 0, 3, 1}, reject);
}

TEST(IncrementalMloc, ExactCentroidOptionMatches) {
  const std::vector<geo::Circle> discs = {
      {{0.0, 0.0}, 60.0}, {{40.0, 10.0}, 55.0}, {{20.0, -30.0}, 70.0}};
  marauder::MLocOptions exact;
  exact.exact_region_centroid = true;
  check_sequence(discs, {0, 1, 2}, exact);
}

// The broad net: random disc clouds (mixed radii, occasional nesting and
// disjointness by construction), random arrival orders, both option sets.
// Any divergence between the cached-arc extension and the batch recompute
// shows up as a bit mismatch here.
TEST(IncrementalMloc, RandomSequencesMatchBatchBitForBit) {
  util::Rng rng(0x5eed);
  marauder::MLocOptions reject;
  reject.reject_outliers = true;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    std::vector<geo::Circle> discs;
    for (std::size_t i = 0; i < n; ++i) {
      // Cluster most discs so intersections are common, with occasional
      // tiny (nest-prone) and far (disjoint-prone) outliers.
      const double spread = rng.uniform(0.0, 1.0) < 0.15 ? 400.0 : 60.0;
      const double radius =
          rng.uniform(0.0, 1.0) < 0.2 ? rng.uniform(5.0, 15.0) : rng.uniform(40.0, 120.0);
      discs.push_back({{rng.uniform(-spread, spread), rng.uniform(-spread, spread)},
                       radius});
    }
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i) - 1))]);
    }
    SCOPED_TRACE("trial " + std::to_string(trial));
    check_sequence(discs, order, trial % 2 == 0 ? marauder::MLocOptions{} : reject);
  }
}

// The hot path actually is incremental: a growing chain of mutually
// overlapping discs must extend the cached region, not recompute it.
TEST(IncrementalMloc, OverlappingGrowthUsesIncrementalPath) {
  IncrementalDeviceLocator locator;
  IncrementalStats stats;
  for (std::uint64_t i = 0; i < 12; ++i) {
    locator.add(mac_of(i + 1),
                {{static_cast<double>(i) * 5.0, static_cast<double>(i % 3)}, 200.0});
    locator.locate({}, stats);
  }
  EXPECT_EQ(stats.full_recomputes, 1u) << "only the 2-disc bootstrap may recompute";
  EXPECT_GE(stats.incremental_updates, 9u);
}

}  // namespace
}  // namespace mm::pipeline
