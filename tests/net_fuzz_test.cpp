// Lattice fuzz: the wire decoder + FEC reassembly must be total on
// arbitrary input. Seeded mutations (bit flips, deletions, duplicated and
// shuffled spans, random insertions, truncation) are applied to a valid
// stream, which is then fed in randomly-fragmented chunks. Whatever comes
// out must satisfy:
//   * no crash, no throw, no over-read (ASan/UBSan jobs run this file);
//   * every released event is bit-identical to the event that was actually
//     sent under its sequence — damage may erase events, never invent or
//     alter them (a CRC collision is the only escape, at ~2^-32 per frame);
//   * releases are strictly ascending in sequence;
//   * the decoder's byte accounting matches what was fed.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "net/fec.h"
#include "net/wire_codec.h"
#include "util/rng.h"

namespace mm::net {
namespace {

capture::FrameEvent make_event(std::uint64_t seq) {
  capture::FrameEvent ev;
  ev.kind = static_cast<capture::FrameEventKind>(seq % 4);
  ev.stream_seq = seq;
  ev.device = net80211::MacAddress::from_u64(0x0016f0000000ULL + seq * 3);
  ev.ap = net80211::MacAddress::from_u64(0x00215c000000ULL + (seq % 13));
  ev.time_s = static_cast<double>(seq) * 0.125;
  ev.rssi_dbm = -45.0 - static_cast<double>(seq % 50);
  ev.channel = static_cast<std::int16_t>(1 + (seq % 11));
  if (seq % 5 == 0) {
    ev.has_ssid = true;
    ev.ssid_len = static_cast<std::uint8_t>(1 + (seq % 8));
    for (std::uint8_t i = 0; i < ev.ssid_len; ++i) {
      ev.ssid[i] = static_cast<char>('a' + (seq + i) % 26);
    }
  }
  return ev;
}

bool events_equal(const capture::FrameEvent& a, const capture::FrameEvent& b) {
  return a.kind == b.kind && a.stream_seq == b.stream_seq && a.device == b.device &&
         a.ap == b.ap && a.time_s == b.time_s && a.rssi_dbm == b.rssi_dbm &&
         a.channel == b.channel && a.has_ssid == b.has_ssid && a.ssid_len == b.ssid_len &&
         std::memcmp(a.ssid, b.ssid, capture::FrameEvent::kMaxSsid) == 0;
}

std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> bytes, util::Rng& rng) {
  const int ops = static_cast<int>(rng.uniform_int(1, 12));
  for (int op = 0; op < ops && !bytes.empty(); ++op) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    switch (rng.uniform_int(0, 4)) {
      case 0:  // bit flip
        bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        break;
      case 1: {  // delete a span
        const auto len = std::min<std::size_t>(
            static_cast<std::size_t>(rng.uniform_int(1, 200)), bytes.size() - pos);
        bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                    bytes.begin() + static_cast<std::ptrdiff_t>(pos + len));
        break;
      }
      case 2: {  // duplicate a span in place (stale retransmission)
        const auto len = std::min<std::size_t>(
            static_cast<std::size_t>(rng.uniform_int(1, 300)), bytes.size() - pos);
        const std::vector<std::uint8_t> span(
            bytes.begin() + static_cast<std::ptrdiff_t>(pos),
            bytes.begin() + static_cast<std::ptrdiff_t>(pos + len));
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos), span.begin(),
                     span.end());
        break;
      }
      case 3: {  // insert garbage, occasionally magic-shaped
        const int len = static_cast<int>(rng.uniform_int(1, 64));
        std::vector<std::uint8_t> garbage;
        for (int i = 0; i < len; ++i) {
          garbage.push_back(rng.bernoulli(0.2)
                                ? (rng.bernoulli(0.5) ? std::uint8_t{'M'} : std::uint8_t{'L'})
                                : static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
        }
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos), garbage.begin(),
                     garbage.end());
        break;
      }
      default:  // truncate the tail
        bytes.resize(pos);
        break;
    }
  }
  return bytes;
}

TEST(NetFuzz, DecoderIsTotalAndNeverInventsEvents) {
  constexpr std::size_t kEvents = 256;
  std::vector<capture::FrameEvent> sent;
  FecEncoder encoder(7, 8);
  std::vector<std::uint8_t> clean;
  for (std::uint64_t seq = 1; seq <= kEvents; ++seq) {
    sent.push_back(make_event(seq));
    encoder.push(seq, sent.back(), clean);
  }
  encoder.flush(clean);

  for (std::uint64_t trial = 0; trial < 150; ++trial) {
    util::Rng rng(util::hash_combine(0xF022, trial));
    const std::vector<std::uint8_t> damaged = mutate(clean, rng);

    WireDecoder wire;
    FecDecoder fec;
    std::uint64_t last_seq = 0;
    std::uint64_t released = 0;
    const auto drain = [&] {
      WireFrame frame;
      while (wire.next(frame)) fec.push(frame);
      capture::FrameEvent ev;
      while (fec.next(ev)) {
        ++released;
        ASSERT_GT(ev.stream_seq, last_seq) << "trial " << trial;
        last_seq = ev.stream_seq;
        ASSERT_GE(ev.stream_seq, 1u);
        ASSERT_LE(ev.stream_seq, kEvents) << "trial " << trial;
        ASSERT_TRUE(events_equal(ev, sent[ev.stream_seq - 1]))
            << "trial " << trial << " seq " << ev.stream_seq;
      }
    };

    std::size_t off = 0;
    while (off < damaged.size()) {
      const auto chunk = std::min<std::size_t>(
          static_cast<std::size_t>(rng.uniform_int(1, 1500)), damaged.size() - off);
      wire.feed({damaged.data() + off, chunk});
      drain();
      off += chunk;
    }
    fec.finish();
    drain();

    const WireDecoderStats& ws = wire.stats();
    EXPECT_EQ(ws.bytes_fed, damaged.size());
    // Releases are unique ascending sequences and gaps are sequences given
    // up on; together they can never exceed the sequence space that was sent.
    EXPECT_LE(released + fec.stats().unrecoverable_gaps, kEvents);
  }
}

TEST(NetFuzz, PureGarbageDecodesToNothing) {
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    util::Rng rng(util::hash_combine(0x6a4b, trial));
    std::vector<std::uint8_t> garbage(4096);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));

    WireDecoder wire;
    wire.feed(garbage);
    WireFrame frame;
    std::size_t frames = 0;
    while (wire.next(frame)) ++frames;
    // A random 24-byte header passing both magic and CRC is a ~2^-48 event.
    EXPECT_EQ(frames, 0u);
    EXPECT_GT(wire.stats().resync_bytes, 0u);
  }
}

}  // namespace
}  // namespace mm::net
