#include "util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mm::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  s.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.2909944487, 1e-9);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  s.add_all({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);
}

TEST(SampleSet, PercentileUnsortedInput) {
  SampleSet s;
  s.add_all({50.0, 10.0, 40.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
}

TEST(SampleSet, PercentileAfterAppendInvalidatesCache) {
  SampleSet s;
  s.add_all({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW((void)s.percentile(50), std::out_of_range);
  EXPECT_THROW((void)s.min(), std::out_of_range);
  EXPECT_THROW((void)s.max(), std::out_of_range);
}

TEST(SampleSet, PercentileClampsOutOfRangeP) {
  SampleSet s;
  s.add_all({1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.percentile(-10), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(200), 2.0);
}

TEST(Histogram, BinsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.5);
  h.add(2.5);
  h.add(9.9);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_EQ(h.count(0), 2u);  // [0,2)
  EXPECT_EQ(h.count(1), 1u);  // [2,4)
  EXPECT_EQ(h.count(4), 1u);  // [8,10)
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 2);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(1.0, 3.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 3.0);
}

TEST(Histogram, Fractions) {
  Histogram h(0.0, 4.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
  h.add(1.0);
  h.add(1.0);
  h.add(3.0);
  EXPECT_NEAR(h.fraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.fraction(1), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, ToStringContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string text = h.to_string(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('|'), std::string::npos);
}

}  // namespace
}  // namespace mm::util
