// Afterburner pool contract: every chunk runs exactly once, exceptions
// propagate, nesting cannot deadlock, and chunk-ordered reduction is
// bit-identical at any parallelism. Run under TSan in CI.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace mm::util {
namespace {

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> touched(kCount);
  pool.run_chunks(kCount, 7, 4, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPool, ChunkBoundariesIndependentOfParallelism) {
  ThreadPool pool(8);
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    std::vector<std::pair<std::size_t, std::size_t>> bounds(4);
    pool.run_chunks(10, 3, parallelism,
                    [&](std::size_t c, std::size_t begin, std::size_t end) {
                      bounds[c] = {begin, end};
                    });
    EXPECT_EQ(bounds[0], (std::pair<std::size_t, std::size_t>{0, 3}));
    EXPECT_EQ(bounds[1], (std::pair<std::size_t, std::size_t>{3, 6}));
    EXPECT_EQ(bounds[2], (std::pair<std::size_t, std::size_t>{6, 9}));
    EXPECT_EQ(bounds[3], (std::pair<std::size_t, std::size_t>{9, 10}));
  }
}

TEST(ThreadPool, SerialPathSpawnsNoWorkers) {
  ThreadPool pool(4);
  std::size_t ran = 0;
  pool.run_chunks(100, 10, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
    ran += end - begin;  // single-threaded by contract: no atomics needed
  });
  EXPECT_EQ(ran, 100u);
  EXPECT_EQ(pool.spawned_workers(), 0u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_chunks(100, 1, 4,
                      [&](std::size_t c, std::size_t, std::size_t) {
                        if (c == 13) throw std::runtime_error("chunk 13");
                      }),
      std::runtime_error);
}

TEST(ThreadPool, NestedRunChunksCompletes) {
  // Caller participation makes nesting safe even when the inner batch gets
  // no helpers: every level drains its own chunks.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.run_chunks(8, 1, 4, [&](std::size_t, std::size_t, std::size_t) {
    pool.run_chunks(8, 1, 4, [&](std::size_t, std::size_t begin, std::size_t end) {
      inner_total.fetch_add(static_cast<int>(end - begin));
    });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPool, ReduceBitIdenticalAcrossParallelism) {
  ThreadPool pool(8);
  // Summands spanning ~12 orders of magnitude: any regrouping of the
  // additions would change the result, so equality here is the determinism
  // guarantee, not luck.
  constexpr std::size_t kCount = 10'000;
  std::vector<double> values(kCount);
  Rng rng(99);
  for (auto& v : values) v = std::exp(rng.uniform(-14.0, 14.0));

  auto sum_at = [&](std::size_t parallelism) {
    return parallel_reduce(
        pool, kCount, 64, parallelism, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double partial = 0.0;
          for (std::size_t i = begin; i < end; ++i) partial += values[i];
          return partial;
        },
        [](double acc, double partial) { return acc + partial; });
  };
  const double serial = sum_at(1);
  EXPECT_EQ(serial, sum_at(2));
  EXPECT_EQ(serial, sum_at(8));
}

TEST(ThreadPool, MapIntoFillsEverySlot) {
  ThreadPool pool(4);
  std::vector<std::size_t> out(257);
  parallel_map_into(pool, 4, out, [](std::size_t i) { return i * i; }, 5);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ConcurrentBatchesFromManyThreads) {
  // The shared pool serves every offline component at once; hammer one pool
  // from several caller threads to give TSan something to chew on.
  ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::atomic<std::size_t> grand_total{0};
  for (int c = 0; c < 6; ++c) {
    callers.emplace_back([&] {
      for (int iter = 0; iter < 20; ++iter) {
        std::atomic<std::size_t> local{0};
        pool.run_chunks(100, 3, 4, [&](std::size_t, std::size_t begin, std::size_t end) {
          local.fetch_add(end - begin);
        });
        grand_total.fetch_add(local.load());
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(grand_total.load(), 6u * 20u * 100u);
}

TEST(ThreadPool, ZeroCountIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.run_chunks(0, 8, 4, [&](std::size_t, std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace mm::util
