// Dual-band (802.11a) behaviour: the paper notes that covering 802.11a
// takes 12 more channels/cards. These tests pin down band isolation —
// b/g-only scans miss 5 GHz APs; dual-band scans find them; the sniffer
// needs A-band cards to capture the 5 GHz side.
#include <gtest/gtest.h>

#include <memory>

#include "capture/sniffer.h"
#include "sim/ap.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"

namespace mm::sim {
namespace {

const net80211::MacAddress kFiveGhzAp = *net80211::MacAddress::parse("00:1a:2b:00:0a:01");
const net80211::MacAddress kBgAp = *net80211::MacAddress::parse("00:1a:2b:00:0a:02");
const net80211::MacAddress kClient = *net80211::MacAddress::parse("00:16:6f:00:0a:03");

struct DualScene {
  World world{{}};
  AccessPoint* five_ghz = nullptr;
  AccessPoint* bg = nullptr;
  MobileDevice* mobile = nullptr;
};

std::unique_ptr<DualScene> make_scene(bool dual_band_client) {
  auto scene = std::make_unique<DualScene>();
  ApConfig a_cfg;
  a_cfg.bssid = kFiveGhzAp;
  a_cfg.ssid = "FiveG";
  a_cfg.channel = {rf::Band::kA5GHz, 36};
  a_cfg.position = {30.0, 0.0};
  a_cfg.service_radius_m = 100.0;
  scene->five_ghz = scene->world.add_access_point(std::make_unique<AccessPoint>(a_cfg));

  ApConfig bg_cfg = a_cfg;
  bg_cfg.bssid = kBgAp;
  bg_cfg.ssid = "TwoFourG";
  bg_cfg.channel = {rf::Band::kBg24GHz, 6};
  bg_cfg.position = {-30.0, 0.0};
  scene->bg = scene->world.add_access_point(std::make_unique<AccessPoint>(bg_cfg));

  MobileConfig mc;
  mc.mac = kClient;
  mc.profile.probes = false;
  if (dual_band_client) {
    mc.profile.scan_bands = {rf::Band::kBg24GHz, rf::Band::kA5GHz};
  }
  mc.mobility = std::make_shared<StaticPosition>(geo::Vec2{0.0, 0.0});
  scene->mobile = scene->world.add_mobile(std::make_unique<MobileDevice>(mc));
  return scene;
}

TEST(DualBand, BgOnlyClientMissesFiveGhzAp) {
  auto scene = make_scene(/*dual_band_client=*/false);
  scene->mobile->trigger_scan();
  scene->world.run_until(2.0);
  EXPECT_EQ(scene->five_ghz->probes_answered(), 0u);
  EXPECT_EQ(scene->bg->probes_answered(), 1u);
  EXPECT_EQ(scene->mobile->heard_aps().count(kFiveGhzAp), 0u);
}

TEST(DualBand, DualBandClientFindsBoth) {
  auto scene = make_scene(/*dual_band_client=*/true);
  scene->mobile->trigger_scan();
  scene->world.run_until(2.0);
  EXPECT_EQ(scene->five_ghz->probes_answered(), 1u);
  EXPECT_EQ(scene->bg->probes_answered(), 1u);
  EXPECT_EQ(scene->mobile->heard_aps().size(), 2u);
  // 11 b/g + 12 a channels swept.
  EXPECT_EQ(scene->mobile->probes_sent(), 23u);
}

TEST(DualBand, SnifferNeedsABandCardForFiveGhzGamma) {
  for (const bool with_a_card : {false, true}) {
    auto scene = make_scene(true);
    capture::ObservationStore store;
    capture::SnifferConfig sc;
    sc.position = {0.0, 50.0};
    if (with_a_card) sc.card_channels.push_back({rf::Band::kA5GHz, 36});
    capture::Sniffer sniffer(sc, &store);
    sniffer.attach(scene->world);
    scene->mobile->trigger_scan();
    scene->world.run_until(2.0);

    const auto gamma = store.gamma(kClient);
    EXPECT_EQ(gamma.count(kBgAp), 1u);
    EXPECT_EQ(gamma.count(kFiveGhzAp), with_a_card ? 1u : 0u)
        << "a-band card present: " << with_a_card;
  }
}

TEST(DualBand, ScenarioFiveGhzFraction) {
  CampusConfig cfg;
  cfg.num_aps = 2000;
  cfg.five_ghz_fraction = 0.25;
  std::size_t five = 0;
  for (const ApTruth& ap : generate_campus_aps(cfg)) {
    if (ap.band == rf::Band::kA5GHz) {
      ++five;
      // Valid US 802.11a channel numbers only.
      EXPECT_NO_THROW((void)rf::channel_center_mhz({rf::Band::kA5GHz, ap.channel}));
    }
  }
  EXPECT_NEAR(static_cast<double>(five) / 2000.0, 0.25, 0.03);
}

TEST(DualBand, ScenarioDefaultIsAllBg) {
  CampusConfig cfg;
  cfg.num_aps = 100;
  for (const ApTruth& ap : generate_campus_aps(cfg)) {
    EXPECT_EQ(ap.band, rf::Band::kBg24GHz);
  }
}

}  // namespace
}  // namespace mm::sim
