#include "rf/receiver_chain.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/units.h"

namespace mm::rf {
namespace {

TEST(Units, DbConversionsRoundtrip) {
  EXPECT_NEAR(db_to_linear(linear_to_db(7.5)), 7.5, 1e-12);
  EXPECT_DOUBLE_EQ(db_to_linear(0.0), 1.0);
  EXPECT_DOUBLE_EQ(db_to_linear(10.0), 10.0);
  EXPECT_DOUBLE_EQ(mw_to_dbm(1.0), 0.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(30.0), 1000.0);
}

TEST(Units, FreeSpacePathLossKnownValue) {
  // FSPL at 1 km, 2.437 GHz ~= 100.2 dB.
  EXPECT_NEAR(free_space_path_loss_db(1000.0, 2437.0), 100.2, 0.2);
}

TEST(Units, FsplPlus6dBPerDoubling) {
  const double d1 = free_space_path_loss_db(100.0, 2412.0);
  const double d2 = free_space_path_loss_db(200.0, 2412.0);
  EXPECT_NEAR(d2 - d1, 6.0206, 1e-3);
}

TEST(Units, NoiseFloor22MHz) {
  // -174 + 10log10(22e6) ~= -100.6 dBm.
  EXPECT_NEAR(noise_floor_dbm(22e6), -100.6, 0.1);
}

TEST(Components, SplitterInsertionLoss) {
  const Splitter s{"4-way", 4, 0.5};
  EXPECT_NEAR(s.insertion_loss_db(), 10.0 * std::log10(4.0) + 0.5, 1e-12);
}

TEST(Components, NicSensitivityFormula) {
  const Nic nic{"test", 4.0, 5.0, 22e6, 20.0};
  EXPECT_NEAR(nic.sensitivity_dbm(), -174.0 + 4.0 + 5.0 + 10.0 * std::log10(22e6), 1e-9);
}

TEST(ReceiverChain, BareCardNoiseFigureIsNicNf) {
  const ReceiverChain chain = presets::chain_src();
  EXPECT_NEAR(chain.cascade_noise_figure_db(), chain.nic().noise_figure_db, 1e-9);
}

// Paper Section III-A: with a high-gain LNA in front, the chain noise figure
// collapses to (approximately) the LNA's own 1.5 dB.
TEST(ReceiverChain, LnaDominatesCascadeNoiseFigure) {
  const ReceiverChain chain = presets::chain_lna();
  EXPECT_NEAR(chain.cascade_noise_figure_db(), 1.5, 0.1);
}

// The paper quotes a noise-figure improvement of 2.5-4.5 dB when the LNA is
// added in front of a 4.0-6.0 dB NIC.
TEST(ReceiverChain, NoiseFigureImprovementMatchesPaperRange) {
  const double improvement = presets::chain_hg2415u().cascade_noise_figure_db() -
                             presets::chain_lna().cascade_noise_figure_db();
  EXPECT_GE(improvement, 2.0);
  EXPECT_LE(improvement, 4.6);
}

// Paper: 45 dB LNA followed by a 4-way splitter still leaves ~39 dB of
// amplification at every card input.
TEST(ReceiverChain, SplitterStillLeaves39dBAmplification) {
  const ReceiverChain chain = presets::chain_lna();
  const double amplification = chain.nic_input_dbm(-60.0) - (-60.0);
  EXPECT_NEAR(amplification, 45.0 - 10.0 * std::log10(4.0) - 0.5, 1e-9);
  EXPECT_GT(amplification, 38.0);
}

TEST(ReceiverChain, SensitivityImprovesWithLna) {
  EXPECT_LT(presets::chain_lna().sensitivity_dbm(),
            presets::chain_hg2415u().sensitivity_dbm());
}

TEST(ReceiverChain, EffectiveSnrAddsAntennaGain) {
  const ReceiverChain bare = presets::chain_src();
  const ReceiverChain high = presets::chain_hg2415u();
  const double snr_bare = bare.effective_snr_db(-80.0);
  const double snr_high = high.effective_snr_db(-80.0);
  EXPECT_NEAR(snr_high - snr_bare, (15.0 - 4.0) - (4.0 - 4.0), 1e-9);
}

TEST(ReceiverChain, Theorem1RadiusOrderingMatchesFig12) {
  const Transmitter mobile = presets::laptop_client();
  const double freq = 2437.0;
  const double d_dlink = presets::chain_dlink().theorem1_coverage_radius_m(mobile, freq);
  const double d_src = presets::chain_src().theorem1_coverage_radius_m(mobile, freq);
  const double d_hg = presets::chain_hg2415u().theorem1_coverage_radius_m(mobile, freq);
  const double d_lna = presets::chain_lna().theorem1_coverage_radius_m(mobile, freq);
  EXPECT_LT(d_dlink, d_src);
  EXPECT_LT(d_src, d_hg);
  EXPECT_LT(d_hg, d_lna);
}

TEST(ReceiverChain, Theorem1MarginConsistentWithRadius) {
  const Transmitter mobile = presets::laptop_client();
  const ReceiverChain chain = presets::chain_lna();
  const double radius = chain.theorem1_coverage_radius_m(mobile, 2437.0);
  // Just inside the radius: positive margin; just outside: negative.
  EXPECT_GT(chain.free_space_margin_db(mobile, 2437.0, radius * 0.99), 0.0);
  EXPECT_LT(chain.free_space_margin_db(mobile, 2437.0, radius * 1.01), 0.0);
}

TEST(ReceiverChain, Theorem1RadiusScalesWithTxPower) {
  const ReceiverChain chain = presets::chain_src();
  const double d_15 = chain.theorem1_coverage_radius_m({15.0, 0.0}, 2437.0);
  const double d_21 = chain.theorem1_coverage_radius_m({21.0, 0.0}, 2437.0);
  // +6 dB tx power doubles the free-space radius.
  EXPECT_NEAR(d_21 / d_15, 2.0, 0.01);
}

TEST(ReceiverChain, HigherGainAntennaExtendsRadius) {
  const Transmitter ap = presets::consumer_ap();
  const ReceiverChain low("low", Antenna{"2dBi", 2.0}, presets::ubiquiti_src());
  const ReceiverChain high("high", Antenna{"15dBi", 15.0}, presets::ubiquiti_src());
  const double ratio = high.theorem1_coverage_radius_m(ap, 2437.0) /
                       low.theorem1_coverage_radius_m(ap, 2437.0);
  EXPECT_NEAR(ratio, std::pow(10.0, 13.0 / 20.0), 0.01);
}

TEST(ReceiverChain, PresetNames) {
  EXPECT_EQ(presets::chain_dlink().name(), "DLink");
  EXPECT_EQ(presets::chain_src().name(), "SRC");
  EXPECT_EQ(presets::chain_hg2415u().name(), "HG2415U");
  EXPECT_EQ(presets::chain_lna().name(), "LNA");
  EXPECT_TRUE(presets::chain_lna().has_lna());
  EXPECT_FALSE(presets::chain_hg2415u().has_lna());
  EXPECT_EQ(presets::chain_lna().splitter_ways(), 4);
}

}  // namespace
}  // namespace mm::rf
