#include "geo/disc_intersection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "util/rng.h"

namespace mm::geo {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(DiscIntersection, EmptyInputThrows) {
  std::vector<Circle> none;
  EXPECT_THROW((void)DiscIntersection::compute(none), std::invalid_argument);
}

TEST(DiscIntersection, NonPositiveRadiusThrows) {
  const std::vector<Circle> discs{{{0.0, 0.0}, 0.0}};
  EXPECT_THROW((void)DiscIntersection::compute(discs), std::invalid_argument);
}

TEST(DiscIntersection, SingleDiscIsFullDisc) {
  const std::vector<Circle> discs{{{2.0, -1.0}, 3.0}};
  const auto region = DiscIntersection::compute(discs);
  EXPECT_FALSE(region.empty());
  EXPECT_NEAR(region.area(), kPi * 9.0, 1e-6);
  EXPECT_NEAR(region.centroid().x, 2.0, 1e-6);
  EXPECT_NEAR(region.centroid().y, -1.0, 1e-6);
}

TEST(DiscIntersection, DisjointPairIsEmpty) {
  const std::vector<Circle> discs{{{0.0, 0.0}, 1.0}, {{10.0, 0.0}, 1.0}};
  const auto region = DiscIntersection::compute(discs);
  EXPECT_TRUE(region.empty());
  EXPECT_DOUBLE_EQ(region.area(), 0.0);
}

TEST(DiscIntersection, TwoCircleLensMatchesClosedForm) {
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{1.0, 0.0}, 1.0};
  const std::vector<Circle> discs{a, b};
  const auto region = DiscIntersection::compute(discs);
  EXPECT_FALSE(region.empty());
  EXPECT_NEAR(region.area(), lens_area(a, b), 1e-9);
  // Symmetric lens: centroid at the midpoint.
  EXPECT_NEAR(region.centroid().x, 0.5, 1e-9);
  EXPECT_NEAR(region.centroid().y, 0.0, 1e-9);
}

TEST(DiscIntersection, NestedDiscsReduceToInner) {
  const std::vector<Circle> discs{{{0.0, 0.0}, 5.0}, {{0.3, 0.2}, 1.0}, {{-0.1, 0.0}, 4.0}};
  const auto region = DiscIntersection::compute(discs);
  EXPECT_FALSE(region.empty());
  EXPECT_NEAR(region.area(), kPi, 1e-6);
  EXPECT_NEAR(region.centroid().x, 0.3, 1e-6);
  EXPECT_NEAR(region.centroid().y, 0.2, 1e-6);
}

TEST(DiscIntersection, DuplicateDiscsNotDoubleCounted) {
  const Circle c{{1.0, 1.0}, 2.0};
  const std::vector<Circle> discs{c, c, c};
  const auto region = DiscIntersection::compute(discs);
  EXPECT_NEAR(region.area(), c.area(), 1e-6);
  EXPECT_NEAR(region.centroid().x, 1.0, 1e-6);
}

TEST(DiscIntersection, PairwiseOverlapButEmptyCommon) {
  // Three discs arranged so each pair overlaps but no point is in all three.
  const double r = 1.0;
  const double d = 1.9;  // pairwise distance < 2r, but > r*sqrt(3)
  const std::vector<Circle> discs{
      {{0.0, 0.0}, r},
      {{d, 0.0}, r},
      {{d / 2.0, d * std::sqrt(3.0) / 2.0}, r},
  };
  const auto region = DiscIntersection::compute(discs);
  EXPECT_TRUE(region.empty());
}

TEST(DiscIntersection, ThreeSymmetricDiscsCentroidAtCenter) {
  // Three unit discs centered on an equilateral triangle around the origin.
  std::vector<Circle> discs;
  for (int i = 0; i < 3; ++i) {
    const double theta = 2.0 * kPi * i / 3.0;
    discs.push_back({Vec2::from_polar(0.5, theta), 1.0});
  }
  const auto region = DiscIntersection::compute(discs);
  EXPECT_FALSE(region.empty());
  EXPECT_NEAR(region.centroid().x, 0.0, 1e-9);
  EXPECT_NEAR(region.centroid().y, 0.0, 1e-9);
  EXPECT_GT(region.area(), 0.0);
  EXPECT_LT(region.area(), kPi);
}

TEST(DiscIntersection, ContainsAgreesWithDefiningDiscs) {
  const std::vector<Circle> discs{{{0.0, 0.0}, 2.0}, {{1.0, 0.0}, 2.0}};
  const auto region = DiscIntersection::compute(discs);
  EXPECT_TRUE(region.contains({0.5, 0.0}));
  EXPECT_FALSE(region.contains({-1.5, 0.0}));  // in disc 1 only
  EXPECT_FALSE(region.contains({5.0, 5.0}));
}

TEST(DiscIntersection, VerticesLieOnTwoCirclesAndInAllDiscs) {
  const std::vector<Circle> discs{{{0.0, 0.0}, 1.5}, {{1.0, 0.3}, 1.2}, {{0.4, -0.8}, 1.4}};
  const auto region = DiscIntersection::compute(discs);
  ASSERT_FALSE(region.empty());
  const auto verts = region.vertices();
  EXPECT_GE(verts.size(), 3u);
  for (const Vec2& v : verts) {
    int on_boundary = 0;
    for (const Circle& c : discs) {
      EXPECT_TRUE(c.contains(v, 1e-6));
      if (std::abs(c.center.distance_to(v) - c.radius) < 1e-6) ++on_boundary;
    }
    EXPECT_GE(on_boundary, 2);
  }
}

TEST(DiscIntersection, CentroidInsideRegion) {
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Circle> discs;
    const int k = static_cast<int>(rng.uniform_int(2, 8));
    for (int i = 0; i < k; ++i) {
      // Centers within unit distance of origin, radius 1: origin always inside.
      discs.push_back({Vec2::from_polar(rng.uniform() * 0.999, rng.angle()), 1.0});
    }
    const auto region = DiscIntersection::compute(discs);
    ASSERT_FALSE(region.empty());
    EXPECT_TRUE(region.contains(region.centroid(), 1e-6))
        << "trial " << trial << " centroid escaped the region";
  }
}

TEST(DiscIntersection, AreaDecreasesAsDiscsAdded) {
  util::Rng rng(7);
  std::vector<Circle> discs{{{0.0, 0.0}, 1.0}};
  double prev_area = DiscIntersection::compute(discs).area();
  for (int i = 0; i < 10; ++i) {
    discs.push_back({Vec2::from_polar(rng.uniform() * 0.9, rng.angle()), 1.0});
    const double area = DiscIntersection::compute(discs).area();
    EXPECT_LE(area, prev_area + 1e-9);
    prev_area = area;
  }
}

struct AreaCase {
  int k;
  std::uint64_t seed;
};

class MonteCarloAreaTest : public ::testing::TestWithParam<AreaCase> {};

TEST_P(MonteCarloAreaTest, ClosedFormMatchesMonteCarlo) {
  const auto [k, seed] = GetParam();
  util::Rng rng(seed);
  std::vector<Circle> discs;
  for (int i = 0; i < k; ++i) {
    discs.push_back({Vec2::from_polar(rng.uniform() * 0.95, rng.angle()),
                     rng.uniform(0.8, 1.3)});
  }
  const auto region = DiscIntersection::compute(discs);
  ASSERT_FALSE(region.empty());
  const double mc = DiscIntersection::monte_carlo_area(discs, 400000, seed ^ 0xabcdef);
  // Monte-Carlo with 400k samples: ~0.5% relative tolerance plus small absolute slack.
  EXPECT_NEAR(region.area(), mc, 0.01 * region.area() + 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MonteCarloAreaTest,
                         ::testing::Values(AreaCase{2, 101}, AreaCase{2, 102},
                                           AreaCase{3, 201}, AreaCase{3, 202},
                                           AreaCase{4, 301}, AreaCase{5, 401},
                                           AreaCase{6, 501}, AreaCase{8, 601},
                                           AreaCase{10, 701}, AreaCase{12, 801}));

class TrueLocationCoverageTest : public ::testing::TestWithParam<int> {};

// Paper invariant: when AP radii are exact, the intersected area always
// covers the mobile's real location (Section III-C.1).
TEST_P(TrueLocationCoverageTest, RegionAlwaysCoversMobile) {
  const int k = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(k) * 7919);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec2 mobile{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    std::vector<Circle> discs;
    for (int i = 0; i < k; ++i) {
      // APs uniform in the disc of radius r around the mobile (communicable).
      const double r = 1.0;
      const Vec2 ap = mobile + Vec2::from_polar(r * std::sqrt(rng.uniform()), rng.angle());
      discs.push_back({ap, r});
    }
    const auto region = DiscIntersection::compute(discs);
    ASSERT_FALSE(region.empty());
    EXPECT_TRUE(region.contains(mobile, 1e-7));
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, TrueLocationCoverageTest, ::testing::Range(1, 15));

TEST(DiscIntersection, TangentPairHasZeroArea) {
  const std::vector<Circle> discs{{{0.0, 0.0}, 1.0}, {{2.0, 0.0}, 1.0}};
  const auto region = DiscIntersection::compute(discs);
  // Tangency: region is a single point; either empty or zero-area is correct.
  EXPECT_LT(region.area(), 1e-6);
}

TEST(DiscIntersection, MonteCarloAreaZeroForDisjoint) {
  const std::vector<Circle> discs{{{0.0, 0.0}, 1.0}, {{10.0, 0.0}, 1.0}};
  EXPECT_DOUBLE_EQ(DiscIntersection::monte_carlo_area(discs, 10000, 1), 0.0);
}

/// Scalar reference for the Slipstream prefilter kernel: the exact
/// squared-distance predicate, pair by pair, no SoA, no branch-free tricks.
bool oracle_any_pair_disjoint(const std::vector<Circle>& discs, double eps) {
  for (std::size_t i = 0; i < discs.size(); ++i) {
    for (std::size_t j = i + 1; j < discs.size(); ++j) {
      const double reach = discs[i].radius + discs[j].radius + eps;
      if (reach < 0.0) return true;
      const double dx = discs[j].center.x - discs[i].center.x;
      const double dy = discs[j].center.y - discs[i].center.y;
      if (dx * dx + dy * dy > reach * reach) return true;
    }
  }
  return false;
}

TEST(SlipstreamPrefilter, KernelMatchesScalarOracleRandomized) {
  // Randomized decision-equality sweep: dense clusters (rarely disjoint),
  // sprawling fields (usually disjoint), and near-tangent pairs built to sit
  // right at the reach boundary. Each case runs both the SoA kernel and the
  // scalar oracle; any divergence is a correctness bug in the
  // vector-friendly rewrite, not a tolerance issue.
  util::Rng rng(0x51195);
  std::size_t disjoint_cases = 0;
  std::size_t overlap_cases = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = 2 + rng.next_u64() % 12;
    const double spread = trial % 2 == 0 ? 3.0 : 40.0;  // dense vs sprawling
    std::vector<Circle> discs;
    discs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      discs.push_back({{rng.uniform(-spread, spread), rng.uniform(-spread, spread)},
                       rng.uniform(0.5, 4.0)});
    }
    if (trial % 3 == 0 && n >= 2) {
      // Force a near-tangent pair: place disc 1 exactly reach away from
      // disc 0 along x, so the squared comparison sits on its boundary.
      discs[1].center = {discs[0].center.x + discs[0].radius + discs[1].radius,
                        discs[0].center.y};
    }
    const double eps = trial % 5 == 0 ? -1e-9 : rng.uniform(-1e-6, 1e-6);
    const bool expected = oracle_any_pair_disjoint(discs, eps);
    const bool got = any_pair_disjoint(discs, eps);
    ASSERT_EQ(expected, got) << "trial " << trial << " n=" << n << " eps=" << eps;
    (expected ? disjoint_cases : overlap_cases) += 1;
  }
  // The sweep must actually exercise both decisions.
  EXPECT_GT(disjoint_cases, 100u);
  EXPECT_GT(overlap_cases, 100u);

  // Degenerate negative reach: eps so negative that nothing can touch. The
  // kernel must take the sign-aware branch, not the squared compare.
  const std::vector<Circle> touching{{{0.0, 0.0}, 1.0}, {{0.0, 0.0}, 1.0}};
  EXPECT_TRUE(any_pair_disjoint(touching, -3.0));
  EXPECT_TRUE(oracle_any_pair_disjoint(touching, -3.0));

  // Single disc / empty slab: no pair exists.
  const std::vector<Circle> one{{{1.0, 2.0}, 3.0}};
  EXPECT_FALSE(any_pair_disjoint(one, -1e-9));
}

TEST(DiscIntersection, LargeKStressStaysConsistent) {
  util::Rng rng(31337);
  std::vector<Circle> discs;
  for (int i = 0; i < 40; ++i) {
    discs.push_back({Vec2::from_polar(rng.uniform() * 0.9, rng.angle()), 1.0});
  }
  const auto region = DiscIntersection::compute(discs);
  ASSERT_FALSE(region.empty());
  EXPECT_TRUE(region.contains({0.0, 0.0}, 1e-2) || region.area() > 0.0);
  const double mc = DiscIntersection::monte_carlo_area(discs, 300000, 5);
  EXPECT_NEAR(region.area(), mc, 0.02 * region.area() + 5e-3);
}

}  // namespace
}  // namespace mm::geo
