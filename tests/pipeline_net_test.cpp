// Lattice end-to-end: remote sniffer streams through the SnifferFeedMux
// into Riptide, pinned against the direct in-process push path.
//
// The acceptance contract (ISSUE: loss-sweep invariant): when the fabric
// loses at most one data frame per parity block, the reassembled stream —
// and therefore every published position — is BIT-identical to the lossless
// run; beyond parity's reach the mux counts unrecoverable gaps and keeps
// flowing, never throws. Re-pumping the same recorded streams into a
// recovered tracker reproduces the same global sequences, so Phoenix's
// exactly-once dedup suppresses every replayed event.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "fault/fault_plan.h"
#include "marauder/ap_database.h"
#include "net/fec.h"
#include "net/link_sim.h"
#include "net/wire_codec.h"
#include "pipeline/feed_mux.h"
#include "pipeline/live_tracker.h"
#include "sim/scenario.h"

namespace mm::pipeline {
namespace {

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << a << " != " << b << " (bitwise)";
}

struct Fixture {
  std::vector<sim::ApTruth> truth;
  marauder::ApDatabase db;
  std::vector<capture::FrameEvent> events;

  static Fixture make(std::size_t event_count) {
    sim::CampusConfig campus;
    campus.seed = 1337;
    campus.num_aps = 60;
    Fixture f{sim::generate_campus_aps(campus), marauder::ApDatabase(), {}};
    f.db = marauder::ApDatabase::from_truth(f.truth, true);
    for (std::size_t i = 0; i < event_count; ++i) {
      capture::FrameEvent ev;
      ev.kind = capture::FrameEventKind::kContact;
      const std::size_t d = i % 5;
      ev.device = net80211::MacAddress::from_u64(0x0016f0000100ULL + d);
      ev.ap = f.truth[(d * 7 + (i / 5) % 9) % f.truth.size()].bssid;
      ev.time_s = static_cast<double>(i) * 0.01;
      ev.rssi_dbm = -55.0 - static_cast<double>(i % 25);
      f.events.push_back(ev);
    }
    return f;
  }
};

using Snapshot = std::vector<std::pair<net80211::MacAddress, LivePosition>>;

Snapshot sorted_snapshot(LiveTracker& tracker) {
  auto snap = tracker.snapshot();
  std::sort(snap.begin(), snap.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

void expect_snapshots_equal(const Snapshot& a, const Snapshot& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_TRUE(bits_equal(a[i].second.x_m, b[i].second.x_m))
        << a[i].first.to_string();
    EXPECT_TRUE(bits_equal(a[i].second.y_m, b[i].second.y_m))
        << a[i].first.to_string();
    EXPECT_EQ(a[i].second.gamma_size, b[i].second.gamma_size);
    EXPECT_EQ(a[i].second.updates, b[i].second.updates);
    EXPECT_EQ(a[i].second.used_fallback, b[i].second.used_fallback);
  }
}

LiveTrackerConfig lossless_config(std::size_t shards = 2) {
  LiveTrackerConfig config;
  config.shards = shards;
  config.drop_policy = DropPolicy::kBlock;
  return config;
}

/// The oracle: push the events straight into the tracker, in order.
Snapshot run_direct(const Fixture& f) {
  LiveTracker tracker(f.db, lossless_config());
  tracker.start();
  std::uint64_t seq = 0;
  for (capture::FrameEvent ev : f.events) {
    ev.stream_seq = ++seq;
    tracker.push(ev);
  }
  tracker.stop();
  return sorted_snapshot(tracker);
}

std::vector<std::uint8_t> encode(const std::vector<capture::FrameEvent>& events,
                                 std::size_t block_k, std::uint32_t stream_id = 1) {
  net::FecEncoder encoder(stream_id, block_k);
  std::vector<std::uint8_t> wire;
  std::uint64_t seq = 0;
  for (const capture::FrameEvent& ev : events) encoder.push(++seq, ev, wire);
  encoder.flush(wire);
  return wire;
}

std::vector<std::vector<std::uint8_t>> split_frames(const std::vector<std::uint8_t>& wire) {
  std::vector<std::vector<std::uint8_t>> frames;
  std::size_t off = 0;
  while (off + net::kWireHeaderBytes <= wire.size()) {
    const std::size_t len = static_cast<std::size_t>(wire[off + 18]) |
                            (static_cast<std::size_t>(wire[off + 19]) << 8);
    const std::size_t frame_len = net::kWireHeaderBytes + len;
    frames.emplace_back(wire.begin() + static_cast<std::ptrdiff_t>(off),
                        wire.begin() + static_cast<std::ptrdiff_t>(off + frame_len));
    off += frame_len;
  }
  return frames;
}

void pump(SnifferFeedMux& mux, std::size_t feed, const std::vector<std::uint8_t>& bytes,
          std::size_t chunk = 1000) {
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    mux.on_bytes(feed, {bytes.data() + off, std::min(chunk, bytes.size() - off)});
  }
}

TEST(PipelineNet, LosslessFeedBitIdenticalToDirectPush) {
  const Fixture f = Fixture::make(2000);
  const Snapshot direct = run_direct(f);
  ASSERT_FALSE(direct.empty());

  LiveTracker tracker(f.db, lossless_config());
  tracker.start();
  SnifferFeedMux mux(tracker);
  const std::size_t feed = mux.add_feed(1);
  pump(mux, feed, encode(f.events, 8));
  mux.finish();
  tracker.stop();

  const FeedMuxStats stats = mux.stats();
  EXPECT_EQ(stats.events_delivered, f.events.size());
  EXPECT_EQ(stats.last_stream_seq, f.events.size());
  ASSERT_EQ(stats.feeds.size(), 1u);
  EXPECT_FALSE(stats.feeds[0].degraded());
  EXPECT_EQ(stats.feeds[0].fec.unrecoverable_gaps, 0u);
  expect_snapshots_equal(sorted_snapshot(tracker), direct);
}

TEST(PipelineNet, SingleLossPerBlockRecoversBitIdentical) {
  const Fixture f = Fixture::make(2000);
  const Snapshot direct = run_direct(f);

  constexpr std::size_t kBlock = 8;
  const auto frames = split_frames(encode(f.events, kBlock));
  // Drop the third data frame of every block: exactly one loss per block,
  // all of it inside parity's reach.
  std::vector<std::uint8_t> damaged;
  std::size_t data_index = 0;
  std::size_t dropped = 0;
  for (const auto& frame : frames) {
    const bool is_data = frame[3] == 0;
    if (is_data && data_index++ % kBlock == 2) {
      ++dropped;
      continue;
    }
    damaged.insert(damaged.end(), frame.begin(), frame.end());
  }
  ASSERT_GT(dropped, 0u);

  LiveTracker tracker(f.db, lossless_config());
  tracker.start();
  SnifferFeedMux mux(tracker);
  pump(mux, mux.add_feed(1), damaged);
  mux.finish();
  tracker.stop();

  const FeedMuxStats stats = mux.stats();
  EXPECT_EQ(stats.feeds[0].fec.recovered, dropped);
  EXPECT_EQ(stats.feeds[0].fec.unrecoverable_gaps, 0u);
  EXPECT_EQ(stats.events_delivered, f.events.size());
  expect_snapshots_equal(sorted_snapshot(tracker), direct);
}

TEST(PipelineNet, HeavyLossCountsGapsAndKeepsFlowing) {
  const Fixture f = Fixture::make(3000);
  fault::FaultPlan plan;
  plan.drop_rate = 0.2;
  plan.corrupt_rate = 0.05;
  plan.burst_rate = 0.005;
  plan.burst_frames_mean = 12.0;
  plan.reorder_rate = 0.05;
  plan.seed = 0xBAD;

  net::LinkSimulator link(plan);
  for (const auto& frame : split_frames(encode(f.events, 8))) link.send(frame);
  link.flush();
  const std::vector<std::uint8_t> damaged = link.take();

  LiveTracker tracker(f.db, lossless_config());
  tracker.start();
  SnifferFeedMux mux(tracker);
  pump(mux, mux.add_feed(1), damaged);
  mux.finish();  // must not throw, must not wedge
  tracker.stop();

  const FeedMuxStats stats = mux.stats();
  ASSERT_EQ(stats.feeds.size(), 1u);
  EXPECT_TRUE(stats.feeds[0].degraded());
  EXPECT_GT(stats.feeds[0].fec.unrecoverable_gaps, 0u);
  EXPECT_GT(stats.feeds[0].fec.recovered, 0u);
  EXPECT_GT(stats.events_delivered, 0u);
  EXPECT_LT(stats.events_delivered, f.events.size());
  // Gap accounting closes the books: every sent sequence was either
  // delivered or given up on.
  EXPECT_EQ(stats.events_delivered + stats.feeds[0].fec.unrecoverable_gaps,
            f.events.size());
}

TEST(PipelineNet, TwoFeedsMatchDirectPushOfTheUnion) {
  const Fixture f = Fixture::make(2000);
  const Snapshot direct = run_direct(f);

  // Split by device: per-device order is preserved inside each stream, which
  // is all the per-key state machines depend on.
  std::vector<capture::FrameEvent> a_events;
  std::vector<capture::FrameEvent> b_events;
  for (std::size_t i = 0; i < f.events.size(); ++i) {
    (i % 5 < 3 ? a_events : b_events).push_back(f.events[i]);
  }
  const std::vector<std::uint8_t> a_wire = encode(a_events, 8, 1);
  const std::vector<std::uint8_t> b_wire = encode(b_events, 8, 2);

  LiveTracker tracker(f.db, lossless_config());
  tracker.start();
  SnifferFeedMux mux(tracker);
  const std::size_t fa = mux.add_feed(1);
  const std::size_t fb = mux.add_feed(2);
  // Interleave chunks the way a poll loop over two sockets would.
  std::size_t oa = 0;
  std::size_t ob = 0;
  constexpr std::size_t kChunk = 512;
  while (oa < a_wire.size() || ob < b_wire.size()) {
    if (oa < a_wire.size()) {
      const std::size_t n = std::min(kChunk, a_wire.size() - oa);
      mux.on_bytes(fa, {a_wire.data() + oa, n});
      oa += n;
    }
    if (ob < b_wire.size()) {
      const std::size_t n = std::min(kChunk, b_wire.size() - ob);
      mux.on_bytes(fb, {b_wire.data() + ob, n});
      ob += n;
    }
  }
  mux.finish();
  tracker.stop();

  const FeedMuxStats stats = mux.stats();
  EXPECT_EQ(stats.events_delivered, f.events.size());
  expect_snapshots_equal(sorted_snapshot(tracker), direct);
}

TEST(PipelineNet, ForeignStreamIdIsCountedAndIgnored) {
  const Fixture f = Fixture::make(200);
  LiveTracker tracker(f.db, lossless_config());
  tracker.start();
  SnifferFeedMux mux(tracker);
  const std::size_t feed = mux.add_feed(1);
  pump(mux, feed, encode(f.events, 8, /*stream_id=*/9));
  mux.finish();
  tracker.stop();

  const FeedMuxStats stats = mux.stats();
  EXPECT_EQ(stats.events_delivered, 0u);
  EXPECT_GT(stats.feeds[0].stream_mismatches, 0u);
}

TEST(PipelineNet, WalRefeedAfterRecoveryDedupsEverything) {
  const Fixture f = Fixture::make(1500);
  const std::vector<std::uint8_t> wire = encode(f.events, 8);
  const std::filesystem::path wal_dir =
      std::filesystem::temp_directory_path() / "mm_net_refeed_wal";
  std::filesystem::remove_all(wal_dir);

  LiveTrackerConfig config = lossless_config();
  config.durability.dir = wal_dir;
  config.durability.wal.fsync_on_commit = false;

  Snapshot first;
  {
    LiveTracker tracker(f.db, config);
    tracker.start();
    SnifferFeedMux mux(tracker);
    pump(mux, mux.add_feed(1), wire);
    mux.finish();
    tracker.stop();
    first = sorted_snapshot(tracker);
    EXPECT_GT(tracker.stats().total_wal_records, 0u);
  }

  // Crash-restart story: recover the state, then re-pump the same recorded
  // stream. The mux reassigns the same global sequences (release order is a
  // pure function of the chunks), so Phoenix's high-water cursor skips every
  // event — exactly-once end to end.
  LiveTracker tracker(f.db, config);
  const auto recovered = tracker.recover();
  ASSERT_TRUE(recovered.ok()) << recovered.error();
  EXPECT_GT(recovered.value().devices_restored, 0u);
  tracker.start();
  SnifferFeedMux mux(tracker);
  pump(mux, mux.add_feed(1), wire);
  mux.finish();
  tracker.stop();

  EXPECT_EQ(mux.stats().events_delivered, f.events.size());
  std::uint64_t dedup_skipped = 0;
  for (const auto& s : tracker.stats().shards) dedup_skipped += s.dedup_skipped;
  EXPECT_EQ(dedup_skipped, f.events.size());
  expect_snapshots_equal(sorted_snapshot(tracker), first);
  std::filesystem::remove_all(wal_dir);
}

}  // namespace
}  // namespace mm::pipeline
