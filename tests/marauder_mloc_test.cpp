#include "marauder/mloc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "marauder/baselines.h"
#include "util/rng.h"

namespace mm::marauder {
namespace {

TEST(MLoc, EmptyGammaFails) {
  const std::vector<geo::Circle> discs;
  const LocalizationResult r = mloc_locate(discs);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.method, "M-Loc");
  EXPECT_EQ(r.num_aps, 0u);
}

TEST(MLoc, SingleApReducesToNearestAp) {
  const std::vector<geo::Circle> discs{{{30.0, 40.0}, 100.0}};
  const LocalizationResult r = mloc_locate(discs);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.estimate, geo::Vec2(30.0, 40.0));
  EXPECT_EQ(r.num_aps, 1u);
}

TEST(MLoc, SymmetricLensEstimatesMidpoint) {
  const std::vector<geo::Circle> discs{{{0.0, 0.0}, 100.0}, {{100.0, 0.0}, 100.0}};
  const LocalizationResult r = mloc_locate(discs);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.estimate.x, 50.0, 1e-9);
  EXPECT_NEAR(r.estimate.y, 0.0, 1e-9);
  EXPECT_FALSE(r.used_fallback);
}

TEST(MLoc, NestedDiscsUseInnerCenter) {
  const std::vector<geo::Circle> discs{{{0.0, 0.0}, 200.0}, {{10.0, 5.0}, 50.0}};
  const LocalizationResult r = mloc_locate(discs);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.estimate.x, 10.0, 1e-6);
  EXPECT_NEAR(r.estimate.y, 5.0, 1e-6);
}

TEST(MLoc, InconsistentDiscsFallBackToCentroid) {
  const std::vector<geo::Circle> discs{{{0.0, 0.0}, 10.0}, {{100.0, 0.0}, 10.0}};
  const LocalizationResult r = mloc_locate(discs);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.used_fallback);
  EXPECT_NEAR(r.estimate.x, 50.0, 1e-9);
}

// Graceful degradation: three consistent discs plus one corrupted outlier
// far away. Outlier rejection drops exactly the bad disc and localizes from
// the consistent evidence instead of averaging all four centers.
TEST(MLoc, OutlierRejectionDropsCorruptedDisc) {
  const geo::Vec2 mobile{20.0, 10.0};
  std::vector<geo::Circle> discs{
      {{0.0, 0.0}, 100.0}, {{60.0, 0.0}, 100.0}, {{20.0, 70.0}, 100.0},
      {{5000.0, 5000.0}, 50.0}};  // bit-flipped position: impossible evidence
  const LocalizationResult rejected =
      mloc_locate(discs, {.reject_outliers = true, .max_outliers = 2});
  ASSERT_TRUE(rejected.ok);
  EXPECT_EQ(rejected.discs_rejected, 1u);
  EXPECT_EQ(rejected.discs.size(), 3u);
  EXPECT_FALSE(rejected.used_fallback);
  EXPECT_TRUE(rejected.degraded());
  EXPECT_LT(rejected.estimate.distance_to(mobile), 60.0);

  // Without rejection the same input collapses to the centroid fallback,
  // dragged thousands of meters toward the ghost AP.
  const LocalizationResult fallback = mloc_locate(discs);
  ASSERT_TRUE(fallback.ok);
  EXPECT_TRUE(fallback.used_fallback);
  EXPECT_GT(fallback.estimate.distance_to(mobile), 1000.0);
}

TEST(MLoc, OutlierRejectionRespectsBudget) {
  // Three mutually inconsistent clusters: no removal budget of 1 restores a
  // non-empty intersection, so the result must be the centroid fallback.
  const std::vector<geo::Circle> discs{
      {{0.0, 0.0}, 10.0}, {{1000.0, 0.0}, 10.0}, {{0.0, 1000.0}, 10.0}};
  const LocalizationResult r =
      mloc_locate(discs, {.reject_outliers = true, .max_outliers = 1});
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.used_fallback);
  EXPECT_EQ(r.discs_rejected, 0u);
  EXPECT_EQ(r.discs.size(), 3u);  // fallback runs over the original discs
}

TEST(MLoc, OutlierRejectionDownToSingleDisc) {
  // Two inconsistent discs: rejecting one leaves |Gamma| = 1, which reduces
  // to nearest-AP on the survivor.
  const std::vector<geo::Circle> discs{{{0.0, 0.0}, 10.0}, {{100.0, 0.0}, 10.0}};
  const LocalizationResult r =
      mloc_locate(discs, {.reject_outliers = true, .max_outliers = 2});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.discs_rejected, 1u);
  ASSERT_EQ(r.discs.size(), 1u);
  EXPECT_EQ(r.estimate, r.discs.front().center);
  EXPECT_TRUE(r.degraded());
}

TEST(MLoc, CleanRunIsNotDegraded) {
  const std::vector<geo::Circle> discs{{{0.0, 0.0}, 100.0}, {{100.0, 0.0}, 100.0}};
  const LocalizationResult r = mloc_locate(discs, {.reject_outliers = true});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.discs_rejected, 0u);
  EXPECT_FALSE(r.degraded());
}

TEST(MLoc, EstimateInsideRegionWhenConsistent) {
  util::Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const geo::Vec2 mobile{rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0)};
    std::vector<geo::Circle> discs;
    const int k = static_cast<int>(rng.uniform_int(2, 10));
    for (int i = 0; i < k; ++i) {
      const double radius = rng.uniform(80.0, 120.0);
      discs.push_back(
          {mobile + geo::Vec2::from_polar(radius * std::sqrt(rng.uniform()), rng.angle()),
           radius});
    }
    const LocalizationResult r = mloc_locate(discs);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(region_covers(r, mobile)) << "region must contain the mobile";
    // Vertex average lies in the (convex) region.
    EXPECT_TRUE(region_covers(r, r.estimate)) << "estimate escaped the convex region";
  }
}

TEST(MLoc, ExactCentroidOptionDiffersFromVertexAverage) {
  // Asymmetric 3-disc region: vertex average != area centroid in general.
  const std::vector<geo::Circle> discs{
      {{0.0, 0.0}, 100.0}, {{90.0, 0.0}, 100.0}, {{40.0, 80.0}, 100.0}};
  const LocalizationResult vertex = mloc_locate(discs, {.exact_region_centroid = false});
  const LocalizationResult exact = mloc_locate(discs, {.exact_region_centroid = true});
  ASSERT_TRUE(vertex.ok);
  ASSERT_TRUE(exact.ok);
  EXPECT_GT(vertex.estimate.distance_to(exact.estimate), 1e-6);
  // Both estimates stay inside the region.
  EXPECT_TRUE(region_covers(vertex, vertex.estimate));
  EXPECT_TRUE(region_covers(exact, exact.estimate));
}

// Paper property: adding APs can only shrink the intersected area, hence
// (on average) the error.
TEST(MLoc, ErrorShrinksWithMoreAps) {
  util::Rng rng(23);
  const double radius = 100.0;
  double err_small = 0.0;
  double err_large = 0.0;
  const int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    const geo::Vec2 mobile{rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)};
    auto run_k = [&](int k) {
      std::vector<geo::Circle> discs;
      for (int i = 0; i < k; ++i) {
        discs.push_back(
            {mobile + geo::Vec2::from_polar(radius * std::sqrt(rng.uniform()), rng.angle()),
             radius});
      }
      return mloc_locate(discs).estimate.distance_to(mobile);
    };
    err_small += run_k(3);
    err_large += run_k(12);
  }
  EXPECT_LT(err_large / kTrials, err_small / kTrials * 0.8);
}

// Fig 4: with a biased AP distribution, disc-intersection stays accurate
// while the centroid baseline is dragged toward the cluster.
TEST(MLoc, ResilientToBiasedApDistributionUnlikeCentroid) {
  util::Rng rng(31);
  const geo::Vec2 mobile{0.0, 0.0};
  const double radius = 100.0;
  std::vector<geo::Circle> discs;
  std::vector<geo::Vec2> positions;
  // 5 APs spread around the mobile.
  for (int i = 0; i < 5; ++i) {
    const geo::Vec2 p =
        mobile + geo::Vec2::from_polar(radius * 0.9 * std::sqrt(rng.uniform()), rng.angle());
    discs.push_back({p, radius});
    positions.push_back(p);
  }
  // 10 APs clustered in a small corner area (still covering the mobile).
  for (int i = 0; i < 10; ++i) {
    const geo::Vec2 p = geo::Vec2{70.0, 60.0} +
                        geo::Vec2::from_polar(8.0 * std::sqrt(rng.uniform()), rng.angle());
    discs.push_back({p, radius});
    positions.push_back(p);
  }
  const double mloc_err = mloc_locate(discs).estimate.distance_to(mobile);
  const double centroid_err = centroid_locate(positions).estimate.distance_to(mobile);
  EXPECT_LT(mloc_err, centroid_err * 0.6);
}

TEST(Baselines, CentroidOfKnownPoints) {
  const std::vector<geo::Vec2> aps{{0.0, 0.0}, {10.0, 0.0}, {5.0, 9.0}};
  const LocalizationResult r = centroid_locate(aps);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.estimate.x, 5.0, 1e-12);
  EXPECT_NEAR(r.estimate.y, 3.0, 1e-12);
  EXPECT_EQ(r.method, "Centroid");
}

TEST(Baselines, CentroidEmptyFails) {
  EXPECT_FALSE(centroid_locate(std::vector<geo::Vec2>{}).ok);
}

TEST(Baselines, NearestApPicksStrongest) {
  const std::vector<std::pair<geo::Vec2, double>> aps{
      {{0.0, 0.0}, -80.0}, {{50.0, 0.0}, -55.0}, {{100.0, 0.0}, -70.0}};
  const LocalizationResult r = nearest_ap_locate(aps);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.estimate, geo::Vec2(50.0, 0.0));
  EXPECT_EQ(r.method, "NearestAP");
}

TEST(Baselines, NearestApEmptyFails) {
  EXPECT_FALSE(nearest_ap_locate(std::vector<std::pair<geo::Vec2, double>>{}).ok);
}

TEST(Baselines, WeightedCentroidFavorsStrongerAp) {
  const std::vector<std::pair<geo::Vec2, double>> aps{
      {{0.0, 0.0}, -50.0}, {{100.0, 0.0}, -70.0}};
  const LocalizationResult r = weighted_centroid_locate(aps);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.method, "WeightedCentroid");
  // -50 dBm carries 100x the linear power of -70 dBm: estimate near x ~ 1.
  EXPECT_LT(r.estimate.x, 5.0);
  EXPECT_GT(r.estimate.x, 0.0);
}

TEST(Baselines, WeightedCentroidEqualPowerIsPlainCentroid) {
  const std::vector<std::pair<geo::Vec2, double>> aps{
      {{0.0, 0.0}, -60.0}, {{100.0, 0.0}, -60.0}};
  const LocalizationResult r = weighted_centroid_locate(aps);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.estimate.x, 50.0, 1e-9);
}

TEST(Baselines, WeightedCentroidEmptyFails) {
  EXPECT_FALSE(
      weighted_centroid_locate(std::vector<std::pair<geo::Vec2, double>>{}).ok);
}

TEST(Baselines, WeightedCentroidUnderflowFallsBackToCentroid) {
  // RSSI this low (-4000 dBm, i.e. 10^-400 mW — below the smallest denormal
  // double) underflows dbm_to_mw to exactly 0 for every AP; dividing by the
  // zero total would yield NaN. The positions are still evidence, so the
  // result degrades to the unweighted centroid and says so.
  const std::vector<std::pair<geo::Vec2, double>> aps{
      {{0.0, 0.0}, -4000.0}, {{100.0, 0.0}, -4000.0}, {{50.0, 60.0}, -4000.0}};
  const LocalizationResult r = weighted_centroid_locate(aps);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.method, "WeightedCentroid");
  EXPECT_TRUE(r.used_fallback);
  EXPECT_NEAR(r.estimate.x, 50.0, 1e-9);
  EXPECT_NEAR(r.estimate.y, 20.0, 1e-9);
  EXPECT_EQ(r.num_aps, 3u);
}

TEST(RegionHelpers, AreaAndCoverage) {
  LocalizationResult r;
  r.discs = {{{0.0, 0.0}, 1.0}, {{1.0, 0.0}, 1.0}};
  EXPECT_GT(intersected_area(r), 0.0);
  EXPECT_LT(intersected_area(r), 3.15);
  EXPECT_TRUE(region_covers(r, {0.5, 0.0}));
  EXPECT_FALSE(region_covers(r, {-0.9, 0.0}));
  LocalizationResult none;
  EXPECT_DOUBLE_EQ(intersected_area(none), 0.0);
  EXPECT_FALSE(region_covers(none, {0.0, 0.0}));
}

}  // namespace
}  // namespace mm::marauder
