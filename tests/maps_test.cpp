#include "maps/html_map.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "sim/scenario.h"

namespace mm::maps {
namespace {

geo::EnuFrame frame() { return geo::EnuFrame(sim::uml_north_campus()); }

TEST(MarauderMap, HtmlContainsAllLayers) {
  MarauderMap map("Test Map", frame());
  map.add_ap({0.0, 0.0}, "ap-one", 100.0);
  map.add_true_position({10.0, 10.0}, "victim (real)");
  map.add_estimate({12.0, 8.0}, "victim (estimated)");
  map.add_path({{0.0, 0.0}, {10.0, 10.0}}, "walk");
  map.add_sniffer({-50.0, 0.0}, 1000.0);

  const std::string html = map.to_html();
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("class='ap'"), std::string::npos);
  EXPECT_NE(html.find("class='truth'"), std::string::npos);
  EXPECT_NE(html.find("class='estimate'"), std::string::npos);
  EXPECT_NE(html.find("class='path'"), std::string::npos);
  EXPECT_NE(html.find("class='sniffer'"), std::string::npos);
  EXPECT_NE(html.find("class='coverage'"), std::string::npos);
  EXPECT_NE(html.find("Test Map"), std::string::npos);
  // Tooltips contain geodetic coordinates near the UML campus.
  EXPECT_NE(html.find("42.65"), std::string::npos);
}

TEST(MarauderMap, HtmlEscapesLabels) {
  MarauderMap map("<script>alert(1)</script>", frame());
  map.add_ap({0.0, 0.0}, "evil<>&\"net");
  const std::string html = map.to_html();
  EXPECT_EQ(html.find("<script>alert"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
  EXPECT_NE(html.find("evil&lt;&gt;&amp;&quot;net"), std::string::npos);
}

TEST(MarauderMap, EmptyMapStillRenders) {
  MarauderMap map("empty", frame());
  const std::string html = map.to_html();
  EXPECT_NE(html.find("<svg"), std::string::npos);
}

TEST(MarauderMap, WriteHtmlFile) {
  MarauderMap map("file test", frame());
  map.add_ap({5.0, 5.0}, "ap");
  const auto path = std::filesystem::temp_directory_path() / "mm_map.html";
  map.write_html(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 500u);
  std::filesystem::remove(path);
}

TEST(MarauderMap, GeoJsonStructure) {
  MarauderMap map("geo", frame());
  map.add_ap({0.0, 0.0}, "ap-one", 80.0);
  map.add_true_position({10.0, 0.0}, "real");
  map.add_estimate({12.0, 0.0}, "est");
  map.add_path({{0.0, 0.0}, {10.0, 0.0}}, "walk");
  const std::string json = map.to_geojson();
  EXPECT_NE(json.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"ap\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"true\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"estimate\""), std::string::npos);
  EXPECT_NE(json.find("\"LineString\""), std::string::npos);
  EXPECT_NE(json.find("\"radius_m\":80"), std::string::npos);
  // Longitude of the UML campus is ~-71.3.
  EXPECT_NE(json.find("-71.3"), std::string::npos);
}

TEST(MarauderMap, GeoJsonEscapesQuotes) {
  MarauderMap map("geo", frame());
  map.add_ap({0.0, 0.0}, "say \"hi\"");
  const std::string json = map.to_geojson();
  EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
}

}  // namespace
}  // namespace mm::maps
