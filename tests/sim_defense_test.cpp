// Location-privacy defenses (Section V): random silent periods with
// pseudonym rotation (Hu & Wang) and mix zones. These tests pin down the
// radio-silencing semantics; the attacker-vs-defense outcome is measured in
// bench_defenses.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "capture/sniffer.h"
#include "sim/ap.h"
#include "sim/mobile.h"
#include "sim/mobility.h"

namespace mm::sim {
namespace {

const net80211::MacAddress kApMac = *net80211::MacAddress::parse("00:1a:2b:00:0d:01");
const net80211::MacAddress kClientMac = *net80211::MacAddress::parse("00:16:6f:00:0d:02");

ApConfig base_ap() {
  ApConfig cfg;
  cfg.bssid = kApMac;
  cfg.ssid = "Net";
  cfg.channel = {rf::Band::kBg24GHz, 6};
  cfg.position = {30.0, 0.0};
  cfg.service_radius_m = 120.0;
  return cfg;
}

TEST(Defense, SilentPeriodSuppressesFollowingScans) {
  World world({.seed = 9, .propagation = nullptr});
  world.add_access_point(std::make_unique<AccessPoint>(base_ap()));
  MobileConfig mc;
  mc.mac = kClientMac;
  mc.profile.probes = true;
  mc.profile.scan_interval_s = 5.0;
  mc.profile.silent_period_mean_s = 1e6;  // effectively permanent silence
  mc.mobility = std::make_shared<StaticPosition>(geo::Vec2{0.0, 0.0});
  MobileDevice* mobile = world.add_mobile(std::make_unique<MobileDevice>(mc));
  world.run_until(120.0);
  // The first sweep transmits; everything after it is suppressed.
  EXPECT_EQ(mobile->probes_sent(), 11u);
  EXPECT_GT(mobile->suppressed_transmissions(), 10u);
  EXPECT_TRUE(mobile->radio_silenced());
}

TEST(Defense, SilentPeriodRotatesMac) {
  World world({.seed = 10, .propagation = nullptr});
  MobileConfig mc;
  mc.mac = kClientMac;
  mc.profile.probes = true;
  mc.profile.scan_interval_s = 5.0;
  mc.profile.silent_period_mean_s = 1.0;
  mc.mobility = std::make_shared<StaticPosition>(geo::Vec2{0.0, 0.0});
  MobileDevice* mobile = world.add_mobile(std::make_unique<MobileDevice>(mc));
  world.run_until(60.0);
  EXPECT_NE(mobile->mac(), kClientMac);
  EXPECT_TRUE(mobile->mac().is_locally_administered());
}

TEST(Defense, ShortSilenceRecovers) {
  World world({.seed = 11, .propagation = nullptr});
  world.add_access_point(std::make_unique<AccessPoint>(base_ap()));
  MobileConfig mc;
  mc.mac = kClientMac;
  mc.profile.probes = true;
  mc.profile.scan_interval_s = 10.0;
  mc.profile.silent_period_mean_s = 0.5;  // silence usually over before next scan
  mc.mobility = std::make_shared<StaticPosition>(geo::Vec2{0.0, 0.0});
  MobileDevice* mobile = world.add_mobile(std::make_unique<MobileDevice>(mc));
  world.run_until(300.0);
  // Many sweeps still transmit (silence expires between scans).
  EXPECT_GT(mobile->probes_sent(), 50u);
}

TEST(Defense, MixZoneSilencesInsideOnly) {
  World world({.seed = 12, .propagation = nullptr});
  world.add_access_point(std::make_unique<AccessPoint>(base_ap()));
  // Walk through a mix zone centered at x=100.
  MobileConfig mc;
  mc.mac = kClientMac;
  mc.profile.probes = false;
  mc.profile.mix_zones = {{{100.0, 0.0}, 30.0}};
  mc.mobility = std::make_shared<RouteWalk>(
      std::vector<geo::Vec2>{{0.0, 0.0}, {200.0, 0.0}}, 10.0);
  MobileDevice* mobile = world.add_mobile(std::make_unique<MobileDevice>(mc));

  // Scans at x=0 (outside), x=100 (inside), x=200 (outside).
  world.queue().schedule(0.1, [mobile] { mobile->trigger_scan(); });
  world.queue().schedule(10.0, [mobile] { mobile->trigger_scan(); });
  world.queue().schedule(20.0, [mobile] { mobile->trigger_scan(); });
  world.run_until(25.0);
  EXPECT_EQ(mobile->probes_sent(), 22u);          // two audible sweeps
  EXPECT_GE(mobile->suppressed_transmissions(), 11u);  // the in-zone sweep
}

TEST(Defense, MixZoneHidesDeviceFromSniffer) {
  World world({.seed = 13, .propagation = nullptr});
  world.add_access_point(std::make_unique<AccessPoint>(base_ap()));
  capture::ObservationStore store;
  capture::SnifferConfig sc;
  sc.position = {0.0, 100.0};
  capture::Sniffer sniffer(sc, &store);
  sniffer.attach(world);

  MobileConfig mc;
  mc.mac = kClientMac;
  mc.profile.probes = false;
  mc.profile.mix_zones = {{{0.0, 0.0}, 50.0}};  // device sits inside the zone
  mc.mobility = std::make_shared<StaticPosition>(geo::Vec2{0.0, 0.0});
  MobileDevice* mobile = world.add_mobile(std::make_unique<MobileDevice>(mc));
  mobile->trigger_scan();
  world.run_until(5.0);
  EXPECT_EQ(store.device_count(), 0u);  // nothing ever hit the air
}

}  // namespace
}  // namespace mm::sim
