#include "util/ini.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace mm::util {
namespace {

TEST(Ini, ParsesSectionsAndKeys) {
  const IniFile ini = IniFile::parse(
      "[scenario]\n"
      "aps = 120\n"
      "extent = 350.5\n"
      "[sniffer]\n"
      "chain = LNA\n");
  EXPECT_TRUE(ini.has_section("scenario"));
  EXPECT_TRUE(ini.has("scenario", "aps"));
  EXPECT_FALSE(ini.has("scenario", "chain"));
  EXPECT_EQ(ini.get_or("sniffer", "chain", ""), "LNA");
  EXPECT_EQ(ini.get_int("scenario", "aps", 0), 120);
  EXPECT_DOUBLE_EQ(ini.get_double("scenario", "extent", 0.0), 350.5);
}

TEST(Ini, CommentsAndBlankLinesIgnored) {
  const IniFile ini = IniFile::parse(
      "# top comment\n"
      "\n"
      "[s]\n"
      "; another comment\n"
      "key = value\n"
      "   \n");
  EXPECT_EQ(ini.get_or("s", "key", ""), "value");
}

TEST(Ini, WhitespaceTrimmed) {
  const IniFile ini = IniFile::parse("[ s ]\n  key  =  spaced value \n");
  EXPECT_TRUE(ini.has_section("s"));
  EXPECT_EQ(ini.get_or("s", "key", ""), "spaced value");
}

TEST(Ini, MissingKeysFallBack) {
  const IniFile ini = IniFile::parse("[s]\nk = 1\n");
  EXPECT_EQ(ini.get("s", "missing"), std::nullopt);
  EXPECT_EQ(ini.get("other", "k"), std::nullopt);
  EXPECT_EQ(ini.get_or("s", "missing", "dflt"), "dflt");
  EXPECT_EQ(ini.get_int("s", "missing", 42), 42);
  EXPECT_DOUBLE_EQ(ini.get_double("other", "k", 2.5), 2.5);
  EXPECT_TRUE(ini.get_bool("s", "missing", true));
}

TEST(Ini, Booleans) {
  const IniFile ini = IniFile::parse(
      "[b]\nt1 = true\nt2 = YES\nt3 = 1\nf1 = false\nf2 = off\nbad = maybe\n");
  EXPECT_TRUE(ini.get_bool("b", "t1", false));
  EXPECT_TRUE(ini.get_bool("b", "t2", false));
  EXPECT_TRUE(ini.get_bool("b", "t3", false));
  EXPECT_FALSE(ini.get_bool("b", "f1", true));
  EXPECT_FALSE(ini.get_bool("b", "f2", true));
  EXPECT_THROW((void)ini.get_bool("b", "bad", false), std::runtime_error);
}

TEST(Ini, MalformedInputThrows) {
  EXPECT_THROW((void)IniFile::parse("key = outside section\n"), std::runtime_error);
  EXPECT_THROW((void)IniFile::parse("[unterminated\n"), std::runtime_error);
  EXPECT_THROW((void)IniFile::parse("[s]\nno equals sign\n"), std::runtime_error);
}

TEST(Ini, BadNumbersThrow) {
  const IniFile ini = IniFile::parse("[s]\nn = 12abc\nd = 1.5x\n");
  EXPECT_THROW((void)ini.get_int("s", "n", 0), std::runtime_error);
  EXPECT_THROW((void)ini.get_double("s", "d", 0.0), std::runtime_error);
}

TEST(Ini, LastDuplicateKeyWins) {
  const IniFile ini = IniFile::parse("[s]\nk = first\nk = second\n");
  EXPECT_EQ(ini.get_or("s", "k", ""), "second");
}

TEST(Ini, LoadFromFile) {
  const auto path = std::filesystem::temp_directory_path() / "mm_ini_test.ini";
  {
    std::ofstream out(path);
    out << "[file]\nloaded = yes\n";
  }
  const IniFile ini = IniFile::load(path);
  EXPECT_TRUE(ini.get_bool("file", "loaded", false));
  std::filesystem::remove(path);
  EXPECT_THROW((void)IniFile::load(path), std::runtime_error);
}

TEST(Ini, EmptySectionRecorded) {
  const IniFile ini = IniFile::parse("[empty]\n");
  EXPECT_TRUE(ini.has_section("empty"));
  EXPECT_FALSE(ini.has("empty", "anything"));
}

}  // namespace
}  // namespace mm::util
