#include "marauder/aploc.h"

#include <gtest/gtest.h>

#include <numbers>

#include "util/rng.h"

namespace mm::marauder {
namespace {

net80211::MacAddress mac(int i) {
  std::array<std::uint8_t, 6> bytes{0x00, 0x1a, 0x2b, 0x00, 0x01,
                                    static_cast<std::uint8_t>(i)};
  return net80211::MacAddress(bytes);
}

TEST(ApLoc, NoTuplesNoPositions) {
  EXPECT_TRUE(aploc_estimate_positions({}, {}).empty());
  EXPECT_TRUE(aploc_build_database({}, {}).empty());
}

TEST(ApLoc, SingleTupleCentersOnTrainingLocation) {
  std::vector<capture::TrainingTuple> tuples{{{50.0, 50.0}, {mac(0)}}};
  const auto positions = aploc_estimate_positions(tuples, {});
  ASSERT_EQ(positions.size(), 1u);
  // With one training disc the centroid is the training location itself.
  EXPECT_NEAR(positions.at(mac(0)).x, 50.0, 1e-6);
  EXPECT_NEAR(positions.at(mac(0)).y, 50.0, 1e-6);
}

TEST(ApLoc, ManyTuplesTriangulateAp) {
  // True AP at (0, 0), heard radius 100. Training locations on a circle of
  // radius 80 around it; upper-bound disc radius 150.
  util::Rng rng(3);
  std::vector<capture::TrainingTuple> tuples;
  for (int i = 0; i < 12; ++i) {
    const double theta = 2.0 * std::numbers::pi * i / 12.0;
    tuples.push_back({geo::Vec2::from_polar(80.0, theta), {mac(0)}});
  }
  ApLocOptions options;
  options.training_disc_radius_m = 150.0;
  const auto positions = aploc_estimate_positions(tuples, options);
  ASSERT_EQ(positions.size(), 1u);
  EXPECT_LT(positions.at(mac(0)).norm(), 10.0);
}

TEST(ApLoc, AccuracyImprovesWithMoreTuples) {
  util::Rng rng(11);
  const geo::Vec2 true_ap{20.0, -30.0};
  const double hear_radius = 100.0;
  auto estimate_with = [&](int n_tuples, std::uint64_t seed) {
    util::Rng local(seed);
    std::vector<capture::TrainingTuple> tuples;
    for (int i = 0; i < n_tuples; ++i) {
      const geo::Vec2 at =
          true_ap +
          geo::Vec2::from_polar(hear_radius * std::sqrt(local.uniform()), local.angle());
      tuples.push_back({at, {mac(0)}});
    }
    ApLocOptions options;
    options.training_disc_radius_m = 150.0;
    return aploc_estimate_positions(tuples, options).at(mac(0)).distance_to(true_ap);
  };
  double err3 = 0.0;
  double err25 = 0.0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    err3 += estimate_with(3, 1000 + s);
    err25 += estimate_with(25, 2000 + s);
  }
  EXPECT_LT(err25 / 20.0, err3 / 20.0);
}

TEST(ApLoc, EndToEndLocatesMobile) {
  util::Rng rng(7);
  // Ground truth: 6 APs around the origin, radius 100.
  std::vector<geo::Vec2> ap_positions;
  for (int i = 0; i < 6; ++i) {
    ap_positions.push_back(geo::Vec2::from_polar(70.0, 2.0 * std::numbers::pi * i / 6.0));
  }
  const double true_radius = 100.0;

  // Wardriving tuples: 40 random locations; each hears APs within radius.
  std::vector<capture::TrainingTuple> tuples;
  for (int t = 0; t < 40; ++t) {
    const geo::Vec2 at{rng.uniform(-150.0, 150.0), rng.uniform(-150.0, 150.0)};
    capture::TrainingTuple tuple{at, {}};
    for (int i = 0; i < 6; ++i) {
      if (at.distance_to(ap_positions[static_cast<std::size_t>(i)]) <= true_radius) {
        tuple.heard_aps.insert(mac(i));
      }
    }
    tuples.push_back(std::move(tuple));
  }

  // Victim at origin sees all six APs.
  std::set<net80211::MacAddress> target;
  for (int i = 0; i < 6; ++i) target.insert(mac(i));

  ApLocOptions options;
  options.training_disc_radius_m = 150.0;
  options.aprad.max_radius_m = 200.0;
  const LocalizationResult r = aploc_locate(tuples, {target}, target, options);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.method, "AP-Loc");
  EXPECT_LT(r.estimate.norm(), 50.0);
}

TEST(ApLoc, SmallestEnclosingCirclePlacement) {
  // Hearing locations on a circle around the AP: SEC center is the AP.
  std::vector<capture::TrainingTuple> tuples;
  for (int i = 0; i < 8; ++i) {
    const double theta = 2.0 * std::numbers::pi * i / 8.0;
    tuples.push_back({geo::Vec2{25.0, -40.0} + geo::Vec2::from_polar(60.0, theta),
                      {mac(0)}});
  }
  ApLocOptions options;
  options.placement = ApPlacement::kSmallestEnclosingCircle;
  const auto positions = aploc_estimate_positions(tuples, options);
  ASSERT_EQ(positions.size(), 1u);
  EXPECT_LT(positions.at(mac(0)).distance_to({25.0, -40.0}), 1.0);
}

TEST(ApLoc, PlacementMethodsBothReasonable) {
  util::Rng rng(21);
  const geo::Vec2 true_ap{10.0, 20.0};
  std::vector<capture::TrainingTuple> tuples;
  for (int i = 0; i < 20; ++i) {
    tuples.push_back({true_ap + geo::Vec2::from_polar(100.0 * std::sqrt(rng.uniform()),
                                                      rng.angle()),
                      {mac(0)}});
  }
  for (const ApPlacement placement :
       {ApPlacement::kBoundedIntersection, ApPlacement::kSmallestEnclosingCircle}) {
    ApLocOptions options;
    options.placement = placement;
    options.training_disc_radius_m = 150.0;
    const auto positions = aploc_estimate_positions(tuples, options);
    EXPECT_LT(positions.at(mac(0)).distance_to(true_ap), 25.0)
        << "placement " << static_cast<int>(placement);
  }
}

TEST(ApLoc, DatabaseContainsOnlyHeardAps) {
  std::vector<capture::TrainingTuple> tuples{
      {{0.0, 0.0}, {mac(0), mac(1)}},
      {{10.0, 0.0}, {mac(1)}},
  };
  const ApDatabase db = aploc_build_database(tuples, {});
  EXPECT_EQ(db.size(), 2u);
  EXPECT_NE(db.find(mac(0)), nullptr);
  EXPECT_NE(db.find(mac(1)), nullptr);
  EXPECT_EQ(db.find(mac(5)), nullptr);
}

}  // namespace
}  // namespace mm::marauder
