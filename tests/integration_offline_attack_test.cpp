// Full offline-attack integration: the capture rig writes a radiotap pcap;
// a separate analysis pass replays the pcap into a fresh ObservationStore
// and localizes the victim from the recording alone. This exercises the
// complete artifact chain: simulator -> sniffer -> pcap file -> replay ->
// Gamma sets -> M-Loc.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "capture/replay.h"
#include "capture/sniffer.h"
#include "marauder/tracker.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"

namespace mm {
namespace {

const net80211::MacAddress kVictim = *net80211::MacAddress::parse("00:16:6f:aa:bb:cc");

TEST(OfflineAttack, LocateVictimFromRecordedPcap) {
  const auto pcap_path = std::filesystem::temp_directory_path() / "mm_offline_attack.pcap";

  sim::CampusConfig campus;
  campus.seed = 4242;
  campus.num_aps = 120;
  campus.half_extent_m = 300.0;
  const auto truth = sim::generate_campus_aps(campus);

  const geo::Vec2 victim_true{80.0, -60.0};
  capture::ObservationStore live_store;
  {
    sim::World world({.seed = 7, .propagation = nullptr});
    sim::populate_world(world, truth, /*beacons_enabled=*/false);

    sim::MobileConfig mc;
    mc.mac = kVictim;
    mc.profile.probes = false;
    mc.mobility = std::make_shared<sim::StaticPosition>(victim_true);
    sim::MobileDevice* victim = world.add_mobile(std::make_unique<sim::MobileDevice>(mc));

    capture::SnifferConfig sc;
    sc.position = {0.0, 0.0};
    sc.antenna_height_m = 20.0;
    sc.pcap_path = pcap_path;
    capture::Sniffer sniffer(sc, &live_store);
    sniffer.attach(world);

    victim->trigger_scan();
    world.run_until(3.0);
  }  // sniffer destroyed -> pcap flushed

  // Offline pass: everything reconstructed from the file.
  capture::ObservationStore offline_store;
  const auto replayed = capture::replay_pcap(pcap_path, offline_store);
  ASSERT_TRUE(replayed.ok()) << replayed.error();
  EXPECT_GT(replayed.value().probe_responses, 3u);
  EXPECT_EQ(replayed.value().malformed, 0u);

  // The offline Gamma matches the live one.
  EXPECT_EQ(offline_store.gamma(kVictim), live_store.gamma(kVictim));

  marauder::Tracker tracker(marauder::ApDatabase::from_truth(truth, true),
                            {.algorithm = marauder::Algorithm::kMLoc});
  const auto live = tracker.locate(live_store, kVictim);
  const auto offline = tracker.locate(offline_store, kVictim);
  ASSERT_TRUE(live.ok);
  ASSERT_TRUE(offline.ok);
  // Identical evidence -> identical estimate.
  EXPECT_NEAR(live.estimate.distance_to(offline.estimate), 0.0, 1e-9);
  EXPECT_LT(offline.estimate.distance_to(victim_true), 40.0);

  std::filesystem::remove(pcap_path);
}

TEST(OfflineAttack, ApRadFromRecordedPcap) {
  const auto pcap_path = std::filesystem::temp_directory_path() / "mm_offline_aprad.pcap";

  sim::CampusConfig campus;
  campus.seed = 555;
  campus.num_aps = 100;
  campus.half_extent_m = 250.0;
  const auto truth = sim::generate_campus_aps(campus);

  const geo::Vec2 victim_true{-40.0, 30.0};
  {
    sim::World world({.seed = 8, .propagation = nullptr});
    sim::populate_world(world, truth, false);

    sim::MobileConfig mc;
    mc.mac = kVictim;
    mc.profile.probes = false;
    mc.mobility = std::make_shared<sim::StaticPosition>(victim_true);
    sim::MobileDevice* victim = world.add_mobile(std::make_unique<sim::MobileDevice>(mc));

    // A handful of wandering background devices for co-observation evidence.
    util::Rng rng(99);
    for (int i = 0; i < 15; ++i) {
      sim::MobileConfig bg;
      bg.mac = net80211::MacAddress::random(rng, {0x00, 0x21, 0x5c});
      bg.profile.probes = true;
      bg.profile.scan_interval_s = 20.0;
      bg.mobility = std::make_shared<sim::RandomWaypoint>(
          geo::Vec2{-250.0, -250.0}, geo::Vec2{250.0, 250.0}, 1.0, 2.0, 300.0,
          1000 + static_cast<std::uint64_t>(i));
      world.add_mobile(std::make_unique<sim::MobileDevice>(bg));
    }

    capture::ObservationStore live;
    capture::SnifferConfig sc;
    sc.position = {0.0, 0.0};
    sc.antenna_height_m = 20.0;
    sc.pcap_path = pcap_path;
    capture::Sniffer sniffer(sc, &live);
    sniffer.attach(world);

    world.queue().schedule(100.0, [victim] { victim->trigger_scan(); });
    world.run_until(300.0);
  }

  capture::ObservationStore offline;
  (void)capture::replay_pcap(pcap_path, offline);

  marauder::Tracker aprad(marauder::ApDatabase::from_truth(truth, false),
                          {.algorithm = marauder::Algorithm::kApRad});
  aprad.prepare(offline);
  const auto result = aprad.locate(offline, kVictim, {99.0, 106.0});
  ASSERT_TRUE(result.ok);
  EXPECT_LT(result.estimate.distance_to(victim_true), 60.0);

  std::filesystem::remove(pcap_path);
}

}  // namespace
}  // namespace mm
