#include "geo/enclosing_circle.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace mm::geo {
namespace {

TEST(EnclosingCircle, EmptyThrows) {
  EXPECT_THROW((void)smallest_enclosing_circle({}), std::invalid_argument);
}

TEST(EnclosingCircle, SinglePointZeroRadius) {
  const std::vector<Vec2> pts{{3.0, 4.0}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_EQ(c.center, Vec2(3.0, 4.0));
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
}

TEST(EnclosingCircle, TwoPointsDiametral) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {10.0, 0.0}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.center.x, 5.0, 1e-9);
  EXPECT_NEAR(c.center.y, 0.0, 1e-9);
  EXPECT_NEAR(c.radius, 5.0, 1e-9);
}

TEST(EnclosingCircle, EquilateralTriangleCircumcircle) {
  const double h = std::sqrt(3.0) / 2.0;
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {0.5, h}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.center.x, 0.5, 1e-9);
  EXPECT_NEAR(c.center.y, h / 3.0, 1e-9);
  EXPECT_NEAR(c.radius, 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(EnclosingCircle, ObtuseTriangleUsesLongestSide) {
  // Very flat triangle: the smallest enclosing circle is the diametral
  // circle of the longest side, not the circumcircle.
  const std::vector<Vec2> pts{{0.0, 0.0}, {10.0, 0.0}, {5.0, 0.1}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 5.0, 1e-3);
}

TEST(EnclosingCircle, CollinearPoints) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {5.0, 0.0}, {10.0, 0.0}, {2.0, 0.0}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 5.0, 1e-6);
  EXPECT_NEAR(c.center.x, 5.0, 1e-6);
}

TEST(EnclosingCircle, DuplicatePoints) {
  const std::vector<Vec2> pts{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 0.0, 1e-9);
}

TEST(EnclosingCircle, SeedDoesNotChangeResult) {
  util::Rng rng(12);
  std::vector<Vec2> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({rng.uniform(-10.0, 10.0), rng.uniform(-5.0, 5.0)});
  const Circle a = smallest_enclosing_circle(pts, 1);
  const Circle b = smallest_enclosing_circle(pts, 999);
  EXPECT_NEAR(a.center.distance_to(b.center), 0.0, 1e-6);
  EXPECT_NEAR(a.radius, b.radius, 1e-6);
}

// Property sweep: the result covers every point, and no point set has a
// smaller circle through fewer than its support points (checked indirectly:
// shrinking the radius by epsilon must exclude some point).
class EnclosingCircleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnclosingCircleProperty, CoversAllAndIsTight) {
  util::Rng rng(GetParam());
  std::vector<Vec2> pts;
  const int n = static_cast<int>(rng.uniform_int(2, 120));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)});
  }
  const Circle c = smallest_enclosing_circle(pts);
  int on_boundary = 0;
  for (const Vec2& p : pts) {
    const double d = c.center.distance_to(p);
    EXPECT_LE(d, c.radius + 1e-6);
    if (d > c.radius - 1e-4) ++on_boundary;
  }
  // Tightness: at least two points define the circle.
  EXPECT_GE(on_boundary, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnclosingCircleProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace mm::geo
