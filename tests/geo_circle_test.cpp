#include "geo/circle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mm::geo {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec2, BasicArithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
}

TEST(Vec2, DotCrossNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot({1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(a.cross({1.0, 0.0}), -4.0);
  EXPECT_DOUBLE_EQ(Vec2(1.0, 0.0).cross({0.0, 1.0}), 1.0);
}

TEST(Vec2, NormalizedAndPerp) {
  const Vec2 a{3.0, 4.0};
  const Vec2 n = a.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
  EXPECT_DOUBLE_EQ(a.perp().dot(a), 0.0);
}

TEST(Vec2, FromPolarAndAngle) {
  const Vec2 v = Vec2::from_polar(2.0, kPi / 2.0);
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 2.0, 1e-12);
  EXPECT_NEAR(v.angle(), kPi / 2.0, 1e-12);
}

TEST(Circle, ContainsBoundaryAndInterior) {
  const Circle c{{0.0, 0.0}, 2.0};
  EXPECT_TRUE(c.contains({1.0, 1.0}));
  EXPECT_TRUE(c.contains({2.0, 0.0}));
  EXPECT_FALSE(c.contains({2.1, 0.0}));
}

TEST(Circle, AreaAndPointAt) {
  const Circle c{{1.0, 1.0}, 3.0};
  EXPECT_NEAR(c.area(), kPi * 9.0, 1e-9);
  const Vec2 p = c.point_at(0.0);
  EXPECT_NEAR(p.x, 4.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(Circle, InsideOfAndDisjoint) {
  const Circle small{{0.0, 0.0}, 1.0};
  const Circle big{{0.5, 0.0}, 2.0};
  const Circle far{{10.0, 0.0}, 1.0};
  EXPECT_TRUE(small.inside_of(big));
  EXPECT_FALSE(big.inside_of(small));
  EXPECT_TRUE(small.disjoint_from(far));
  EXPECT_FALSE(small.disjoint_from(big));
}

TEST(CircleIntersection, TwoPointCase) {
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{1.0, 0.0}, 1.0};
  const auto pts = circle_circle_intersection(a, b);
  ASSERT_TRUE(pts.has_value());
  EXPECT_NEAR(pts->first.x, 0.5, 1e-12);
  EXPECT_NEAR(std::abs(pts->first.y), std::sqrt(3.0) / 2.0, 1e-12);
  EXPECT_NEAR(pts->second.x, 0.5, 1e-12);
  EXPECT_NEAR(pts->first.y, -pts->second.y, 1e-12);
}

TEST(CircleIntersection, PointsLieOnBothCircles) {
  const Circle a{{2.0, 3.0}, 2.5};
  const Circle b{{4.0, 1.0}, 1.7};
  const auto pts = circle_circle_intersection(a, b);
  ASSERT_TRUE(pts.has_value());
  for (const Vec2& p : {pts->first, pts->second}) {
    EXPECT_NEAR(p.distance_to(a.center), a.radius, 1e-9);
    EXPECT_NEAR(p.distance_to(b.center), b.radius, 1e-9);
  }
}

TEST(CircleIntersection, SeparateCirclesNone) {
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{5.0, 0.0}, 1.0};
  EXPECT_FALSE(circle_circle_intersection(a, b).has_value());
}

TEST(CircleIntersection, NestedCirclesNone) {
  const Circle a{{0.0, 0.0}, 5.0};
  const Circle b{{0.5, 0.0}, 1.0};
  EXPECT_FALSE(circle_circle_intersection(a, b).has_value());
}

TEST(CircleIntersection, ConcentricNone) {
  const Circle a{{0.0, 0.0}, 2.0};
  const Circle b{{0.0, 0.0}, 2.0};
  EXPECT_FALSE(circle_circle_intersection(a, b).has_value());
}

TEST(CircleIntersection, ExternalTangencyGivesCoincidentPoints) {
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{2.0, 0.0}, 1.0};
  const auto pts = circle_circle_intersection(a, b);
  ASSERT_TRUE(pts.has_value());
  EXPECT_NEAR(pts->first.distance_to(pts->second), 0.0, 1e-6);
  EXPECT_NEAR(pts->first.x, 1.0, 1e-9);
}

TEST(LensArea, DisjointZero) {
  EXPECT_DOUBLE_EQ(lens_area({{0.0, 0.0}, 1.0}, {{5.0, 0.0}, 1.0}), 0.0);
}

TEST(LensArea, NestedIsSmallerDiscArea) {
  const double area = lens_area({{0.0, 0.0}, 3.0}, {{0.5, 0.0}, 1.0});
  EXPECT_NEAR(area, kPi, 1e-9);
}

TEST(LensArea, EqualCirclesHalfOffset) {
  // Known closed form: two unit circles with centers distance 1 apart.
  const double expected = 2.0 * std::acos(0.5) - 0.5 * std::sqrt(3.0);
  EXPECT_NEAR(lens_area({{0.0, 0.0}, 1.0}, {{1.0, 0.0}, 1.0}), expected, 1e-9);
}

TEST(LensArea, SymmetricInArguments) {
  const Circle a{{0.0, 0.0}, 2.0};
  const Circle b{{1.5, 0.7}, 1.2};
  EXPECT_NEAR(lens_area(a, b), lens_area(b, a), 1e-12);
}

TEST(LensArea, FullOverlapAtZeroDistance) {
  EXPECT_NEAR(lens_area({{0.0, 0.0}, 2.0}, {{0.0, 0.0}, 2.0}), kPi * 4.0, 1e-9);
}

}  // namespace
}  // namespace mm::geo
