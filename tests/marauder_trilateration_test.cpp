#include "marauder/trilateration.h"

#include <gtest/gtest.h>

#include "rf/units.h"
#include "util/rng.h"

namespace mm::marauder {
namespace {

TEST(Trilateration, EmptyFails) {
  EXPECT_FALSE(trilaterate({}).ok);
}

TEST(Trilateration, FewerThanThreeAnchorsFallsBack) {
  const std::vector<std::pair<geo::Vec2, double>> anchors{{{0.0, 0.0}, 5.0},
                                                          {{10.0, 0.0}, 5.0}};
  const LocalizationResult r = trilaterate(anchors);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.used_fallback);
  EXPECT_NEAR(r.estimate.x, 5.0, 1e-9);
}

TEST(Trilateration, ExactDistancesRecoverPosition) {
  const geo::Vec2 truth{13.0, -7.0};
  std::vector<std::pair<geo::Vec2, double>> anchors;
  for (const geo::Vec2 ap : {geo::Vec2{0.0, 0.0}, geo::Vec2{100.0, 0.0},
                             geo::Vec2{0.0, 100.0}, geo::Vec2{80.0, 90.0}}) {
    anchors.emplace_back(ap, ap.distance_to(truth));
  }
  const LocalizationResult r = trilaterate(anchors);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.used_fallback);
  EXPECT_LT(r.estimate.distance_to(truth), 1e-3);
}

TEST(Trilateration, NoisyDistancesStillClose) {
  util::Rng rng(5);
  const geo::Vec2 truth{-20.0, 35.0};
  std::vector<std::pair<geo::Vec2, double>> anchors;
  for (int i = 0; i < 8; ++i) {
    const geo::Vec2 ap{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)};
    anchors.emplace_back(ap, ap.distance_to(truth) + rng.gaussian(0.0, 2.0));
  }
  const LocalizationResult r = trilaterate(anchors);
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.estimate.distance_to(truth), 5.0);
}

TEST(Trilateration, CollinearAnchorsDoNotExplode) {
  // Anchors on a line: the normal equations are near-singular; the solver
  // must terminate with a finite answer (the ambiguity is inherent).
  const geo::Vec2 truth{50.0, 10.0};
  std::vector<std::pair<geo::Vec2, double>> anchors;
  for (double x : {0.0, 30.0, 60.0, 90.0}) {
    anchors.emplace_back(geo::Vec2{x, 0.0}, geo::Vec2{x, 0.0}.distance_to(truth));
  }
  const LocalizationResult r = trilaterate(anchors);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(std::isfinite(r.estimate.x));
  EXPECT_TRUE(std::isfinite(r.estimate.y));
  // x is well-determined; y is inherently ambiguous (the solution is
  // mirror-symmetric about the anchor line, and a line-bound initial guess
  // cannot break the tie) — only require a finite, bounded answer.
  EXPECT_NEAR(r.estimate.x, 50.0, 1.0);
  EXPECT_LE(std::abs(r.estimate.y), 10.0 + 1.5);
}

TEST(Trilateration, RssiInversionRoundtrip) {
  const double ref = rf::free_space_path_loss_db(1.0, 2437.0);
  const double exponent = 2.9;
  for (const double d : {5.0, 50.0, 200.0}) {
    const double rssi = 20.0 - (ref + 10.0 * exponent * std::log10(d));
    EXPECT_NEAR(rssi_to_distance_m(rssi, 20.0, ref, exponent), d, d * 1e-9);
  }
}

TEST(Trilateration, ShadowingBiasesDistanceMultiplicatively) {
  const double ref = rf::free_space_path_loss_db(1.0, 2437.0);
  const double exponent = 2.9;
  const double d = 100.0;
  const double rssi_clean = 20.0 - (ref + 10.0 * exponent * std::log10(d));
  // 8 dB of extra loss inflates the estimated distance by 10^(8/29) ~ 1.89x.
  const double inflated = rssi_to_distance_m(rssi_clean - 8.0, 20.0, ref, exponent);
  EXPECT_NEAR(inflated / d, std::pow(10.0, 8.0 / 29.0), 1e-6);
}

}  // namespace
}  // namespace mm::marauder
