// Phoenix WAL + checkpoint units: the record codec round-trips bit-exactly,
// the writer group-commits and rotates, torn tails truncate at the first bad
// frame (and only there), reclaim only deletes provably-covered segments, and
// checkpoint loading falls back over damaged snapshots.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "capture/frame_event.h"
#include "capture/observation_store.h"
#include "durability/checkpoint.h"
#include "durability/crc32c.h"
#include "durability/wal.h"
#include "fault/fault_injector.h"

namespace mm::durability {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

capture::FrameEvent make_event(std::uint64_t i) {
  capture::FrameEvent event;
  event.kind = static_cast<capture::FrameEventKind>(i % 4);
  event.device = net80211::MacAddress::from_u64(0x001600000000u + i);
  event.ap = net80211::MacAddress::from_u64(0x001a2b000000u + i * 7);
  event.time_s = 1.5 + 0.001 * static_cast<double>(i);
  event.rssi_dbm = -40.0 - static_cast<double>(i % 50);
  event.channel = static_cast<std::int16_t>(1 + i % 11);
  if (i % 3 == 0) event.set_ssid("net-" + std::to_string(i));
  return event;
}

void expect_events_equal(const capture::FrameEvent& a, const capture::FrameEvent& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.device, b.device);
  EXPECT_EQ(a.ap, b.ap);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.time_s), std::bit_cast<std::uint64_t>(b.time_s));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.rssi_dbm),
            std::bit_cast<std::uint64_t>(b.rssi_dbm));
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.ssid_str(), b.ssid_str());
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(WalCodec, PayloadRoundTripsBitExactly) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    WalRecord record{.seq = i + 1, .event = make_event(i)};
    std::uint8_t buf[kWalPayloadBytes];
    encode_wal_payload(record, buf);
    WalRecord decoded;
    ASSERT_TRUE(decode_wal_payload({buf, kWalPayloadBytes}, decoded));
    EXPECT_EQ(decoded.seq, record.seq);
    EXPECT_EQ(decoded.event.stream_seq, record.seq);  // decoder re-stamps the cursor
    expect_events_equal(decoded.event, record.event);
  }
}

TEST(WalCodec, DecodeRejectsMalformedPayloads) {
  WalRecord record{.seq = 7, .event = make_event(1)};
  std::uint8_t buf[kWalPayloadBytes];
  encode_wal_payload(record, buf);
  WalRecord out;
  EXPECT_FALSE(decode_wal_payload({buf, kWalPayloadBytes - 1}, out));  // short
  std::uint8_t bad_kind[kWalPayloadBytes];
  std::memcpy(bad_kind, buf, sizeof(buf));
  bad_kind[8] = 0x7f;  // kind beyond kBeacon
  EXPECT_FALSE(decode_wal_payload({bad_kind, kWalPayloadBytes}, out));
  std::uint8_t bad_ssid[kWalPayloadBytes];
  std::memcpy(bad_ssid, buf, sizeof(buf));
  bad_ssid[44] = 33;  // ssid_len beyond the 802.11 maximum
  EXPECT_FALSE(decode_wal_payload({bad_ssid, kWalPayloadBytes}, out));
}

TEST(WalWriter, RoundTripsThroughSegmentFiles) {
  const fs::path dir = fresh_dir("mm_wal_roundtrip");
  constexpr std::uint64_t kRecords = 100;
  {
    WalWriterOptions options;
    options.commit_every_records = 8;
    options.fsync_on_commit = false;
    WalWriter writer(dir, /*shard=*/3, options);
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(writer.append({.seq = i + 1, .event = make_event(i)}).ok());
    }
    ASSERT_TRUE(writer.seal().ok());
    EXPECT_EQ(writer.stats().records, kRecords);
    EXPECT_EQ(writer.stats().last_committed_seq, kRecords);
    EXPECT_GE(writer.stats().commits, kRecords / 8);
  }

  std::vector<WalRecord> replayed;
  const auto stats = replay_wal(dir, /*from_seq=*/0,
                                [&](const WalRecord& r) { replayed.push_back(r); });
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats.value().records_replayed, kRecords);
  EXPECT_EQ(stats.value().torn_tails, 0u);
  EXPECT_EQ(stats.value().max_seq, kRecords);
  ASSERT_EQ(replayed.size(), kRecords);
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    EXPECT_EQ(replayed[i].seq, i + 1);  // ascending, gap-free
    expect_events_equal(replayed[i].event, make_event(i));
  }
}

TEST(WalWriter, GroupCommitBuffersUntilCadence) {
  const fs::path dir = fresh_dir("mm_wal_group");
  WalWriterOptions options;
  options.commit_every_records = 64;
  options.fsync_on_commit = false;
  WalWriter writer(dir, 0, options);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.append({.seq = i + 1, .event = make_event(i)}).ok());
  }
  // Nothing committed yet: a crash here loses exactly this buffered group.
  EXPECT_EQ(writer.stats().commits, 0u);
  EXPECT_EQ(writer.buffered_records(), 10u);
  const auto segments = list_wal_segments(dir);
  ASSERT_EQ(segments.size(), 1u);
  const auto before = read_wal_segment(segments[0]);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().records.empty());

  ASSERT_TRUE(writer.commit().ok());
  EXPECT_EQ(writer.buffered_records(), 0u);
  const auto after = read_wal_segment(segments[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().records.size(), 10u);
}

TEST(WalWriter, RotatesSegmentsNamedByFirstSequence) {
  const fs::path dir = fresh_dir("mm_wal_rotate");
  WalWriterOptions options;
  options.segment_bytes = 512;  // a handful of records per segment
  options.commit_every_records = 4;
  options.fsync_on_commit = false;
  WalWriter writer(dir, 0, options);
  constexpr std::uint64_t kRecords = 60;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(writer.append({.seq = i + 1, .event = make_event(i)}).ok());
  }
  ASSERT_TRUE(writer.seal().ok());
  EXPECT_GT(writer.stats().segments_opened, 2u);

  const auto segments = list_wal_segments(dir);
  ASSERT_EQ(segments.size(), writer.stats().segments_opened);
  std::uint64_t expect_next = 1;
  for (const auto& path : segments) {
    const auto seg = read_wal_segment(path);
    ASSERT_TRUE(seg.ok()) << seg.error();
    ASSERT_TRUE(seg.value().header_ok);
    EXPECT_FALSE(seg.value().torn);
    ASSERT_FALSE(seg.value().records.empty());
    // The file name advertises exactly the first sequence inside.
    EXPECT_EQ(seg.value().first_seq, seg.value().records.front().seq);
    EXPECT_EQ(seg.value().records.front().seq, expect_next);
    expect_next = seg.value().records.back().seq + 1;
  }
  EXPECT_EQ(expect_next, kRecords + 1);
}

TEST(WalWriter, InjectedTornWriteKillsTheWriterAndLeavesADecodableTail) {
  const fs::path dir = fresh_dir("mm_wal_torn_inject");
  fault::FaultPlan plan;
  plan.torn_write_rate = 1.0;  // first commit tears
  plan.seed = 11;
  fault::FaultInjector injector(plan);
  WalWriterOptions options;
  options.commit_every_records = 8;
  options.injector = &injector;
  WalWriter writer(dir, 0, options);
  bool failed = false;
  for (std::uint64_t i = 0; i < 32 && !failed; ++i) {
    const auto appended = writer.append({.seq = i + 1, .event = make_event(i)});
    failed = !appended.ok();
  }
  EXPECT_TRUE(failed);
  EXPECT_TRUE(writer.failed());
  EXPECT_GE(writer.stats().append_failures, 1u);
  // Whatever the tear left on disk replays as a clean prefix, never an error.
  std::uint64_t last = 0;
  const auto stats =
      replay_wal(dir, 0, [&](const WalRecord& r) { EXPECT_EQ(r.seq, ++last); });
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_LE(stats.value().records_replayed, 8u);
}

TEST(WalReader, TornTailTruncatesAtFirstBadFrameOnly) {
  const fs::path dir = fresh_dir("mm_wal_torn_tail");
  constexpr std::uint64_t kRecords = 20;
  {
    WalWriterOptions options;
    options.commit_every_records = 1;
    options.fsync_on_commit = false;
    WalWriter writer(dir, 0, options);
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(writer.append({.seq = i + 1, .event = make_event(i)}).ok());
    }
    ASSERT_TRUE(writer.seal().ok());
  }
  const auto segments = list_wal_segments(dir);
  ASSERT_EQ(segments.size(), 1u);
  auto bytes = read_file(segments[0]);
  // Flip one payload byte in the middle: every record before it must
  // survive, everything from it on is the torn tail.
  const std::size_t header = 28;
  const std::size_t frame = 8 + kWalPayloadBytes;
  const std::size_t victim = 12;  // 0-based record index
  bytes[header + victim * frame + 8 + 40] ^= 0x40;
  write_file(segments[0], bytes);

  const auto seg = read_wal_segment(segments[0]);
  ASSERT_TRUE(seg.ok());
  EXPECT_TRUE(seg.value().header_ok);
  EXPECT_TRUE(seg.value().torn);
  ASSERT_EQ(seg.value().records.size(), victim);
  EXPECT_EQ(seg.value().records.back().seq, victim);
  EXPECT_EQ(seg.value().discarded_bytes, (kRecords - victim) * frame);
  EXPECT_GE(seg.value().discarded_records, 1u);

  const auto stats = replay_wal(dir, 0, [](const WalRecord&) {});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records_replayed, victim);
  EXPECT_EQ(stats.value().torn_tails, 1u);
}

TEST(WalReader, MidLogTornSegmentAbandonsEverythingAfterIt) {
  const fs::path dir = fresh_dir("mm_wal_midlog");
  {
    WalWriterOptions options;
    options.segment_bytes = 512;
    options.commit_every_records = 1;
    options.fsync_on_commit = false;
    WalWriter writer(dir, 0, options);
    for (std::uint64_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(writer.append({.seq = i + 1, .event = make_event(i)}).ok());
    }
    ASSERT_TRUE(writer.seal().ok());
  }
  auto segments = list_wal_segments(dir);
  ASSERT_GE(segments.size(), 3u);
  // Chop the middle segment: replaying past the hole would apply records out
  // of order, so replay must stop there and count the rest as abandoned.
  auto bytes = read_file(segments[1]);
  bytes.resize(bytes.size() - 10);
  write_file(segments[1], bytes);

  std::uint64_t last = 0;
  const auto stats =
      replay_wal(dir, 0, [&](const WalRecord& r) { EXPECT_EQ(r.seq, ++last); });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().torn_tails, 1u);
  EXPECT_EQ(stats.value().segments_abandoned, segments.size() - 2);
  const auto first_abandoned = read_wal_segment(segments[2]);
  ASSERT_TRUE(first_abandoned.ok());
  EXPECT_LT(last, first_abandoned.value().first_seq);
}

TEST(WalReclaim, DeletesOnlyProvablyCoveredSegments) {
  const fs::path dir = fresh_dir("mm_wal_reclaim");
  {
    WalWriterOptions options;
    options.segment_bytes = 512;
    options.commit_every_records = 1;
    options.fsync_on_commit = false;
    WalWriter writer(dir, 0, options);
    for (std::uint64_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(writer.append({.seq = i + 1, .event = make_event(i)}).ok());
    }
    ASSERT_TRUE(writer.seal().ok());
  }
  const auto before = list_wal_segments(dir);
  ASSERT_GE(before.size(), 3u);
  const auto second = read_wal_segment(before[1]);
  ASSERT_TRUE(second.ok());

  // applied_seq below the second segment's start proves nothing: segment 0
  // may still hold needed records.
  EXPECT_EQ(reclaim_wal_segments(dir, second.value().first_seq - 2), 0u);
  // applied_seq at (first_seq - 1) of segment 1 proves segment 0 is covered.
  EXPECT_EQ(reclaim_wal_segments(dir, second.value().first_seq - 1), 1u);
  EXPECT_EQ(list_wal_segments(dir).size(), before.size() - 1);
  // Even an absurdly high mark never deletes the newest segment.
  reclaim_wal_segments(dir, 1'000'000);
  const auto after = list_wal_segments(dir);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0], before.back());
}

capture::ObservationStore make_store(std::uint64_t events) {
  capture::ObservationStore store;
  for (std::uint64_t i = 0; i < events; ++i) {
    capture::FrameEvent event = make_event(i);
    event.kind = capture::FrameEventKind::kContact;
    apply_event(event, store);
  }
  return store;
}

TEST(Checkpoint, WriteLoadRoundTripsMetaAndStore) {
  const fs::path dir = fresh_dir("mm_ckpt_roundtrip");
  const capture::ObservationStore store = make_store(30);
  CheckpointMeta meta;
  meta.shard = 2;
  meta.shard_count = 4;
  meta.applied_seq = 30;
  meta.frames = 30;
  meta.contacts = 30;
  meta.publishes = 12;
  ASSERT_TRUE(write_checkpoint(dir, meta, store).ok());

  const auto loaded = load_latest_checkpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_TRUE(loaded.value().has_value());
  const LoadedCheckpoint& ck = *loaded.value();
  EXPECT_EQ(ck.meta.shard, meta.shard);
  EXPECT_EQ(ck.meta.shard_count, meta.shard_count);
  EXPECT_EQ(ck.meta.applied_seq, meta.applied_seq);
  EXPECT_EQ(ck.meta.frames, meta.frames);
  EXPECT_EQ(ck.meta.contacts, meta.contacts);
  EXPECT_EQ(ck.meta.publishes, meta.publishes);
  EXPECT_EQ(ck.damaged_skipped, 0u);
  EXPECT_EQ(ck.load_stats.quarantined, 0u);
  EXPECT_EQ(ck.store.device_count(), store.device_count());
  for (const auto& mac : store.devices()) {
    const auto* want = store.device(mac);
    const auto* got = ck.store.device(mac);
    ASSERT_NE(got, nullptr) << mac.to_string();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got->first_seen),
              std::bit_cast<std::uint64_t>(want->first_seen));
    EXPECT_EQ(got->contacts.size(), want->contacts.size());
  }
}

TEST(Checkpoint, FallsBackOverADamagedNewerCheckpoint) {
  const fs::path dir = fresh_dir("mm_ckpt_fallback");
  CheckpointMeta older;
  older.applied_seq = 10;
  older.frames = 10;
  ASSERT_TRUE(write_checkpoint(dir, older, make_store(10)).ok());
  CheckpointMeta newer;
  newer.applied_seq = 20;
  newer.frames = 20;
  ASSERT_TRUE(write_checkpoint(dir, newer, make_store(20)).ok());

  auto metas = list_checkpoint_metas(dir);
  ASSERT_EQ(metas.size(), 2u);
  auto bytes = read_file(metas.back());  // newest
  bytes[bytes.size() / 2] ^= 0x01;       // CRC now fails
  write_file(metas.back(), bytes);

  const auto loaded = load_latest_checkpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_TRUE(loaded.value().has_value());
  EXPECT_EQ(loaded.value()->meta.applied_seq, 10u);
  EXPECT_EQ(loaded.value()->damaged_skipped, 1u);
}

TEST(Checkpoint, PruneKeepsTheNewestTwo) {
  const fs::path dir = fresh_dir("mm_ckpt_prune");
  for (std::uint64_t seq : {5u, 10u, 15u, 20u}) {
    CheckpointMeta meta;
    meta.applied_seq = seq;
    ASSERT_TRUE(write_checkpoint(dir, meta, make_store(seq)).ok());
  }
  const auto metas = list_checkpoint_metas(dir);
  ASSERT_EQ(metas.size(), kCheckpointsKept);
  const auto loaded = load_latest_checkpoint(dir);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().has_value());
  EXPECT_EQ(loaded.value()->meta.applied_seq, 20u);
}

TEST(Crc32c, MatchesKnownVector) {
  // RFC 3720 test vector: crc32c("123456789") = 0xE3069283.
  const char* digits = "123456789";
  EXPECT_EQ(crc32c({reinterpret_cast<const std::uint8_t*>(digits), 9}), 0xE3069283u);
}

}  // namespace
}  // namespace mm::durability
