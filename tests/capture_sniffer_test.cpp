#include "capture/sniffer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "capture/persistence.h"
#include "capture/wardrive.h"
#include "net80211/pcap.h"
#include "net80211/radiotap.h"
#include "sim/ap.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"

namespace mm::capture {
namespace {

const net80211::MacAddress kApMac = *net80211::MacAddress::parse("00:1a:2b:00:00:01");
const net80211::MacAddress kClientMac = *net80211::MacAddress::parse("00:16:6f:00:00:02");

sim::ApConfig base_ap(geo::Vec2 pos, double radius, int channel = 6) {
  sim::ApConfig cfg;
  cfg.bssid = kApMac;
  cfg.ssid = "TestNet";
  cfg.channel = {rf::Band::kBg24GHz, channel};
  cfg.position = pos;
  cfg.service_radius_m = radius;
  return cfg;
}

std::unique_ptr<sim::MobileDevice> make_mobile(geo::Vec2 pos) {
  sim::MobileConfig cfg;
  cfg.mac = kClientMac;
  cfg.profile.probes = false;
  cfg.mobility = std::make_shared<sim::StaticPosition>(pos);
  return std::make_unique<sim::MobileDevice>(cfg);
}

TEST(Sniffer, RequiresStore) {
  EXPECT_THROW(Sniffer({}, nullptr), std::invalid_argument);
}

TEST(Sniffer, RequiresChannelsUnlessHopping) {
  SnifferConfig cfg;
  cfg.card_channels.clear();
  ObservationStore store;
  EXPECT_THROW(Sniffer(cfg, &store), std::invalid_argument);
  cfg.hopping = true;
  EXPECT_NO_THROW(Sniffer(cfg, &store));
}

TEST(Sniffer, CapturesProbeTrafficAndBuildsGamma) {
  sim::World world({});
  world.add_access_point(std::make_unique<sim::AccessPoint>(base_ap({60.0, 0.0}, 120.0)));
  sim::MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}));

  ObservationStore store;
  SnifferConfig cfg;
  cfg.position = {0.0, 150.0};
  Sniffer sniffer(cfg, &store);
  sniffer.attach(world);

  mobile->trigger_scan();
  world.run_until(2.0);

  EXPECT_GT(sniffer.stats().frames_decoded, 0u);
  EXPECT_GT(sniffer.stats().probe_requests, 0u);
  EXPECT_EQ(sniffer.stats().probe_responses, 1u);
  EXPECT_EQ(store.gamma(kClientMac), (std::set<net80211::MacAddress>{kApMac}));
  const DeviceRecord* rec = store.device(kClientMac);
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->probe_requests, 0u);
}

// Fig 9: the sniffer's card tuned to channels 1/6/11 hears probes sent on
// those channels but misses probes on channels >= 2 away.
TEST(Sniffer, CrossChannelDecodeProbabilities) {
  ObservationStore store;
  SnifferConfig cfg;
  Sniffer sniffer(cfg, &store);
  const rf::Channel card{rf::Band::kBg24GHz, 11};
  const double strong = -50.0;  // close transmitter
  EXPECT_GT(sniffer.decode_probability(strong, {rf::Band::kBg24GHz, 11}, card), 0.99);
  const double adjacent = sniffer.decode_probability(strong, {rf::Band::kBg24GHz, 10}, card);
  const double two_off = sniffer.decode_probability(strong, {rf::Band::kBg24GHz, 9}, card);
  EXPECT_GT(adjacent, two_off);
  EXPECT_LT(two_off, 0.05);
  // At a more typical capture level the adjacent channel is marginal ("few").
  const double typical = -85.0;
  const double adj_typical =
      sniffer.decode_probability(typical, {rf::Band::kBg24GHz, 10}, card);
  EXPECT_LT(adj_typical, 0.8);
  EXPECT_LT(sniffer.decode_probability(typical, {rf::Band::kBg24GHz, 9}, card), 1e-3);
  EXPECT_DOUBLE_EQ(sniffer.decode_probability(strong, {rf::Band::kBg24GHz, 6}, card), 0.0);
}

TEST(Sniffer, WeakSignalUndecodable) {
  ObservationStore store;
  Sniffer sniffer(SnifferConfig{}, &store);
  const rf::Channel ch6{rf::Band::kBg24GHz, 6};
  EXPECT_LT(sniffer.decode_probability(-150.0, ch6, ch6), 0.01);
}

TEST(Sniffer, LnaChainDecodesFartherThanBareCard) {
  ObservationStore store;
  SnifferConfig lna_cfg;
  lna_cfg.chain = rf::presets::chain_lna();
  SnifferConfig dlink_cfg;
  dlink_cfg.chain = rf::presets::chain_dlink();
  Sniffer lna(lna_cfg, &store);
  Sniffer dlink(dlink_cfg, &store);
  const rf::Channel ch6{rf::Band::kBg24GHz, 6};
  const double weak = -95.0;
  EXPECT_GT(lna.decode_probability(weak, ch6, ch6),
            dlink.decode_probability(weak, ch6, ch6) + 0.4);
}

TEST(Sniffer, HoppingCardCyclesChannels) {
  ObservationStore store;
  SnifferConfig cfg;
  cfg.hopping = true;
  cfg.hop_dwell_s = 4.0;
  Sniffer sniffer(cfg, &store);
  EXPECT_EQ(sniffer.card_count(), 1u);
  EXPECT_EQ(sniffer.card_channel(0, 0.0).number, 1);
  EXPECT_EQ(sniffer.card_channel(0, 4.5).number, 2);
  EXPECT_EQ(sniffer.card_channel(0, 43.9).number, 11);
  EXPECT_EQ(sniffer.card_channel(0, 44.1).number, 1);  // wraps
}

TEST(Sniffer, FixedCardsReportTheirChannels) {
  ObservationStore store;
  Sniffer sniffer(SnifferConfig{}, &store);
  EXPECT_EQ(sniffer.card_count(), 3u);
  EXPECT_EQ(sniffer.card_channel(0, 100.0).number, 1);
  EXPECT_EQ(sniffer.card_channel(1, 100.0).number, 6);
  EXPECT_EQ(sniffer.card_channel(2, 100.0).number, 11);
}

TEST(Sniffer, WritesPcapOfDecodedFrames) {
  const auto path = std::filesystem::temp_directory_path() / "mm_sniffer_test.pcap";
  {
    sim::World world({});
    world.add_access_point(std::make_unique<sim::AccessPoint>(base_ap({20.0, 0.0}, 100.0)));
    sim::MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}));
    ObservationStore store;
    SnifferConfig cfg;
    cfg.position = {0.0, 50.0};
    cfg.pcap_path = path;
    Sniffer sniffer(cfg, &store);
    sniffer.attach(world);
    mobile->trigger_scan();
    world.run_until(2.0);
    EXPECT_GT(sniffer.stats().frames_decoded, 0u);
  }
  net80211::PcapReader reader(path);
  const auto records = reader.read_all();
  EXPECT_FALSE(records.empty());
  // Every record must carry a parseable radiotap header + frame.
  for (const auto& rec : records) {
    const auto rt = net80211::Radiotap::parse(rec.data);
    ASSERT_TRUE(rt.ok());
    const std::span<const std::uint8_t> body{rec.data.data() + rt.value().header_length,
                                             rec.data.size() - rt.value().header_length};
    EXPECT_TRUE(net80211::ManagementFrame::parse(body).ok());
  }
  std::filesystem::remove(path);
}

TEST(Sniffer, DecodeProbabilityMonotoneInSignal) {
  ObservationStore store;
  Sniffer sniffer(SnifferConfig{}, &store);
  const rf::Channel ch6{rf::Band::kBg24GHz, 6};
  double prev = 0.0;
  for (double rssi = -130.0; rssi <= -40.0; rssi += 5.0) {
    const double p = sniffer.decode_probability(rssi, ch6, ch6);
    EXPECT_GE(p, prev - 1e-12) << "rssi " << rssi;
    prev = p;
  }
  EXPECT_GT(prev, 0.99);
}

// The 802.11a note of Section III-B: a b/g-only scan sweep never reaches a
// 5 GHz AP (supporting 802.11a needs 12 more cards; our simulated victim
// sweeps b/g only, so an A-band AP stays invisible).
TEST(Sniffer, FiveGhzApInvisibleToBgScan) {
  sim::World world({});
  sim::ApConfig ap = base_ap({10.0, 0.0}, 100.0);
  ap.channel = {rf::Band::kA5GHz, 36};
  sim::AccessPoint* five_ghz = world.add_access_point(std::make_unique<sim::AccessPoint>(ap));
  sim::MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}));
  ObservationStore store;
  SnifferConfig sc;
  sc.position = {0.0, 20.0};
  Sniffer sniffer(sc, &store);
  sniffer.attach(world);
  mobile->trigger_scan();
  world.run_until(2.0);
  EXPECT_EQ(five_ghz->probes_answered(), 0u);
  EXPECT_TRUE(store.gamma(kClientMac).empty());
}

// A full-drop fault plan: every decoded frame is lost before the store, and
// the loss shows up in the monotone degradation counters.
TEST(Sniffer, FaultPlanDropsAllFrames) {
  sim::World world({});
  world.add_access_point(std::make_unique<sim::AccessPoint>(base_ap({60.0, 0.0}, 120.0)));
  sim::MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}));

  ObservationStore store;
  SnifferConfig cfg;
  cfg.position = {0.0, 150.0};
  cfg.fault_plan.drop_rate = 1.0;
  Sniffer sniffer(cfg, &store);
  sniffer.attach(world);
  mobile->trigger_scan();
  world.run_until(2.0);

  EXPECT_GT(sniffer.stats().frames_decoded, 0u);
  EXPECT_EQ(sniffer.stats().frames_fault_dropped, sniffer.stats().frames_decoded);
  EXPECT_EQ(sniffer.fault_stats().frames_dropped, sniffer.stats().frames_decoded);
  EXPECT_EQ(store.device_count(), 0u);
}

// Aggressive truncation damages frames beyond parsing: they are quarantined
// (counted, never crashing the rig) instead of entering the store.
TEST(Sniffer, TruncatedFramesQuarantinedNotFatal) {
  sim::World world({});
  world.add_access_point(std::make_unique<sim::AccessPoint>(base_ap({60.0, 0.0}, 120.0)));
  sim::MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}));

  ObservationStore store;
  SnifferConfig cfg;
  cfg.position = {0.0, 150.0};
  cfg.fault_plan.truncate_rate = 1.0;
  Sniffer sniffer(cfg, &store);
  sniffer.attach(world);
  mobile->trigger_scan();
  world.run_until(2.0);

  EXPECT_GT(sniffer.stats().frames_decoded, 0u);
  EXPECT_EQ(sniffer.fault_stats().frames_truncated, sniffer.stats().frames_decoded);
  EXPECT_GT(sniffer.stats().frames_quarantined, 0u);
}

// Total NIC dropout: every decode attempt hits a downed card.
TEST(Sniffer, NicDropoutSkipsCards) {
  sim::World world({});
  world.add_access_point(std::make_unique<sim::AccessPoint>(base_ap({60.0, 0.0}, 120.0)));
  sim::MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}));

  ObservationStore store;
  SnifferConfig cfg;
  cfg.position = {0.0, 150.0};
  cfg.fault_plan.nic_dropout_rate = 1.0;
  Sniffer sniffer(cfg, &store);
  sniffer.attach(world);
  mobile->trigger_scan();
  world.run_until(2.0);

  EXPECT_EQ(sniffer.stats().frames_decoded, 0u);
  EXPECT_GT(sniffer.stats().card_down_skips, 0u);
  EXPECT_EQ(store.device_count(), 0u);
}

// Checkpointing from the capture loop: snapshots appear at the configured
// sim-time cadence and load back cleanly.
TEST(Sniffer, CheckpointsObservationStore) {
  const auto path = std::filesystem::temp_directory_path() / "mm_sniffer_cp.csv";
  std::filesystem::remove(path);
  sim::World world({});
  world.add_access_point(std::make_unique<sim::AccessPoint>(base_ap({60.0, 0.0}, 120.0)));
  sim::MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}));

  ObservationStore store;
  SnifferConfig cfg;
  cfg.position = {0.0, 150.0};
  cfg.checkpoint_path = path;
  cfg.checkpoint_interval_s = 1.0;
  Sniffer sniffer(cfg, &store);
  sniffer.attach(world);
  for (double t : {0.5, 2.0, 3.5}) {
    world.queue().schedule(t, [mobile] { mobile->trigger_scan(); });
  }
  world.run_until(5.0);

  ASSERT_NE(sniffer.checkpointer(), nullptr);
  EXPECT_GE(sniffer.checkpointer()->checkpoints_written(), 1u);
  EXPECT_EQ(sniffer.checkpointer()->failures(), 0u);
  auto loaded = load_observations(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_GT(loaded.value().store.device_count(), 0u);
  std::filesystem::remove(path);
}

TEST(Wardriver, CollectsTrainingTuples) {
  sim::World world({});
  world.add_access_point(std::make_unique<sim::AccessPoint>(base_ap({50.0, 0.0}, 100.0)));
  Wardriver driver;
  driver.attach(world);
  driver.sample_at(1.0, {0.0, 0.0});      // within 100 m of the AP
  driver.sample_at(5.0, {400.0, 0.0});    // far away
  world.run_until(10.0);
  ASSERT_EQ(driver.tuples().size(), 2u);
  EXPECT_EQ(driver.tuples()[0].heard_aps, (std::set<net80211::MacAddress>{kApMac}));
  EXPECT_TRUE(driver.tuples()[1].heard_aps.empty());
  EXPECT_EQ(driver.tuples()[0].position, geo::Vec2(0.0, 0.0));
}

TEST(Wardriver, DriveRouteSamplesEvenly) {
  sim::World world({});
  world.add_access_point(std::make_unique<sim::AccessPoint>(base_ap({0.0, 0.0}, 120.0)));
  Wardriver driver;
  driver.attach(world);
  const sim::SimTime finish =
      driver.drive_route({{-100.0, 0.0}, {100.0, 0.0}}, 5.0, 50.0);
  world.run_until(finish + 1.0);
  // 200 m at 50 m spacing: samples at -100, -50, 0, 50, 100 => 5 tuples.
  ASSERT_EQ(driver.tuples().size(), 5u);
  for (const auto& tuple : driver.tuples()) {
    EXPECT_EQ(tuple.heard_aps.count(kApMac), 1u) << "at x=" << tuple.position.x;
  }
}

TEST(Wardriver, RouteValidation) {
  sim::World world({});
  Wardriver driver;
  driver.attach(world);
  EXPECT_THROW(driver.drive_route({{0.0, 0.0}}, 5.0, 10.0), std::invalid_argument);
  EXPECT_THROW(driver.drive_route({{0.0, 0.0}, {1.0, 0.0}}, 0.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(driver.drive_route({{0.0, 0.0}, {1.0, 0.0}}, 5.0, 0.0),
               std::invalid_argument);
}

TEST(Wardriver, SampleBeforeAttachThrows) {
  Wardriver driver;
  EXPECT_THROW(driver.sample_at(1.0, {0.0, 0.0}), std::logic_error);
}

// End-to-end with a realistic campus: the sniffer sees many devices' Gamma
// sets, each non-empty when the mobile walks within AP coverage.
TEST(Sniffer, CampusScaleGammaCollection) {
  sim::CampusConfig campus;
  campus.seed = 77;
  campus.num_aps = 140;
  campus.half_extent_m = 300.0;
  campus.building_fraction = 0.0;  // uniform coverage: this test checks the
                                   // capture mechanics, not placement shape
  const auto aps = sim::generate_campus_aps(campus);

  sim::World world({.seed = 5, .propagation = nullptr});
  sim::populate_world(world, aps, /*beacons_enabled=*/false);

  sim::MobileConfig mc;
  mc.mac = kClientMac;
  mc.profile.probes = false;
  mc.mobility = std::make_shared<sim::StaticPosition>(geo::Vec2{0.0, 0.0});
  sim::MobileDevice* mobile = world.add_mobile(std::make_unique<sim::MobileDevice>(mc));

  ObservationStore store;
  SnifferConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.antenna_height_m = 20.0;
  Sniffer sniffer(cfg, &store);
  sniffer.attach(world);

  mobile->trigger_scan();
  world.run_until(3.0);

  const auto gamma = store.gamma(kClientMac);
  // Ground truth: only APs whose disc covers the origin may appear (the
  // disc-model guarantee), and every such AP on a main channel (1/6/11,
  // where the sniffer decodes with probability ~1) must appear.
  std::set<net80211::MacAddress> covering_any;
  std::set<net80211::MacAddress> covering_main;
  for (const auto& ap : aps) {
    if (ap.position.norm() <= ap.radius_m) {
      covering_any.insert(ap.bssid);
      if (ap.channel == 1 || ap.channel == 6 || ap.channel == 11) {
        covering_main.insert(ap.bssid);
      }
    }
  }
  EXPECT_GE(covering_main.size(), 3u) << "scenario too sparse to be meaningful";
  for (const auto& mac : covering_main) {
    EXPECT_EQ(gamma.count(mac), 1u) << "missed main-channel AP " << mac.to_string();
  }
  for (const auto& mac : gamma) {
    EXPECT_EQ(covering_any.count(mac), 1u)
        << "AP outside its disc appeared in Gamma: " << mac.to_string();
  }
}

}  // namespace
}  // namespace mm::capture
