#include "util/flags.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mm::util {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags f = make({"--seed=99"});
  EXPECT_TRUE(f.has("seed"));
  EXPECT_EQ(f.get_int("seed", 0), 99);
}

TEST(Flags, SpaceSyntax) {
  const Flags f = make({"--out", "result.csv"});
  EXPECT_EQ(f.get("out", ""), "result.csv");
}

TEST(Flags, BareBooleanFlag) {
  const Flags f = make({"--verbose"});
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_EQ(f.get("verbose", ""), "true");
}

TEST(Flags, BareFlagFollowedByFlag) {
  const Flags f = make({"--quiet", "--seed=3"});
  EXPECT_TRUE(f.has("quiet"));
  EXPECT_EQ(f.get_int("seed", 0), 3);
}

TEST(Flags, Positional) {
  const Flags f = make({"input.pcap", "--seed=1", "other"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.pcap");
  EXPECT_EQ(f.positional()[1], "other");
}

TEST(Flags, FallbackWhenMissing) {
  const Flags f = make({});
  EXPECT_FALSE(f.has("seed"));
  EXPECT_EQ(f.get_int("seed", 1234), 1234);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 2.5), 2.5);
  EXPECT_EQ(f.get("name", "dflt"), "dflt");
}

TEST(Flags, GetDouble) {
  const Flags f = make({"--rate=0.25"});
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 0.25);
}

TEST(Flags, BadIntegerThrows) {
  const Flags f = make({"--seed=abc"});
  EXPECT_THROW((void)f.get_int("seed", 0), std::invalid_argument);
}

TEST(Flags, BadDoubleThrows) {
  const Flags f = make({"--rate=xyz"});
  EXPECT_THROW((void)f.get_double("rate", 0.0), std::invalid_argument);
}

TEST(Flags, GetSeedHelper) {
  const Flags f = make({"--seed=77"});
  EXPECT_EQ(f.get_seed(1), 77u);
  const Flags none = make({});
  EXPECT_EQ(none.get_seed(5), 5u);
}

TEST(Flags, ProgramName) {
  const Flags f = make({});
  EXPECT_EQ(f.program(), "prog");
}

}  // namespace
}  // namespace mm::util
