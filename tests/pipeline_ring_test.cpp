// Riptide concurrency primitives: FrameRing (bounded lock-free MPSC),
// SeqlockSlot (torn-free position publishing), and DeviceDirectory
// (insert-only lock-free MAC index). The single-threaded tests pin the FIFO /
// capacity / counter contracts; the multi-threaded stress tests assert the
// interleaving invariants (per-producer order, torn-read detection, exact
// accounting) and double as the ThreadSanitizer workload in CI's tsan job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "pipeline/frame_ring.h"
#include "pipeline/seqlock.h"

namespace mm::pipeline {
namespace {

net80211::MacAddress mac_of(std::uint64_t id) {
  return net80211::MacAddress::from_u64(id);
}

capture::FrameEvent make_event(std::uint64_t producer, std::uint64_t seq) {
  capture::FrameEvent ev;
  ev.kind = capture::FrameEventKind::kContact;
  ev.device = mac_of(producer + 1);
  ev.ap = mac_of(0xa90000 + seq);
  ev.time_s = static_cast<double>(seq);
  return ev;
}

TEST(FrameRing, SingleProducerFifoAndCapacity) {
  FrameRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);

  // Fill to capacity; the next push must refuse without losing anything.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_push(make_event(0, i))) << i;
  }
  EXPECT_FALSE(ring.try_push(make_event(0, 99)));
  ring.count_drop();
  EXPECT_EQ(ring.pushed(), 8u);
  EXPECT_EQ(ring.dropped(), 1u);
  EXPECT_EQ(ring.high_water_mark(), 8u);
  EXPECT_EQ(ring.size(), 8u);

  // FIFO order, exactly once.
  capture::FrameEvent out;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out.time_s, static_cast<double>(i));
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.size(), 0u);

  // Slots are reusable after wrap-around.
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(make_event(0, i)));
    for (std::uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out.time_s, static_cast<double>(i));
    }
  }
}

TEST(FrameRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FrameRing(1).capacity(), 2u);
  EXPECT_EQ(FrameRing(3).capacity(), 4u);
  EXPECT_EQ(FrameRing(1000).capacity(), 1024u);
}

// Four producers race into one small ring while a consumer drains it. The
// asserts pin the MPSC contract: nothing lost, nothing duplicated, and each
// producer's events arrive in its own push order (per-key FIFO is what makes
// live results reproducible).
TEST(FrameRing, MultiProducerStressKeepsPerProducerOrderAndCounts) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  FrameRing ring(256);  // small on purpose: force full-ring interleavings

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        while (!ring.try_push(make_event(p, i))) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  capture::FrameEvent out;
  while (received < kProducers * kPerProducer) {
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t p = out.device.to_u64() - 1;
    ASSERT_LT(p, kProducers);
    // Interleaving assert: this producer's events arrive in push order.
    EXPECT_EQ(out.time_s, static_cast<double>(next_seq[p]));
    ++next_seq[p];
    ++received;
  }
  for (auto& t : producers) t.join();

  for (std::uint64_t p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kPerProducer);
  EXPECT_FALSE(ring.try_pop(out));
  // Accounting: every offered event was pushed exactly once (block mode).
  EXPECT_EQ(ring.pushed(), kProducers * kPerProducer);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_GE(ring.high_water_mark(), 1u);
  EXPECT_LE(ring.high_water_mark(), ring.capacity());
}

// Drop-policy accounting under pressure: producers never retry, so
// pushed + dropped must equal exactly what was offered.
TEST(FrameRing, DropNewestAccountingIsExact) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  FrameRing ring(64);
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        if (!ring.try_push(make_event(p, i))) ring.count_drop();
      }
    });
  }
  std::uint64_t popped = 0;
  std::thread consumer([&] {
    capture::FrameEvent out;
    for (;;) {
      if (ring.try_pop(out)) {
        ++popped;
        continue;
      }
      if (done.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
    }
  });
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  capture::FrameEvent out;
  while (ring.try_pop(out)) ++popped;

  EXPECT_EQ(ring.pushed() + ring.dropped(), kProducers * kPerProducer);
  EXPECT_EQ(popped, ring.pushed());
}

TEST(Seqlock, NeverPublishedReadsFalse) {
  SeqlockSlot slot;
  LivePosition out;
  EXPECT_FALSE(slot.read(out));
}

TEST(Seqlock, RoundTripsEveryField) {
  SeqlockSlot slot;
  LivePosition in;
  in.x_m = -123.456;
  in.y_m = 789.25;
  in.updated_at_s = 42.125;
  in.gamma_size = 17;
  in.ok = 1;
  in.used_fallback = 1;
  in.discs_rejected = 3;
  in.updates = 9001;
  slot.publish(in);
  LivePosition out;
  ASSERT_TRUE(slot.read(out));
  EXPECT_EQ(out.x_m, in.x_m);
  EXPECT_EQ(out.y_m, in.y_m);
  EXPECT_EQ(out.updated_at_s, in.updated_at_s);
  EXPECT_EQ(out.gamma_size, in.gamma_size);
  EXPECT_EQ(out.ok, in.ok);
  EXPECT_EQ(out.used_fallback, in.used_fallback);
  EXPECT_EQ(out.discs_rejected, in.discs_rejected);
  EXPECT_EQ(out.updates, in.updates);
}

// One writer republishes correlated payloads while readers hammer the slot:
// any torn read breaks the y == 2x / updates == x cross-field invariant.
TEST(Seqlock, ReadersNeverObserveTornWrites) {
  SeqlockSlot slot;
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      LivePosition out;
      std::uint64_t last_update = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (!slot.read(out)) continue;
        ASSERT_EQ(out.y_m, 2.0 * out.x_m);
        ASSERT_EQ(out.updates, static_cast<std::uint64_t>(out.x_m));
        // Publishes are monotone for a single writer.
        ASSERT_GE(out.updates, last_update);
        last_update = out.updates;
      }
    });
  }
  for (std::uint64_t k = 1; k <= 200000; ++k) {
    LivePosition p;
    p.x_m = static_cast<double>(k);
    p.y_m = 2.0 * static_cast<double>(k);
    p.updates = k;
    slot.publish(p);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
}

TEST(DeviceDirectory, InsertFindAndSnapshot) {
  DeviceDirectory dir(64);
  EXPECT_EQ(dir.find(mac_of(1)), nullptr);

  SeqlockSlot* slot = dir.insert(mac_of(1));
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(dir.insert(mac_of(1)), slot);  // idempotent
  EXPECT_EQ(dir.find(mac_of(1)), slot);
  EXPECT_EQ(dir.size(), 1u);

  // The all-zero MAC is a valid key (the tag bit distinguishes it from an
  // empty slot).
  ASSERT_NE(dir.insert(mac_of(0)), nullptr);
  EXPECT_NE(dir.find(mac_of(0)), nullptr);
  EXPECT_EQ(dir.size(), 2u);

  LivePosition p;
  p.x_m = 5.0;
  p.updates = 1;
  slot->publish(p);
  const auto snap = dir.snapshot();  // only published slots appear
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, mac_of(1));
  EXPECT_EQ(snap[0].second.x_m, 5.0);
}

TEST(DeviceDirectory, RefusesInsertsAtLoadLimit) {
  DeviceDirectory dir(16);
  std::size_t inserted = 0;
  for (std::uint64_t i = 1; i <= 64; ++i) {
    if (dir.insert(mac_of(i)) != nullptr) ++inserted;
  }
  EXPECT_EQ(inserted, dir.size());
  EXPECT_LT(dir.size(), dir.capacity());  // never fills completely
  EXPECT_GE(dir.size(), dir.capacity() / 2);
  // Existing keys still resolve at the limit.
  EXPECT_NE(dir.find(mac_of(1)), nullptr);
}

TEST(DeviceDirectory, ConcurrentInsertsClaimEachKeyOnce) {
  constexpr std::uint64_t kKeys = 512;
  DeviceDirectory dir(2048);
  std::vector<std::atomic<SeqlockSlot*>> claimed(kKeys);
  for (auto& c : claimed) c.store(nullptr);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        SeqlockSlot* slot = dir.insert(mac_of(k));
        ASSERT_NE(slot, nullptr);
        SeqlockSlot* expected = nullptr;
        if (!claimed[k].compare_exchange_strong(expected, slot)) {
          // Another thread claimed first: every thread must see one slot.
          ASSERT_EQ(expected, slot);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(dir.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(dir.find(mac_of(k)), claimed[k].load());
  }
}

}  // namespace
}  // namespace mm::pipeline
