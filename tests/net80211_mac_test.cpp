#include "net80211/mac_address.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/rng.h"

namespace mm::net80211 {
namespace {

TEST(MacAddress, ParseAndFormatRoundtrip) {
  const auto mac = MacAddress::parse("00:1a:2b:3c:4d:5e");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "00:1a:2b:3c:4d:5e");
}

TEST(MacAddress, ParseUppercaseAndDashes) {
  const auto mac = MacAddress::parse("AA-BB-CC-DD-EE-FF");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(MacAddress, ParseRejectsGarbage) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("00:11:22:33:44").has_value());
  EXPECT_FALSE(MacAddress::parse("00:11:22:33:44:55:66").has_value());
  EXPECT_FALSE(MacAddress::parse("0g:11:22:33:44:55").has_value());
  EXPECT_FALSE(MacAddress::parse("001122334455").has_value());
  EXPECT_FALSE(MacAddress::parse("00:11:22:33:44:5").has_value());
}

TEST(MacAddress, BroadcastProperties) {
  const MacAddress b = MacAddress::broadcast();
  EXPECT_TRUE(b.is_broadcast());
  EXPECT_TRUE(b.is_multicast());
  EXPECT_EQ(b.to_string(), "ff:ff:ff:ff:ff:ff");
}

TEST(MacAddress, DefaultIsZero) {
  const MacAddress z;
  EXPECT_EQ(z.to_string(), "00:00:00:00:00:00");
  EXPECT_FALSE(z.is_broadcast());
  EXPECT_FALSE(z.is_multicast());
  EXPECT_EQ(z.to_u64(), 0u);
}

TEST(MacAddress, RandomKeepsOui) {
  util::Rng rng(1);
  const MacAddress mac = MacAddress::random(rng, {0x00, 0x1a, 0x2b});
  EXPECT_EQ(mac.bytes()[0], 0x00);
  EXPECT_EQ(mac.bytes()[1], 0x1a);
  EXPECT_EQ(mac.bytes()[2], 0x2b);
  EXPECT_FALSE(mac.is_locally_administered());
}

TEST(MacAddress, RandomLocalSetsPrivacyBits) {
  util::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const MacAddress mac = MacAddress::random_local(rng);
    EXPECT_TRUE(mac.is_locally_administered());
    EXPECT_FALSE(mac.is_multicast());
  }
}

TEST(MacAddress, RandomAddressesDistinct) {
  util::Rng rng(3);
  std::set<MacAddress> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(MacAddress::random_local(rng));
  EXPECT_GT(seen.size(), 995u);
}

TEST(MacAddress, OrderingAndEquality) {
  const auto a = *MacAddress::parse("00:00:00:00:00:01");
  const auto b = *MacAddress::parse("00:00:00:00:00:02");
  EXPECT_LT(a, b);
  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
}

TEST(MacAddress, U64PackingPreservesOrder) {
  const auto a = *MacAddress::parse("00:00:00:00:01:00");
  const auto b = *MacAddress::parse("00:00:00:00:00:ff");
  EXPECT_GT(a.to_u64(), b.to_u64());
  EXPECT_EQ(a.to_u64(), 0x100u);
}

TEST(MacAddress, HashUsableInUnorderedSet) {
  util::Rng rng(4);
  std::unordered_set<MacAddress> seen;
  for (int i = 0; i < 100; ++i) seen.insert(MacAddress::random_local(rng));
  EXPECT_GT(seen.size(), 98u);
}

}  // namespace
}  // namespace mm::net80211
