// Association + keep-alive behaviour: devices that never probe but stay
// associated with their home network are still "found" by the sniffer (the
// Fig 10/11 found-vs-probing distinction), and their data traffic provides
// communicability evidence the tracker can localize from.
#include <gtest/gtest.h>

#include <memory>

#include "capture/sniffer.h"
#include "net80211/crc32.h"
#include "net80211/frames.h"
#include "sim/ap.h"
#include "sim/mobile.h"
#include "sim/mobility.h"

namespace mm::sim {
namespace {

const net80211::MacAddress kApMac = *net80211::MacAddress::parse("00:1a:2b:00:0c:01");
const net80211::MacAddress kClientMac = *net80211::MacAddress::parse("00:16:6f:00:0c:02");

TEST(Frames, AssociationRequestRoundtrip) {
  const auto frame = net80211::make_association_request(kClientMac, kApMac, "HomeNet", 5);
  const auto parsed = net80211::ManagementFrame::parse(frame.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().subtype, net80211::ManagementSubtype::kAssociationRequest);
  EXPECT_EQ(parsed.value().addr1, kApMac);
  EXPECT_EQ(parsed.value().addr2, kClientMac);
  EXPECT_EQ(parsed.value().ssid().value_or(""), "HomeNet");
  EXPECT_EQ(parsed.value().listen_interval, 10);
}

TEST(Frames, AssociationResponseRoundtrip) {
  const auto frame = net80211::make_association_response(kApMac, kClientMac, 0, 7, 6);
  const auto parsed = net80211::ManagementFrame::parse(frame.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().subtype, net80211::ManagementSubtype::kAssociationResponse);
  EXPECT_EQ(parsed.value().status_code, 0);
  EXPECT_EQ(parsed.value().association_id, 7);
}

TEST(Frames, DataNullRoundtrip) {
  const auto frame = net80211::make_data_null(kClientMac, kApMac, 9);
  const auto bytes = frame.serialize();
  EXPECT_EQ(bytes[0], 0x48);  // type 2 (data), subtype 4 (null function)
  const auto parsed = net80211::ManagementFrame::parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().subtype, net80211::ManagementSubtype::kDataNull);
  EXPECT_EQ(parsed.value().addr2, kClientMac);
  EXPECT_EQ(parsed.value().addr3, kApMac);
  EXPECT_STREQ(net80211::subtype_name(parsed.value().subtype), "data-null");
}

TEST(Frames, OtherDataSubtypesRejected) {
  auto bytes = net80211::make_data_null(kClientMac, kApMac, 0).serialize();
  bytes[0] = 0x88;  // QoS data subtype
  bytes.resize(bytes.size() - 4);
  const std::uint32_t fcs = net80211::crc32(bytes);
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(fcs >> (8 * i)));
  EXPECT_FALSE(net80211::ManagementFrame::parse(bytes).ok());
}

struct AssocScene {
  World world{{}};
  AccessPoint* ap = nullptr;
  MobileDevice* mobile = nullptr;
};

std::unique_ptr<AssocScene> make_scene(bool beacons, double radius = 120.0) {
  auto scene = std::make_unique<AssocScene>();
  ApConfig ap;
  ap.bssid = kApMac;
  ap.ssid = "HomeNet";
  ap.channel = {rf::Band::kBg24GHz, 6};
  ap.position = {40.0, 0.0};
  ap.service_radius_m = radius;
  ap.beacons_enabled = beacons;
  scene->ap = scene->world.add_access_point(std::make_unique<AccessPoint>(ap));

  MobileConfig mc;
  mc.mac = kClientMac;
  mc.profile.probes = false;
  mc.profile.home_ssid = "HomeNet";
  mc.profile.keepalive_interval_s = 5.0;
  mc.mobility = std::make_shared<StaticPosition>(geo::Vec2{0.0, 0.0});
  scene->mobile = scene->world.add_mobile(std::make_unique<MobileDevice>(mc));
  return scene;
}

TEST(Association, DeviceJoinsHomeNetworkViaBeacon) {
  auto scene = make_scene(/*beacons=*/true);
  scene->world.run_until(30.0);
  ASSERT_TRUE(scene->mobile->associated_bssid().has_value());
  EXPECT_EQ(*scene->mobile->associated_bssid(), kApMac);
  EXPECT_EQ(scene->ap->associations(), 1u);
  EXPECT_GT(scene->mobile->keepalives_sent(), 2u);
  EXPECT_EQ(scene->mobile->probes_sent(), 0u);  // never probed
}

TEST(Association, DeviceJoinsViaProbeResponseToo) {
  auto scene = make_scene(/*beacons=*/false);
  scene->mobile->trigger_scan();  // a probe response also reveals HomeNet
  scene->world.run_until(30.0);
  EXPECT_TRUE(scene->mobile->associated_bssid().has_value());
}

TEST(Association, NoJoinWhenSsidUnknown) {
  auto scene = make_scene(/*beacons=*/true);
  // Replace the mobile's home SSID after construction is not possible;
  // build a second mobile with a different home network instead.
  MobileConfig mc;
  mc.mac = *net80211::MacAddress::parse("00:16:6f:00:0c:03");
  mc.profile.probes = false;
  mc.profile.home_ssid = "SomeOtherNet";
  mc.mobility = std::make_shared<StaticPosition>(geo::Vec2{0.0, 0.0});
  MobileDevice* other = scene->world.add_mobile(std::make_unique<MobileDevice>(mc));
  scene->world.run_until(30.0);
  EXPECT_FALSE(other->associated_bssid().has_value());
}

TEST(Association, SnifferFindsNonProbingAssociatedDevice) {
  auto scene = make_scene(/*beacons=*/true);
  capture::ObservationStore store;
  capture::SnifferConfig sc;
  sc.position = {0.0, 80.0};
  capture::Sniffer sniffer(sc, &store);
  sniffer.attach(scene->world);
  scene->world.run_until(60.0);

  EXPECT_GT(sniffer.stats().associations, 0u);
  EXPECT_GT(sniffer.stats().data_frames, 5u);
  // Found but not probing — exactly the Fig 10/11 distinction.
  const capture::DeviceRecord* rec = store.device(kClientMac);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->probe_requests, 0u);
  EXPECT_EQ(store.probing_device_count(), 0u);
  EXPECT_GE(store.device_count(), 1u);
  // The association/data evidence supports localization: Gamma non-empty.
  EXPECT_EQ(store.gamma(kClientMac).count(kApMac), 1u);
}

}  // namespace
}  // namespace mm::sim
