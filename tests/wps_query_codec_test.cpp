// Basilisk query protocol: requests and chunked responses must round-trip
// bit-exact over the Lattice wire codec, reassemble out of order, and reject
// damaged chunks without ever corrupting a response.
#include "wps/query_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "util/rng.h"
#include "wps/snapshot_writer.h"

namespace mm::wps {
namespace {

namespace fs = std::filesystem;

bool bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ba == bb;
}

QueryResponse make_response(QueryOp op, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  QueryResponse resp;
  resp.op = op;
  for (std::size_t i = 0; i < n; ++i) {
    WpsAp ap;
    ap.bssid = net80211::MacAddress::from_u64(0x020000000000ULL + i);
    ap.position = {rng.uniform(-9000.0, 9000.0), rng.uniform(-9000.0, 9000.0)};
    if (rng.bernoulli(0.5)) ap.radius_m = rng.uniform(10.0, 200.0);
    resp.aps.push_back(ap);
  }
  return resp;
}

void expect_same_response(const QueryResponse& got, const QueryResponse& want) {
  EXPECT_EQ(got.op, want.op);
  EXPECT_EQ(got.status, want.status);
  ASSERT_EQ(got.aps.size(), want.aps.size());
  for (std::size_t i = 0; i < got.aps.size(); ++i) {
    EXPECT_EQ(got.aps[i].bssid, want.aps[i].bssid);
    EXPECT_TRUE(bits_equal(got.aps[i].position.x, want.aps[i].position.x));
    EXPECT_TRUE(bits_equal(got.aps[i].position.y, want.aps[i].position.y));
    ASSERT_EQ(got.aps[i].radius_m.has_value(), want.aps[i].radius_m.has_value());
    if (got.aps[i].radius_m) {
      EXPECT_TRUE(bits_equal(*got.aps[i].radius_m, *want.aps[i].radius_m));
    }
  }
}

TEST(WpsQueryCodec, RequestRoundTrip) {
  for (const QueryOp op : {QueryOp::kLookup, QueryOp::kNearest, QueryOp::kRange}) {
    QueryRequest req;
    req.op = op;
    req.k = 17;
    req.bssid = 0x0242ac110002ULL;
    req.center = {-1234.5, 6789.25};
    req.radius_m = 350.0;
    const auto bytes = encode_request(req);
    EXPECT_EQ(bytes.size(), kRequestPayloadBytes);
    const auto back = decode_request(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->op, req.op);
    EXPECT_EQ(back->k, req.k);
    EXPECT_EQ(back->bssid, req.bssid);
    EXPECT_TRUE(bits_equal(back->center.x, req.center.x));
    EXPECT_TRUE(bits_equal(back->center.y, req.center.y));
    EXPECT_TRUE(bits_equal(back->radius_m, req.radius_m));
  }
}

TEST(WpsQueryCodec, RequestRejectsGarbage) {
  EXPECT_FALSE(decode_request({}).has_value());
  std::vector<std::uint8_t> short_buf(10, 0);
  EXPECT_FALSE(decode_request(short_buf).has_value());
  std::vector<std::uint8_t> bad_op(kRequestPayloadBytes, 0);
  bad_op[0] = 9;
  EXPECT_FALSE(decode_request(bad_op).has_value());
}

TEST(WpsQueryCodec, EmptyResponseIsOneChunk) {
  const QueryResponse resp = make_response(QueryOp::kLookup, 0, 1);
  const auto frames = encode_response(resp, 7, 42);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].stream_id, 7u);
  EXPECT_EQ(frames[0].seq, 42u);
  ResponseAssembler assembler;
  const auto done = assembler.feed(frames[0]);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, 42u);
  const auto back = assembler.take(42);
  ASSERT_TRUE(back.has_value());
  expect_same_response(*back, resp);
}

TEST(WpsQueryCodec, LargeResponseSpansChunksAndReassemblesOutOfOrder) {
  const QueryResponse resp = make_response(QueryOp::kRange, 47, 2);
  auto frames = encode_response(resp, 1, 9);
  ASSERT_EQ(frames.size(), (47 + kMaxRecordsPerChunk - 1) / kMaxRecordsPerChunk);
  for (const auto& f : frames) {
    EXPECT_LE(f.payload.size(), net::kMaxWirePayloadBytes);
  }
  std::reverse(frames.begin(), frames.end());
  ResponseAssembler assembler;
  std::optional<std::uint64_t> done;
  for (const auto& f : frames) {
    EXPECT_FALSE(done.has_value());
    done = assembler.feed(f);
  }
  ASSERT_TRUE(done.has_value());
  const auto back = assembler.take(*done);
  ASSERT_TRUE(back.has_value());
  expect_same_response(*back, resp);
  EXPECT_EQ(assembler.pending(), 0u);
}

TEST(WpsQueryCodec, InterleavedResponsesKeyBySeq) {
  const QueryResponse r1 = make_response(QueryOp::kNearest, 20, 3);
  const QueryResponse r2 = make_response(QueryOp::kRange, 31, 4);
  const auto f1 = encode_response(r1, 5, 100);
  const auto f2 = encode_response(r2, 5, 101);
  ResponseAssembler assembler;
  for (std::size_t i = 0; i < std::max(f1.size(), f2.size()); ++i) {
    if (i < f1.size()) assembler.feed(f1[i]);
    if (i < f2.size()) assembler.feed(f2[i]);
  }
  const auto b1 = assembler.take(100);
  const auto b2 = assembler.take(101);
  ASSERT_TRUE(b1.has_value());
  ASSERT_TRUE(b2.has_value());
  expect_same_response(*b1, r1);
  expect_same_response(*b2, r2);
}

TEST(WpsQueryCodec, DuplicateAndDamagedChunksAreCounted) {
  const QueryResponse resp = make_response(QueryOp::kRange, 40, 5);
  const auto frames = encode_response(resp, 2, 77);
  ASSERT_GE(frames.size(), 2u);
  ResponseAssembler assembler;
  assembler.feed(frames[0]);
  assembler.feed(frames[0]);  // duplicate
  EXPECT_EQ(assembler.chunks_rejected(), 1u);

  net::WireFrame torn = frames[1];
  torn.payload.resize(torn.payload.size() - 7);  // count no longer matches
  assembler.feed(torn);
  EXPECT_EQ(assembler.chunks_rejected(), 2u);

  // The pristine copies still complete the response.
  std::optional<std::uint64_t> done;
  for (std::size_t i = 1; i < frames.size(); ++i) done = assembler.feed(frames[i]);
  ASSERT_TRUE(done.has_value());
  const auto back = assembler.take(77);
  ASSERT_TRUE(back.has_value());
  expect_same_response(*back, resp);
}

// The Aegis downlink regime: a lossy link both duplicates and reorders
// response chunks arbitrarily. Whatever storm arrives, reassembly must stay
// bit-exact and every redundant copy must be counted, not applied.
TEST(WpsQueryCodec, ShuffledDuplicateStormReassemblesBitExact) {
  const QueryResponse resp = make_response(QueryOp::kRange, 58, 8);
  const auto frames = encode_response(resp, 3, 500);
  ASSERT_GE(frames.size(), 4u);

  // Every chunk twice, then a seeded shuffle: worst-case dup + reorder.
  std::vector<net::WireFrame> storm;
  for (const auto& f : frames) {
    storm.push_back(f);
    storm.push_back(f);
  }
  util::Rng rng(0xd0b1e);
  for (std::size_t i = storm.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(storm[i - 1], storm[j]);
  }

  ResponseAssembler assembler;
  std::optional<std::uint64_t> done;
  for (const auto& f : storm) {
    if (const auto seq = assembler.feed(f)) done = seq;
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, 500u);
  // Exactly one copy of each chunk was applied; the rest were rejected
  // (duplicates of pending chunks, or chunks for an already-complete seq).
  EXPECT_EQ(assembler.chunks_rejected(), frames.size());
  const auto back = assembler.take(500);
  ASSERT_TRUE(back.has_value());
  expect_same_response(*back, resp);
  EXPECT_EQ(assembler.pending(), 0u);
}

TEST(WpsQueryCodec, LateDuplicatesAfterTakeAreHarmless) {
  const QueryResponse resp = make_response(QueryOp::kNearest, 25, 9);
  const auto frames = encode_response(resp, 4, 600);
  ResponseAssembler assembler;
  for (const auto& f : frames) assembler.feed(f);
  ASSERT_TRUE(assembler.take(600).has_value());

  // A straggler retransmit of an already-taken response starts a fresh
  // partial assembly (the seq is unknown again) — it must never crash or
  // fabricate a complete response from one chunk of many.
  const auto again = assembler.feed(frames[0]);
  if (frames.size() == 1) {
    EXPECT_TRUE(again.has_value());
  } else {
    EXPECT_FALSE(again.has_value());
  }
}

TEST(WpsQueryCodec, RetryAfterStatusRoundTripsAndUnknownStatusRejected) {
  // kRetryAfter (the Aegis shed refusal) is a valid wire status...
  QueryResponse shed;
  shed.op = QueryOp::kNearest;
  shed.status = QueryStatus::kRetryAfter;
  const auto frames = encode_response(shed, 6, 700);
  ASSERT_EQ(frames.size(), 1u);
  ResponseAssembler assembler;
  const auto done = assembler.feed(frames[0]);
  ASSERT_TRUE(done.has_value());
  const auto back = assembler.take(700);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, QueryStatus::kRetryAfter);
  EXPECT_TRUE(back->aps.empty());

  // ...but one past the enum is still garbage and must be rejected.
  net::WireFrame bogus = frames[0];
  bogus.payload[1] = 3;  // status byte
  EXPECT_FALSE(assembler.feed(bogus).has_value());
  EXPECT_GE(assembler.chunks_rejected(), 1u);
}

TEST(WpsQueryCodec, ExecuteMatchesDirectServiceCalls) {
  marauder::ApDatabase db;
  util::Rng rng(6);
  for (int i = 0; i < 600; ++i) {
    marauder::KnownAp ap;
    ap.bssid = net80211::MacAddress::from_u64(0x02aa00000000ULL + static_cast<unsigned>(i));
    ap.position = {rng.uniform(-2000.0, 2000.0), rng.uniform(-2000.0, 2000.0)};
    db.add(std::move(ap));
  }
  const fs::path path = fs::temp_directory_path() / "mm_wps_codec_exec.wps";
  SnapshotBuildOptions build;
  build.fsync = false;
  ASSERT_TRUE(write_snapshot(db, geo::Geodetic{}, path, build).ok());
  auto opened = Service::open(path);
  ASSERT_TRUE(opened.ok());
  const Service service = std::move(opened).value();

  QueryRequest lookup;
  lookup.op = QueryOp::kLookup;
  lookup.bssid = 0x02aa00000007ULL;
  const QueryResponse lr = execute_query(service, lookup);
  EXPECT_EQ(lr.status, QueryStatus::kOk);
  ASSERT_EQ(lr.aps.size(), 1u);
  EXPECT_EQ(lr.aps[0].bssid.to_u64(), lookup.bssid);

  QueryRequest nearest;
  nearest.op = QueryOp::kNearest;
  nearest.k = 12;
  nearest.center = {10.0, -20.0};
  const QueryResponse nr = execute_query(service, nearest);
  const auto oracle_n = service.nearest_k(nearest.center, nearest.k);
  ASSERT_EQ(nr.aps.size(), oracle_n.size());
  for (std::size_t i = 0; i < nr.aps.size(); ++i) {
    EXPECT_EQ(nr.aps[i].bssid, oracle_n[i].bssid);
  }

  QueryRequest range;
  range.op = QueryOp::kRange;
  range.center = {0.0, 0.0};
  range.radius_m = 700.0;
  const QueryResponse rr = execute_query(service, range);
  const auto oracle_r = service.range(range.center, range.radius_m);
  ASSERT_EQ(rr.aps.size(), oracle_r.size());

  // Round-trip the big range response through the wire and compare bits.
  const auto frames = encode_response(rr, 3, 1);
  ResponseAssembler assembler;
  std::optional<std::uint64_t> done;
  for (const auto& f : frames) done = assembler.feed(f);
  ASSERT_TRUE(done.has_value());
  const auto back = assembler.take(1);
  ASSERT_TRUE(back.has_value());
  expect_same_response(*back, rr);

  QueryRequest bad;
  bad.op = QueryOp::kNearest;
  bad.k = 0;
  EXPECT_EQ(execute_query(service, bad).status, QueryStatus::kBadRequest);
  bad.op = QueryOp::kRange;
  bad.radius_m = -1.0;
  EXPECT_EQ(execute_query(service, bad).status, QueryStatus::kBadRequest);
}

}  // namespace
}  // namespace mm::wps
