#include "rf/buildings.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/scenario.h"

namespace mm::rf {
namespace {

Building box(double x0, double y0, double x1, double y1, double loss = 6.0) {
  return {{x0, y0}, {x1, y1}, loss};
}

TEST(Buildings, InvalidCornersThrow) {
  BuildingMap map;
  EXPECT_THROW(map.add(box(10.0, 0.0, 0.0, 10.0)), std::invalid_argument);
}

TEST(Buildings, ContainsChecksBounds) {
  const Building b = box(0.0, 0.0, 10.0, 10.0);
  EXPECT_TRUE(b.contains({5.0, 5.0}));
  EXPECT_TRUE(b.contains({0.0, 0.0}));  // boundary counts as inside
  EXPECT_FALSE(b.contains({-0.1, 5.0}));
  EXPECT_FALSE(b.contains({5.0, 10.1}));
}

TEST(Buildings, PassThroughCrossesTwoWalls) {
  const Building b = box(10.0, -5.0, 20.0, 5.0);
  EXPECT_EQ(BuildingMap::walls_crossed(b, {0.0, 0.0}, {30.0, 0.0}), 2);
}

TEST(Buildings, MissCrossesZeroWalls) {
  const Building b = box(10.0, -5.0, 20.0, 5.0);
  EXPECT_EQ(BuildingMap::walls_crossed(b, {0.0, 10.0}, {30.0, 10.0}), 0);
  EXPECT_EQ(BuildingMap::walls_crossed(b, {0.0, 0.0}, {5.0, 0.0}), 0);  // stops short
}

TEST(Buildings, EndpointInsideCrossesOneWall) {
  const Building b = box(10.0, -5.0, 20.0, 5.0);
  EXPECT_EQ(BuildingMap::walls_crossed(b, {15.0, 0.0}, {30.0, 0.0}), 1);
  EXPECT_EQ(BuildingMap::walls_crossed(b, {0.0, 0.0}, {15.0, 0.0}), 1);
}

TEST(Buildings, BothInsideCrossesNoWalls) {
  const Building b = box(0.0, 0.0, 20.0, 20.0);
  EXPECT_EQ(BuildingMap::walls_crossed(b, {2.0, 2.0}, {18.0, 18.0}), 0);
}

TEST(Buildings, DiagonalPassThrough) {
  const Building b = box(-5.0, -5.0, 5.0, 5.0);
  EXPECT_EQ(BuildingMap::walls_crossed(b, {-10.0, -10.0}, {10.0, 10.0}), 2);
}

TEST(Buildings, PenetrationLossSumsAcrossBuildings) {
  BuildingMap map;
  map.add(box(10.0, -5.0, 20.0, 5.0, 6.0));
  map.add(box(30.0, -5.0, 40.0, 5.0, 4.0));
  // Path crosses both buildings: 2*6 + 2*4 = 20 dB.
  EXPECT_DOUBLE_EQ(map.penetration_loss_db({0.0, 0.0}, {50.0, 0.0}), 20.0);
  // Path over the top of both: 0 dB.
  EXPECT_DOUBLE_EQ(map.penetration_loss_db({0.0, 20.0}, {50.0, 20.0}), 0.0);
}

TEST(Buildings, UrbanModelAddsLossOnlyThroughWalls) {
  auto base = std::make_shared<FreeSpaceModel>();
  auto buildings = std::make_shared<BuildingMap>();
  buildings->add(box(40.0, -10.0, 60.0, 10.0, 8.0));
  const UrbanModel urban(base, buildings);
  const double blocked = urban.path_loss_db({0.0, 0.0}, 2.0, {100.0, 0.0}, 2.0, 2437.0);
  const double clear = urban.path_loss_db({0.0, 50.0}, 2.0, {100.0, 50.0}, 2.0, 2437.0);
  EXPECT_NEAR(blocked - clear, 16.0, 1e-9);  // two 8 dB walls
}

TEST(Buildings, UrbanModelNullArgsThrow) {
  auto base = std::make_shared<FreeSpaceModel>();
  auto buildings = std::make_shared<BuildingMap>();
  EXPECT_THROW(UrbanModel(nullptr, buildings), std::invalid_argument);
  EXPECT_THROW(UrbanModel(base, nullptr), std::invalid_argument);
}

TEST(Buildings, CampusLayoutProvidesBuildings) {
  sim::CampusConfig cfg;
  cfg.num_buildings = 9;
  const sim::CampusLayout layout = sim::generate_campus(cfg);
  EXPECT_EQ(layout.buildings.size(), 9u);
  EXPECT_EQ(layout.aps.size(), cfg.num_aps);
  // Same seed, same APs as the APs-only generator.
  const auto aps_only = sim::generate_campus_aps(cfg);
  ASSERT_EQ(layout.aps.size(), aps_only.size());
  for (std::size_t i = 0; i < aps_only.size(); ++i) {
    EXPECT_EQ(layout.aps[i].bssid, aps_only[i].bssid);
    EXPECT_EQ(layout.aps[i].position, aps_only[i].position);
  }
  // Clustered APs mostly sit inside (or near) some building footprint.
  std::size_t inside = 0;
  for (const auto& ap : layout.aps) {
    for (const auto& b : layout.buildings) {
      if (b.contains(ap.position)) {
        ++inside;
        break;
      }
    }
  }
  EXPECT_GT(inside, layout.aps.size() / 3);
}

}  // namespace
}  // namespace mm::rf
