// Faultline soak harness: drive the full capture -> persistence -> replay ->
// localization pipeline under swept fault rates and assert the robustness
// contract end to end — no crashes at any rate, quarantine ledgers that are
// consistent and monotone in the injected damage, crash-safe persistence,
// and bounded accuracy degradation at realistic damage levels (median M-Loc
// error within 2x of the clean run at 1% frame corruption, same seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <vector>

#include "capture/persistence.h"
#include "capture/replay.h"
#include "capture/sniffer.h"
#include "marauder/tracker.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"

namespace mm {
namespace {

struct SoakScenario {
  std::vector<sim::ApTruth> truth;
  std::vector<net80211::MacAddress> victims;
  std::vector<geo::Vec2> positions;
};

SoakScenario make_scenario() {
  SoakScenario s;
  sim::CampusConfig campus;
  campus.seed = 909;
  campus.num_aps = 110;
  campus.half_extent_m = 260.0;
  s.truth = sim::generate_campus_aps(campus);
  s.positions = {{60.0, -40.0}, {-80.0, 30.0}, {10.0, 90.0},
                 {-50.0, -70.0}, {100.0, 20.0}, {0.0, 0.0}};
  for (std::size_t i = 0; i < s.positions.size(); ++i) {
    std::array<std::uint8_t, 6> bytes{0x00, 0x16, 0x6f, 0x00, 0x01,
                                      static_cast<std::uint8_t>(i + 1)};
    s.victims.emplace_back(bytes);
  }
  return s;
}

struct SoakRun {
  capture::SnifferStats sniffer;
  fault::FaultStats faults;
  std::size_t located = 0;
  double median_error_m = 0.0;
  std::filesystem::path pcap_path;
};

/// One full capture + localization pass under `plan`. Never throws: any
/// crash here is a soak failure by itself.
SoakRun run_capture(const SoakScenario& s, const fault::FaultPlan& plan,
                    const char* pcap_name = nullptr) {
  sim::World world({.seed = 13, .propagation = nullptr});
  sim::populate_world(world, s.truth, /*beacons_enabled=*/false);

  std::vector<sim::MobileDevice*> devices;
  for (std::size_t i = 0; i < s.victims.size(); ++i) {
    sim::MobileConfig mc;
    mc.mac = s.victims[i];
    mc.profile.probes = false;
    mc.mobility = std::make_shared<sim::StaticPosition>(s.positions[i]);
    devices.push_back(world.add_mobile(std::make_unique<sim::MobileDevice>(mc)));
  }

  capture::ObservationStore store;
  capture::SnifferConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.antenna_height_m = 20.0;
  cfg.fault_plan = plan;
  if (pcap_name != nullptr) {
    cfg.pcap_path = std::filesystem::temp_directory_path() / pcap_name;
  }
  SoakRun run;
  {
    capture::Sniffer sniffer(cfg, &store);
    sniffer.attach(world);
    for (std::size_t i = 0; i < devices.size(); ++i) {
      sim::MobileDevice* dev = devices[i];
      world.queue().schedule(1.0 + 0.5 * static_cast<double>(i),
                             [dev] { dev->trigger_scan(); });
    }
    world.run_until(6.0);
    run.sniffer = sniffer.stats();
    run.faults = sniffer.fault_stats();
  }
  if (cfg.pcap_path) run.pcap_path = *cfg.pcap_path;

  marauder::TrackerOptions options;
  options.algorithm = marauder::Algorithm::kMLoc;
  options.mloc.reject_outliers = true;
  marauder::Tracker tracker(marauder::ApDatabase::from_truth(s.truth, true), options);
  tracker.prepare(store);

  std::vector<double> errors;
  for (std::size_t i = 0; i < s.victims.size(); ++i) {
    const auto result = tracker.locate(store, s.victims[i]);
    if (!result.ok) continue;
    ++run.located;
    errors.push_back(result.estimate.distance_to(s.positions[i]));
  }
  if (!errors.empty()) {
    std::sort(errors.begin(), errors.end());
    run.median_error_m = errors[errors.size() / 2];
  }
  return run;
}

TEST(FaultSoak, PerFrameFaultSweepNeverCrashesAndCountsMonotone) {
  const SoakScenario s = make_scenario();
  struct Channel {
    const char* name;
    double fault::FaultPlan::* rate;
    std::uint64_t fault::FaultStats::* counter;
  };
  const std::vector<Channel> channels = {
      {"corrupt", &fault::FaultPlan::corrupt_rate, &fault::FaultStats::frames_corrupted},
      {"truncate", &fault::FaultPlan::truncate_rate, &fault::FaultStats::frames_truncated},
      {"drop", &fault::FaultPlan::drop_rate, &fault::FaultStats::frames_dropped},
      {"dup", &fault::FaultPlan::duplicate_rate, &fault::FaultStats::frames_duplicated},
  };
  const std::vector<double> rates = {0.01, 0.05, 0.25};

  for (const Channel& channel : channels) {
    std::uint64_t prev_count = 0;
    for (const double rate : rates) {
      fault::FaultPlan plan;
      plan.*channel.rate = rate;
      const SoakRun run = run_capture(s, plan);
      SCOPED_TRACE(std::string(channel.name) + " @ " + std::to_string(rate));

      // The injector saw every decoded frame.
      EXPECT_EQ(run.faults.frames_seen, run.sniffer.frames_decoded);
      // Same seed, higher rate: more damage. (Exact superset for drop/dup;
      // statistical — but deterministic per seed — for corrupt/truncate,
      // whose in-place damage consumes extra draws.)
      EXPECT_GE(run.faults.*channel.counter, prev_count);
      prev_count = run.faults.*channel.counter;
      // Quarantines never exceed the frames actually damaged.
      EXPECT_LE(run.sniffer.frames_quarantined,
                run.faults.frames_corrupted + run.faults.frames_truncated);
      // Ledger: drops and quarantines come out of the decoded budget, and
      // store deliveries never exceed what survived (each delivery bumps at
      // most one type counter; duplicates bump twice).
      EXPECT_LE(run.faults.frames_dropped + run.sniffer.frames_quarantined,
                run.sniffer.frames_decoded);
      const std::uint64_t delivered = run.sniffer.probe_requests +
                                      run.sniffer.probe_responses + run.sniffer.beacons +
                                      run.sniffer.associations + run.sniffer.data_frames;
      EXPECT_LE(delivered, run.sniffer.frames_decoded - run.faults.frames_dropped -
                               run.sniffer.frames_quarantined +
                               run.sniffer.frames_fault_duplicated);
      EXPECT_GT(delivered, 0u);
      // The attack still runs at every rate.
      EXPECT_GE(run.located, 1u);
    }
  }
}

TEST(FaultSoak, NicDropoutSweepDegradesGracefully) {
  const SoakScenario s = make_scenario();
  for (const double rate : {0.3, 0.6, 0.9}) {
    fault::FaultPlan plan;
    plan.nic_dropout_rate = rate;
    plan.nic_dropout_mean_s = 2.0;
    const SoakRun run = run_capture(s, plan);
    SCOPED_TRACE("nic-dropout @ " + std::to_string(rate));
    EXPECT_GT(run.sniffer.card_down_skips, 0u);
    EXPECT_EQ(run.sniffer.frames_quarantined, 0u);  // dropout loses, never mangles
  }
}

TEST(FaultSoak, ClockFaultsShiftTimestampsOnly) {
  const SoakScenario s = make_scenario();
  const SoakRun clean = run_capture(s, {});
  // Skews stay below the first scan time so no timestamp goes negative and
  // out of the default observation window.
  for (const double skew : {0.05, 0.2, 0.5}) {
    fault::FaultPlan plan;
    plan.clock_skew_max_s = skew;
    plan.clock_drift_max_ppm = 50.0;
    const SoakRun run = run_capture(s, plan);
    SCOPED_TRACE("skew @ " + std::to_string(skew));
    // Clock faults reorder/retime evidence but never destroy it.
    EXPECT_EQ(run.sniffer.frames_decoded, clean.sniffer.frames_decoded);
    EXPECT_EQ(run.sniffer.frames_quarantined, 0u);
    EXPECT_EQ(run.located, clean.located);
  }
}

// The headline acceptance bound: at 1% frame corruption the attack's median
// error stays within 2x of the clean run with the same scenario seed.
TEST(FaultSoak, MedianErrorBoundedAtOnePercentCorruption) {
  const SoakScenario s = make_scenario();
  const SoakRun clean = run_capture(s, {});
  ASSERT_GE(clean.located, s.victims.size() - 1);
  ASSERT_GT(clean.median_error_m, 0.0);

  fault::FaultPlan plan;
  plan.corrupt_rate = 0.01;
  const SoakRun damaged = run_capture(s, plan);
  EXPECT_GE(damaged.located, clean.located - 1);
  // +1 m absolute slack keeps the 2x ratio meaningful if the clean median
  // is sub-meter.
  EXPECT_LE(damaged.median_error_m, 2.0 * clean.median_error_m + 1.0)
      << "clean " << clean.median_error_m << " m vs damaged " << damaged.median_error_m
      << " m";
}

TEST(FaultSoak, ReplaySweepQuarantinesWithoutCrashing) {
  const SoakScenario s = make_scenario();
  const SoakRun clean = run_capture(s, {}, "mm_soak_replay.pcap");
  ASSERT_FALSE(clean.pcap_path.empty());

  for (const char* key : {"corrupt", "truncate", "drop"}) {
    std::uint64_t prev_damage = 0;
    for (const double rate : {0.02, 0.1, 0.4}) {
      const auto plan =
          fault::FaultPlan::parse(std::string(key) + "=" + std::to_string(rate));
      ASSERT_TRUE(plan.ok()) << plan.error();
      capture::ReplayOptions options;
      options.fault_plan = plan.value();
      capture::ObservationStore store;
      const auto replayed = capture::replay_pcap(clean.pcap_path, store, options);
      SCOPED_TRACE(std::string(key) + " @ " + std::to_string(rate));
      ASSERT_TRUE(replayed.ok()) << replayed.error();
      const capture::ReplayStats& stats = replayed.value();
      EXPECT_EQ(stats.faults.frames_seen, stats.records);
      EXPECT_LE(stats.malformed,
                stats.faults.frames_corrupted + stats.faults.frames_truncated);
      const std::uint64_t damage = stats.faults.frames_corrupted +
                                   stats.faults.frames_truncated +
                                   stats.faults.frames_dropped;
      EXPECT_GE(damage, prev_damage);  // same seed, higher rate
      prev_damage = damage;
    }
  }
  std::filesystem::remove(clean.pcap_path);
}

// Crash-safe persistence under repeated torn writes: the previous snapshot
// survives every failed save, and a retry eventually lands the new one.
TEST(FaultSoak, TornWriteSoakNeverLosesPreviousSnapshot) {
  const auto path = std::filesystem::temp_directory_path() / "mm_soak_obs.csv";
  const SoakScenario s = make_scenario();
  capture::ObservationStore store;
  store.record_probe_request(s.victims[0], 1.0, std::string("SoakNet"));
  ASSERT_TRUE(capture::save_observations(store, path).ok());
  const auto baseline = capture::load_observations(path);
  ASSERT_TRUE(baseline.ok());
  const std::size_t baseline_devices = baseline.value().store.device_count();

  fault::FaultPlan plan;
  plan.torn_write_rate = 0.7;
  plan.seed = 2027;
  fault::FaultInjector injector(plan);
  capture::SaveOptions options;
  options.injector = &injector;
  options.backoff_s = 0.0;
  options.max_attempts = 1;  // one attempt per call, so failures == tears

  store.record_probe_request(s.victims[1], 2.0, std::string("SoakNet2"));
  int failures = 0;
  bool landed = false;
  for (int attempt = 0; attempt < 64 && !landed; ++attempt) {
    const auto saved = capture::save_observations(store, path, options);
    if (saved.ok()) {
      landed = true;
      break;
    }
    ++failures;
    // After every torn write the destination must still load cleanly with
    // at least the baseline evidence.
    const auto loaded = capture::load_observations(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error();
    EXPECT_EQ(loaded.value().stats.quarantined, 0u);
    EXPECT_GE(loaded.value().store.device_count(), baseline_devices);
  }
  EXPECT_TRUE(landed) << "no save landed in 64 attempts at torn=0.7";
  EXPECT_GT(failures, 0) << "torn=0.7 never fired; injector miswired?";
  EXPECT_EQ(injector.stats().files_torn, static_cast<std::uint64_t>(failures));
  const auto final_load = capture::load_observations(path);
  ASSERT_TRUE(final_load.ok());
  EXPECT_EQ(final_load.value().store.device_count(), 2u);
  std::filesystem::remove(path);
  std::filesystem::remove(path.string() + ".tmp");
}

// Everything at once: a hostile transport with every fault class active, at
// three escalating severities. The pipeline must stay up and keep producing
// estimates from whatever evidence survives.
TEST(FaultSoak, CombinedPlanEndToEnd) {
  const SoakScenario s = make_scenario();
  for (const double severity : {0.01, 0.05, 0.15}) {
    fault::FaultPlan plan;
    plan.corrupt_rate = severity;
    plan.truncate_rate = severity / 2.0;
    plan.drop_rate = severity / 2.0;
    plan.duplicate_rate = severity / 4.0;
    plan.nic_dropout_rate = severity;
    plan.nic_dropout_mean_s = 2.0;
    plan.clock_skew_max_s = 0.2;
    plan.clock_drift_max_ppm = 20.0;
    const SoakRun run = run_capture(s, plan);
    SCOPED_TRACE("severity " + std::to_string(severity));
    EXPECT_GT(run.sniffer.frames_decoded, 0u);
    EXPECT_GE(run.located, 1u);
    EXPECT_LE(run.sniffer.frames_quarantined,
              run.faults.frames_corrupted + run.faults.frames_truncated);
  }
}

}  // namespace
}  // namespace mm
