#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace mm::lp {
namespace {

TEST(Simplex, TrivialSingleVariable) {
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  lp.add_upper_bound(0, 5.0);
  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal()) << to_string(s.status);
  EXPECT_NEAR(s.values[0], 5.0, 1e-7);
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
}

TEST(Simplex, ClassicTwoVariableMax) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, z=36.
  LinearProgram lp(2);
  lp.set_objective(0, 3.0);
  lp.set_objective(1, 5.0);
  lp.add_constraint({{{0, 1.0}}, Relation::kLessEqual, 4.0});
  lp.add_constraint({{{1, 2.0}}, Relation::kLessEqual, 12.0});
  lp.add_constraint({{{0, 3.0}, {1, 2.0}}, Relation::kLessEqual, 18.0});
  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 2.0, 1e-7);
  EXPECT_NEAR(s.values[1], 6.0, 1e-7);
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
}

TEST(Simplex, GreaterEqualNeedsPhase1) {
  // max x s.t. x >= 2, x <= 7.
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({{{0, 1.0}}, Relation::kGreaterEqual, 2.0});
  lp.add_upper_bound(0, 7.0);
  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 7.0, 1e-7);
}

TEST(Simplex, MinimizationViaNegativeObjective) {
  // minimize x + y s.t. x + y >= 3  == max -(x+y); expect x + y = 3.
  LinearProgram lp(2);
  lp.set_objective(0, -1.0);
  lp.set_objective(1, -1.0);
  lp.add_constraint({{{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 3.0});
  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0] + s.values[1], 3.0, 1e-7);
  EXPECT_NEAR(s.objective, -3.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // max x + 2y s.t. x + y = 4, y <= 3 => y=3, x=1, z=7.
  LinearProgram lp(2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 2.0);
  lp.add_constraint({{{0, 1.0}, {1, 1.0}}, Relation::kEqual, 4.0});
  lp.add_upper_bound(1, 3.0);
  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 1.0, 1e-7);
  EXPECT_NEAR(s.values[1], 3.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({{{0, 1.0}}, Relation::kGreaterEqual, 5.0});
  lp.add_constraint({{{0, 1.0}}, Relation::kLessEqual, 2.0});
  EXPECT_EQ(lp.solve().status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({{{0, 1.0}}, Relation::kGreaterEqual, 1.0});
  EXPECT_EQ(lp.solve().status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // max x s.t. -x <= -2 (i.e., x >= 2), x <= 6.
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({{{0, -1.0}}, Relation::kLessEqual, -2.0});
  lp.add_upper_bound(0, 6.0);
  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 6.0, 1e-7);
}

TEST(Simplex, SoftConstraintSatisfiedWhenPossible) {
  // Soft x <= 5 does not bind when maximizing to the hard bound 4.
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  lp.add_upper_bound(0, 4.0);
  lp.add_constraint({{{0, 1.0}}, Relation::kLessEqual, 5.0, true, 100.0});
  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 4.0, 1e-7);
  EXPECT_NEAR(s.total_violation, 0.0, 1e-7);
}

TEST(Simplex, SoftConstraintViolatedUnderConflict) {
  // Hard x >= 6 conflicts with soft x <= 2: solver violates the soft row.
  LinearProgram lp(1);
  lp.set_objective(0, 0.0);
  lp.add_constraint({{{0, 1.0}}, Relation::kGreaterEqual, 6.0});
  lp.add_upper_bound(0, 10.0);
  const std::size_t soft_row =
      lp.add_constraint({{{0, 1.0}}, Relation::kLessEqual, 2.0, true, 50.0});
  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_GE(s.values[0], 6.0 - 1e-7);
  EXPECT_NEAR(s.violations[soft_row], s.values[0] - 2.0, 1e-6);
  EXPECT_GT(s.total_violation, 3.9);
}

TEST(Simplex, SoftPenaltyTradesOffAgainstObjective) {
  // max 10x with soft x <= 1 at penalty 3 and hard x <= 4: paying the
  // penalty (net +7/unit) is worth it, so x = 4.
  LinearProgram lp(1);
  lp.set_objective(0, 10.0);
  lp.add_upper_bound(0, 4.0);
  lp.add_constraint({{{0, 1.0}}, Relation::kLessEqual, 1.0, true, 3.0});
  const Solution cheap = lp.solve();
  ASSERT_TRUE(cheap.optimal());
  EXPECT_NEAR(cheap.values[0], 4.0, 1e-7);

  // With penalty 30 the violation dominates: x stays at 1.
  LinearProgram lp2(1);
  lp2.set_objective(0, 10.0);
  lp2.add_upper_bound(0, 4.0);
  lp2.add_constraint({{{0, 1.0}}, Relation::kLessEqual, 1.0, true, 30.0});
  const Solution costly = lp2.solve();
  ASSERT_TRUE(costly.optimal());
  EXPECT_NEAR(costly.values[0], 1.0, 1e-7);
}

TEST(Simplex, ApRadShapedProblem) {
  // Three APs on a line at 0, 10, 25. AP0/AP1 co-observed (r0+r1 >= 10);
  // AP1/AP2 never co-observed (r1+r2 <= 15); AP0/AP2 never (r0+r2 <= 25).
  // Maximize r0+r1+r2 with caps of 20 each.
  LinearProgram lp(3);
  for (std::size_t i = 0; i < 3; ++i) {
    lp.set_objective(i, 1.0);
    lp.add_upper_bound(i, 20.0);
  }
  lp.add_constraint({{{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 10.0});
  lp.add_constraint({{{1, 1.0}, {2, 1.0}}, Relation::kLessEqual, 15.0});
  lp.add_constraint({{{0, 1.0}, {2, 1.0}}, Relation::kLessEqual, 25.0});
  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal());
  // Optimum: r0 = 20 (cap), then r2 <= 5, and r1 <= 15 - r2;
  // r1 + r2 = 15 at the boundary. Objective = 35.
  EXPECT_NEAR(s.objective, 35.0, 1e-6);
  EXPECT_GE(s.values[0] + s.values[1], 10.0 - 1e-6);
  EXPECT_LE(s.values[1] + s.values[2], 15.0 + 1e-6);
  EXPECT_LE(s.values[0] + s.values[2], 25.0 + 1e-6);
}

TEST(Simplex, BadVariableIndexThrows) {
  LinearProgram lp(2);
  EXPECT_THROW(lp.add_constraint({{{5, 1.0}}, Relation::kLessEqual, 1.0}),
               std::out_of_range);
  EXPECT_THROW(lp.add_upper_bound(2, 1.0), std::out_of_range);
  EXPECT_THROW(lp.set_objective(7, 1.0), std::out_of_range);
}

TEST(Simplex, StatusNames) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
}

// Property sweep: random bounded 2-variable LPs; simplex must (a) report
// optimal, (b) return a feasible point, (c) not be beaten by any point of a
// fine grid over the box.
class RandomLpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLpTest, SimplexBeatsGridSearch) {
  util::Rng rng(GetParam());
  LinearProgram lp(2);
  const double c0 = rng.uniform(0.1, 3.0);
  const double c1 = rng.uniform(0.1, 3.0);
  lp.set_objective(0, c0);
  lp.set_objective(1, c1);
  const double box = 10.0;
  lp.add_upper_bound(0, box);
  lp.add_upper_bound(1, box);

  struct Row {
    double a0, a1, b;
  };
  std::vector<Row> row_list;
  for (int i = 0; i < 4; ++i) {
    // a0*x + a1*y <= b with positive coefficients keeps the LP bounded and
    // feasible (origin always satisfies it).
    Row row{rng.uniform(0.1, 2.0), rng.uniform(0.1, 2.0), rng.uniform(2.0, 15.0)};
    lp.add_constraint({{{0, row.a0}, {1, row.a1}}, Relation::kLessEqual, row.b});
    row_list.push_back(row);
  }

  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal());
  for (const Row& row : row_list) {
    EXPECT_LE(row.a0 * s.values[0] + row.a1 * s.values[1], row.b + 1e-6);
  }
  EXPECT_LE(s.values[0], box + 1e-6);
  EXPECT_LE(s.values[1], box + 1e-6);

  double best_grid = 0.0;
  const int kSteps = 200;
  for (int i = 0; i <= kSteps; ++i) {
    for (int j = 0; j <= kSteps; ++j) {
      const double x = box * i / kSteps;
      const double y = box * j / kSteps;
      bool feasible = true;
      for (const Row& row : row_list) {
        if (row.a0 * x + row.a1 * y > row.b + 1e-12) {
          feasible = false;
          break;
        }
      }
      if (feasible) best_grid = std::max(best_grid, c0 * x + c1 * y);
    }
  }
  EXPECT_GE(s.objective, best_grid - 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

// Beale's classic cycling example: Dantzig pricing cycles forever without
// an anti-cycling rule; the Bland fallback must terminate at the optimum
// (z = 0.05 for the minimization, i.e., -0.05 maximized... stated directly:
// max 0.75x1 - 150x2 + 0.02x3 - 6x4 with the standard Beale rows; optimum
// objective = 0.05).
TEST(Simplex, BealeCyclingExampleTerminates) {
  LinearProgram lp(4);
  lp.set_objective(0, 0.75);
  lp.set_objective(1, -150.0);
  lp.set_objective(2, 0.02);
  lp.set_objective(3, -6.0);
  lp.add_constraint({{{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, Relation::kLessEqual, 0.0});
  lp.add_constraint({{{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, Relation::kLessEqual, 0.0});
  lp.add_constraint({{{2, 1.0}}, Relation::kLessEqual, 1.0});
  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal()) << to_string(s.status);
  EXPECT_NEAR(s.objective, 0.05, 1e-9);
  EXPECT_NEAR(s.values[2], 1.0, 1e-9);
}

// Moderate-size stress: AP-Rad-like chain of constraints stays solvable.
TEST(Simplex, MediumScaleChain) {
  constexpr std::size_t kN = 60;
  LinearProgram lp(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    lp.set_objective(i, 1.0);
    lp.add_upper_bound(i, 100.0);
  }
  for (std::size_t i = 0; i + 1 < kN; ++i) {
    lp.add_constraint({{{i, 1.0}, {i + 1, 1.0}}, Relation::kGreaterEqual, 50.0});
    if (i + 2 < kN) {
      lp.add_constraint({{{i, 1.0}, {i + 2, 1.0}}, Relation::kLessEqual, 150.0, true, 10.0});
    }
  }
  const Solution s = lp.solve();
  ASSERT_TRUE(s.optimal());
  for (std::size_t i = 0; i + 1 < kN; ++i) {
    EXPECT_GE(s.values[i] + s.values[i + 1], 50.0 - 1e-6);
  }
}

}  // namespace
}  // namespace mm::lp
