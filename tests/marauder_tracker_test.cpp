// End-to-end integration: simulated campus -> probe traffic -> sniffer ->
// observation store -> tracker, for every localization algorithm. This is
// the full Fig 1 pipeline the paper's accuracy evaluation (Figs 13-16)
// exercises.
#include "marauder/tracker.h"

#include <gtest/gtest.h>

#include <memory>

#include "capture/sniffer.h"
#include "capture/wardrive.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"

namespace mm::marauder {
namespace {

const net80211::MacAddress kVictim = *net80211::MacAddress::parse("00:16:6f:00:00:42");

struct Pipeline {
  std::unique_ptr<sim::World> world;
  std::vector<sim::ApTruth> truth;
  capture::ObservationStore store;
  std::unique_ptr<capture::Sniffer> sniffer;
  sim::MobileDevice* victim = nullptr;
  std::vector<std::pair<double, geo::Vec2>> samples;  // (time, true position)
};

/// Builds a campus, walks the victim along a route, scanning at waypoints.
Pipeline run_campus_walk(std::uint64_t seed, std::size_t num_aps = 130) {
  Pipeline p;
  sim::CampusConfig campus;
  campus.seed = seed;
  campus.num_aps = num_aps;
  campus.half_extent_m = 350.0;
  // Uniform placement: these tests pin down pipeline mechanics and loose
  // accuracy bounds; the clustered-campus shape effects are covered by the
  // figure benches.
  campus.building_fraction = 0.0;
  p.truth = sim::generate_campus_aps(campus);

  p.world = std::make_unique<sim::World>(sim::World::Config{seed ^ 0xbeef, nullptr});
  sim::populate_world(*p.world, p.truth, /*beacons_enabled=*/false);

  const std::vector<geo::Vec2> route = sim::lawnmower_route(250.0, 3);
  auto mobility = std::make_shared<sim::RouteWalk>(route, 1.5);

  sim::MobileConfig mc;
  mc.mac = kVictim;
  mc.profile.probes = false;  // scans triggered at sample instants
  mc.mobility = mobility;
  p.victim = p.world->add_mobile(std::make_unique<sim::MobileDevice>(mc));

  capture::SnifferConfig sc;
  sc.position = {0.0, 0.0};
  sc.antenna_height_m = 20.0;
  p.sniffer = std::make_unique<capture::Sniffer>(sc, &p.store);
  p.sniffer->attach(*p.world);

  // Sample every 60 s of walking (~90 m apart).
  const double total = mobility->arrival_time();
  for (double t = 1.0; t < total; t += 60.0) {
    p.world->queue().schedule(t, [mobile = p.victim] { mobile->trigger_scan(); });
    p.samples.emplace_back(t, mobility->position(t));
  }
  p.world->run_until(total + 5.0);
  return p;
}

double mean_error(const Pipeline& p, Tracker& tracker) {
  tracker.prepare(p.store);
  double total = 0.0;
  int count = 0;
  for (const auto& [t, true_pos] : p.samples) {
    const capture::ObservationWindow window{t - 1.0, t + 5.0};
    const LocalizationResult r = tracker.locate(p.store, kVictim, window);
    if (!r.ok) continue;
    total += r.estimate.distance_to(true_pos);
    ++count;
  }
  EXPECT_GT(count, 10) << "too few localizable samples";
  return total / count;
}

TEST(TrackerEndToEnd, MLocBeatsCentroidAndIsAccurate) {
  const Pipeline p = run_campus_walk(101);

  Tracker mloc(ApDatabase::from_truth(p.truth, true), {.algorithm = Algorithm::kMLoc});
  Tracker centroid(ApDatabase::from_truth(p.truth, true),
                   {.algorithm = Algorithm::kCentroid});

  const double mloc_err = mean_error(p, mloc);
  const double centroid_err = mean_error(p, centroid);

  // Fig 13 shape: M-Loc ~9.4 m vs Centroid ~17.3 m on the paper's testbed.
  EXPECT_LT(mloc_err, 25.0);
  EXPECT_LT(mloc_err, centroid_err);
}

TEST(TrackerEndToEnd, ApRadWorksWithoutRadiusKnowledge) {
  const Pipeline p = run_campus_walk(202);

  Tracker aprad(ApDatabase::from_truth(p.truth, false), {.algorithm = Algorithm::kApRad});
  Tracker mloc(ApDatabase::from_truth(p.truth, true), {.algorithm = Algorithm::kMLoc});

  const double aprad_err = mean_error(p, aprad);
  const double mloc_err = mean_error(p, mloc);

  EXPECT_LT(aprad_err, 60.0);
  // Fig 13: M-Loc (with radius knowledge) beats AP-Rad.
  EXPECT_LT(mloc_err, aprad_err);
}

TEST(TrackerEndToEnd, NearestApCoarserThanMLoc) {
  const Pipeline p = run_campus_walk(303);
  Tracker nearest(ApDatabase::from_truth(p.truth, true),
                  {.algorithm = Algorithm::kNearestAp});
  Tracker mloc(ApDatabase::from_truth(p.truth, true), {.algorithm = Algorithm::kMLoc});
  EXPECT_LT(mean_error(p, mloc), mean_error(p, nearest));
}

TEST(TrackerEndToEnd, ApLocFromWardrivingTraining) {
  Pipeline p = run_campus_walk(404);

  // Training phase: wardrive the campus collecting tuples.
  capture::Wardriver driver;
  driver.attach(*p.world);
  const auto finish =
      driver.drive_route(sim::lawnmower_route(300.0, 4), 8.0, 60.0);
  p.world->run_until(finish + 2.0);
  ASSERT_GT(driver.tuples().size(), 20u);

  TrackerOptions options;
  options.algorithm = Algorithm::kApLoc;
  options.aploc.training_disc_radius_m = 160.0;
  options.aploc.aprad.max_radius_m = 200.0;
  Tracker aploc = Tracker::from_training(driver.tuples(), options);
  const double err = mean_error(p, aploc);
  // Fig 17: AP-Loc lands near 12 m with enough tuples; allow generous slack
  // for the simulated substrate.
  EXPECT_LT(err, 80.0);
}

TEST(TrackerEndToEnd, LocateAllCoversVictim) {
  const Pipeline p = run_campus_walk(505);
  Tracker tracker(ApDatabase::from_truth(p.truth, true), {.algorithm = Algorithm::kMLoc});
  const auto all = tracker.locate_all(p.store);
  EXPECT_EQ(all.count(kVictim), 1u);
}

TEST(Tracker, ApRadWithoutPrepareDegradesInsteadOfThrowing) {
  // Faultline convention: an unprepared AP-Rad tracker (no LP radii yet)
  // answers with the Theorem-1 radius cap and flags the result degraded —
  // it never throws.
  const Pipeline p = run_campus_walk(707);
  Tracker tracker(ApDatabase::from_truth(p.truth, false),
                  {.algorithm = Algorithm::kApRad});
  const auto& [t, true_pos] = p.samples[p.samples.size() / 2];
  const capture::ObservationWindow window{t - 1.0, t + 5.0};
  ASSERT_GE(p.store.gamma(kVictim, window).size(), 2u);

  const LocalizationResult unprepared = tracker.locate(p.store, kVictim, window);
  EXPECT_TRUE(unprepared.ok);
  EXPECT_TRUE(unprepared.degraded());
  EXPECT_EQ(unprepared.method, "AP-Rad");
  // Every disc carries the cap, not an estimated radius.
  for (const auto& disc : unprepared.discs) {
    EXPECT_DOUBLE_EQ(disc.radius, tracker.options().aprad.max_radius_m);
  }

  // After prepare() the same query answers from the LP radii: at least one
  // disc shrinks below the blanket cap.
  tracker.prepare(p.store);
  const LocalizationResult prepared = tracker.locate(p.store, kVictim, window);
  EXPECT_TRUE(prepared.ok);
  bool any_estimated = false;
  for (const auto& disc : prepared.discs) {
    if (disc.radius < tracker.options().aprad.max_radius_m) any_estimated = true;
  }
  EXPECT_TRUE(any_estimated);
}

TEST(Tracker, ApRadUnpreparedEmptyGammaStaysNotOk) {
  Tracker tracker(ApDatabase{}, {.algorithm = Algorithm::kApRad});
  const capture::ObservationStore store;
  const LocalizationResult result = tracker.locate(store, kVictim);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.degraded());
}

TEST(Tracker, ApLocConstructorRejected) {
  EXPECT_THROW(Tracker(ApDatabase{}, {.algorithm = Algorithm::kApLoc}),
               std::invalid_argument);
}

TEST(Tracker, AlgorithmNames) {
  EXPECT_STREQ(to_string(Algorithm::kMLoc), "M-Loc");
  EXPECT_STREQ(to_string(Algorithm::kApRad), "AP-Rad");
  EXPECT_STREQ(to_string(Algorithm::kApLoc), "AP-Loc");
  EXPECT_STREQ(to_string(Algorithm::kCentroid), "Centroid");
  EXPECT_STREQ(to_string(Algorithm::kNearestAp), "NearestAP");
  EXPECT_STREQ(to_string(Algorithm::kWeightedCentroid), "WeightedCentroid");
}

TEST(TrackerEndToEnd, WeightedCentroidWorksAndMLocBeatsIt) {
  const Pipeline p = run_campus_walk(707, 120);
  Tracker weighted(ApDatabase::from_truth(p.truth, true),
                   {.algorithm = Algorithm::kWeightedCentroid});
  Tracker mloc(ApDatabase::from_truth(p.truth, true), {.algorithm = Algorithm::kMLoc});
  const double weighted_err = mean_error(p, weighted);
  EXPECT_LT(weighted_err, 120.0);
  EXPECT_LT(mean_error(p, mloc), weighted_err);
}

TEST(Tracker, UnknownDeviceNotLocated) {
  const Pipeline p = run_campus_walk(606, 40);
  Tracker tracker(ApDatabase::from_truth(p.truth, true), {.algorithm = Algorithm::kMLoc});
  const auto ghost = *net80211::MacAddress::parse("00:00:00:00:99:99");
  EXPECT_FALSE(tracker.locate(p.store, ghost).ok);
}

}  // namespace
}  // namespace mm::marauder
