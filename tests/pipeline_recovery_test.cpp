// Phoenix crash recovery, end to end: a child process ingests a capture with
// durability on and _exit()s mid-ingest at a randomized offset (the hook
// fires between the WAL append of the previous event and the apply of the
// next — the worst places a crash can land). The parent then recovers from
// whatever the corpse left on disk — checkpoint + WAL tail, possibly with a
// torn segment — re-feeds the capture (the exactly-once cursor dedups the
// recovered prefix), and must end bit-for-bit equal to an uninterrupted run:
// same store slices, same published positions, clean or under a fault plan.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "capture/sniffer.h"
#include "durability/wal.h"
#include "marauder/ap_database.h"
#include "pipeline/live_feed.h"
#include "pipeline/live_tracker.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"

namespace mm::pipeline {
namespace {

namespace fs = std::filesystem;

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << a << " != " << b << " (bitwise)";
}

struct RecoveryScenario {
  std::vector<sim::ApTruth> truth;
  fs::path pcap_path;
};

/// Simulates a small campus capture (same shape as pipeline_live_test).
RecoveryScenario record_capture(const char* pcap_name) {
  RecoveryScenario s;
  sim::CampusConfig campus;
  campus.seed = 1337;
  campus.num_aps = 60;
  campus.half_extent_m = 200.0;
  s.truth = sim::generate_campus_aps(campus);

  sim::World world({.seed = 21, .propagation = nullptr});
  sim::populate_world(world, s.truth, /*beacons_enabled=*/true);

  const std::vector<geo::Vec2> positions = {
      {40.0, -20.0}, {-60.0, 30.0}, {10.0, 70.0}, {-30.0, -50.0}};
  std::vector<sim::MobileDevice*> devices;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    std::array<std::uint8_t, 6> bytes{0x00, 0x16, 0x6f, 0x00, 0x03,
                                      static_cast<std::uint8_t>(i + 1)};
    sim::MobileConfig mc;
    mc.mac = net80211::MacAddress(bytes);
    mc.mobility = std::make_shared<sim::StaticPosition>(positions[i]);
    devices.push_back(world.add_mobile(std::make_unique<sim::MobileDevice>(mc)));
  }

  capture::ObservationStore store;
  capture::SnifferConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.antenna_height_m = 20.0;
  cfg.pcap_path = fs::temp_directory_path() / pcap_name;
  {
    capture::Sniffer sniffer(cfg, &store);
    sniffer.attach(world);
    for (std::size_t i = 0; i < devices.size(); ++i) {
      sim::MobileDevice* dev = devices[i];
      world.queue().schedule(1.0 + 0.3 * static_cast<double>(i),
                             [dev] { dev->trigger_scan(); });
      world.queue().schedule(3.5 + 0.3 * static_cast<double>(i),
                             [dev] { dev->trigger_scan(); });
    }
    world.run_until(7.0);
  }
  s.pcap_path = *cfg.pcap_path;
  return s;
}

LiveTrackerConfig base_config(const fs::path& wal_dir) {
  LiveTrackerConfig config;
  config.shards = 4;
  config.ring_capacity = 1 << 10;
  config.drop_policy = DropPolicy::kBlock;  // lossless: equality must be exact
  config.durability.dir = wal_dir;
  config.durability.wal.commit_every_records = 4;
  config.durability.wal.fsync_on_commit = false;  // _exit keeps OS-buffered writes
  config.durability.checkpoint_interval_s = 0.0;  // checkpoints forced by tests
  config.durability.checkpoint_save.fsync = false;
  return config;
}

/// Runs the capture through a durable tracker to completion. The reference
/// every crashed-and-recovered run must match.
void run_uninterrupted(const RecoveryScenario& s, const fault::FaultPlan& plan,
                       LiveTracker& tracker) {
  tracker.start();
  LiveFeedOptions options;
  options.fault_plan = plan;
  const auto fed = feed_pcap(s.pcap_path, tracker, options);
  ASSERT_TRUE(fed.ok()) << fed.error();
  tracker.stop();
}

/// Forks a child that ingests with the same config but _exit(42)s when the
/// hook has seen `kill_after` events. Returns after reaping the child.
void crash_mid_ingest(const RecoveryScenario& s, const marauder::ApDatabase& db,
                      const fs::path& wal_dir, const fault::FaultPlan& plan,
                      std::uint64_t kill_after) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: no gtest assertions (they would confuse the parent's report) —
    // any outcome other than _exit(42) shows up as a wait-status mismatch.
    static std::atomic<std::uint64_t> seen{0};
    LiveTrackerConfig config = base_config(wal_dir);
    config.durability.checkpoint_interval_s = 0.001;  // checkpoint aggressively
    config.ingest_hook = [kill_after](std::size_t, const capture::FrameEvent&) {
      if (seen.fetch_add(1, std::memory_order_relaxed) + 1 == kill_after) {
        _exit(42);  // crash point: mid-event, WAL tail uncommitted
      }
    };
    LiveTracker tracker(db, config);
    tracker.start();
    LiveFeedOptions options;
    options.fault_plan = plan;
    (void)feed_pcap(s.pcap_path, tracker, options);
    tracker.stop();
    _exit(7);  // capture was shorter than kill_after — test bug
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42) << "child did not die at the crash point";
}

/// The headline assertion: identical store slices and published positions.
void expect_trackers_equal(LiveTracker& recovered, LiveTracker& reference) {
  ASSERT_EQ(recovered.shard_count(), reference.shard_count());
  for (std::size_t i = 0; i < reference.shard_count(); ++i) {
    SCOPED_TRACE("shard " + std::to_string(i));
    const auto& got = recovered.shard_store(i);
    const auto& want = reference.shard_store(i);
    ASSERT_EQ(got.device_count(), want.device_count());
    for (const auto& mac : want.devices()) {
      SCOPED_TRACE(mac.to_string());
      const capture::DeviceRecord* w = want.device(mac);
      const capture::DeviceRecord* g = got.device(mac);
      ASSERT_NE(g, nullptr);
      EXPECT_TRUE(bits_equal(g->first_seen, w->first_seen));
      EXPECT_TRUE(bits_equal(g->last_seen, w->last_seen));
      EXPECT_EQ(g->probe_requests, w->probe_requests);
      EXPECT_EQ(g->directed_ssids, w->directed_ssids);
      ASSERT_EQ(g->contacts.size(), w->contacts.size());
      for (const auto& [ap, contact] : w->contacts) {
        const auto it = g->contacts.find(ap);
        ASSERT_NE(it, g->contacts.end()) << ap.to_string();
        EXPECT_TRUE(bits_equal(it->second.first_seen, contact.first_seen));
        EXPECT_TRUE(bits_equal(it->second.last_seen, contact.last_seen));
        EXPECT_EQ(it->second.count, contact.count);
        EXPECT_TRUE(bits_equal(it->second.last_rssi_dbm, contact.last_rssi_dbm));
        EXPECT_EQ(it->second.times, contact.times);
      }
    }
    ASSERT_EQ(got.ap_sightings().size(), want.ap_sightings().size());
  }

  auto want_snapshot = reference.snapshot();
  auto got_snapshot = recovered.snapshot();
  ASSERT_EQ(got_snapshot.size(), want_snapshot.size());
  std::sort(want_snapshot.begin(), want_snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(got_snapshot.begin(), got_snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < want_snapshot.size(); ++i) {
    SCOPED_TRACE(want_snapshot[i].first.to_string());
    EXPECT_EQ(got_snapshot[i].first, want_snapshot[i].first);
    const LivePosition& w = want_snapshot[i].second;
    const LivePosition& g = got_snapshot[i].second;
    EXPECT_TRUE(bits_equal(g.x_m, w.x_m));
    EXPECT_TRUE(bits_equal(g.y_m, w.y_m));
    EXPECT_EQ(g.gamma_size, w.gamma_size);
    EXPECT_EQ(g.updates, w.updates);
    EXPECT_EQ(g.ok, w.ok);
    EXPECT_EQ(g.used_fallback, w.used_fallback);
    EXPECT_EQ(g.discs_rejected, w.discs_rejected);
  }
}

void crash_recover_compare(const RecoveryScenario& s, const marauder::ApDatabase& db,
                           const fault::FaultPlan& plan, std::uint64_t kill_after,
                           const char* tag, bool tear_wal_tail = false) {
  SCOPED_TRACE(std::string(tag) + " kill_after=" + std::to_string(kill_after));
  const fs::path ref_dir = fs::temp_directory_path() / (std::string(tag) + "_ref");
  const fs::path crash_dir = fs::temp_directory_path() / (std::string(tag) + "_crash");
  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
  fs::create_directories(ref_dir);
  fs::create_directories(crash_dir);

  LiveTracker reference(db, base_config(ref_dir));
  run_uninterrupted(s, plan, reference);

  crash_mid_ingest(s, db, crash_dir, plan, kill_after);

  if (tear_wal_tail) {
    // The crash also tore the newest WAL segment of shard 0 mid-record: the
    // torn records fall below the recovered high-water mark, so the re-feed
    // re-applies them and equality still holds.
    const fs::path shard0 = crash_dir / "shard-0";
    const auto segments = durability::list_wal_segments(shard0);
    if (!segments.empty()) {
      std::error_code ec;
      const auto size = fs::file_size(segments.back(), ec);
      if (!ec && size > 5) fs::resize_file(segments.back(), size - 5, ec);
    }
  }

  LiveTracker recovered(db, base_config(crash_dir));
  const auto stats = recovered.recover();
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_TRUE(stats.value().performed);
  // A deep crash must have left durable state behind (a very early one may
  // die before the first group commit or checkpoint — that is the point of
  // the early offset: recovery of an empty corpse must also be correct).
  if (kill_after >= 50) {
    EXPECT_GT(stats.value().max_applied_seq, 0u);
  }

  // The recovered prefix is real pre-crash state: every restored device must
  // exist in the reference with a bit-identical first sighting.
  for (std::size_t i = 0; i < recovered.shard_count(); ++i) {
    const auto& slice = recovered.shard_store(i);
    for (const auto& mac : slice.devices()) {
      const capture::DeviceRecord* w = reference.shard_store(i).device(mac);
      ASSERT_NE(w, nullptr) << mac.to_string() << " restored but never existed";
      EXPECT_TRUE(bits_equal(slice.device(mac)->first_seen, w->first_seen));
    }
  }

  // Re-feed the whole capture: the cursor skips everything already applied.
  recovered.start();
  LiveFeedOptions options;
  options.fault_plan = plan;
  const auto fed = feed_pcap(s.pcap_path, recovered, options);
  ASSERT_TRUE(fed.ok()) << fed.error();
  recovered.stop();

  const PipelineStats after = recovered.stats();
  std::uint64_t dedup_skipped = 0;
  for (const auto& shard : after.shards) dedup_skipped += shard.dedup_skipped;
  if (kill_after >= 50) {
    EXPECT_GT(dedup_skipped, 0u) << "recovery restored state but nothing deduped";
  }

  expect_trackers_equal(recovered, reference);

  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
}

TEST(PipelineRecovery, KillAtRandomOffsetsRecoversBitForBit) {
  const RecoveryScenario s = record_capture("mm_recovery_clean.pcap");
  const auto db = marauder::ApDatabase::from_truth(s.truth, true);
  // "Random" offsets, fixed for reproducibility: early (first commit group
  // not full), mid-stream, and deep (past several checkpoints).
  for (const std::uint64_t kill_after : {3u, 57u, 211u}) {
    crash_recover_compare(s, db, {}, kill_after, "mm_rec_clean");
  }
  fs::remove(s.pcap_path);
}

TEST(PipelineRecovery, CrashUnderAFaultPlanRecoversBitForBit) {
  const RecoveryScenario s = record_capture("mm_recovery_fault.pcap");
  const auto db = marauder::ApDatabase::from_truth(s.truth, true);
  fault::FaultPlan plan;
  plan.corrupt_rate = 0.05;
  plan.drop_rate = 0.02;
  plan.duplicate_rate = 0.02;
  plan.seed = 77;
  // The fault stream is deterministic, so the reference run and the child's
  // partial run damage the same frames and assign the same sequences.
  for (const std::uint64_t kill_after : {23u, 140u}) {
    crash_recover_compare(s, db, plan, kill_after, "mm_rec_fault");
  }
  fs::remove(s.pcap_path);
}

TEST(PipelineRecovery, TornWalTailStillRecoversBitForBit) {
  const RecoveryScenario s = record_capture("mm_recovery_torn.pcap");
  const auto db = marauder::ApDatabase::from_truth(s.truth, true);
  crash_recover_compare(s, db, {}, 90, "mm_rec_torn", /*tear_wal_tail=*/true);
  fs::remove(s.pcap_path);
}

TEST(PipelineRecovery, ColdDirectoryIsNotAnError) {
  const RecoveryScenario s = record_capture("mm_recovery_cold.pcap");
  const auto db = marauder::ApDatabase::from_truth(s.truth, true);
  const fs::path dir = fs::temp_directory_path() / "mm_rec_cold";
  fs::remove_all(dir);
  fs::create_directories(dir);
  LiveTracker tracker(db, base_config(dir));
  const auto stats = tracker.recover();
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats.value().checkpoints_loaded, 0u);
  EXPECT_EQ(stats.value().max_applied_seq, 0u);
  // And the engine still runs normally afterwards.
  tracker.start();
  const auto fed = feed_pcap(s.pcap_path, tracker);
  ASSERT_TRUE(fed.ok()) << fed.error();
  tracker.stop();
  EXPECT_GT(tracker.stats().total_frames, 0u);
  fs::remove_all(dir);
  fs::remove(s.pcap_path);
}

}  // namespace
}  // namespace mm::pipeline
