#include "marauder/trajectory.h"

#include <gtest/gtest.h>

#include <memory>

#include "capture/sniffer.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"

namespace mm::marauder {
namespace {

const net80211::MacAddress kVictim = *net80211::MacAddress::parse("00:16:6f:00:77:01");
const net80211::MacAddress kAlias = *net80211::MacAddress::parse("02:aa:00:00:77:02");

struct Scene {
  std::unique_ptr<sim::World> world;
  std::vector<sim::ApTruth> truth;
  capture::ObservationStore store;
  std::unique_ptr<capture::Sniffer> sniffer;
  std::shared_ptr<sim::RouteWalk> walk;
  sim::MobileDevice* victim = nullptr;
};

Scene make_scene(std::uint64_t seed) {
  Scene s;
  sim::CampusConfig campus;
  campus.seed = seed;
  campus.num_aps = 140;
  campus.half_extent_m = 300.0;
  s.truth = sim::generate_campus_aps(campus);
  s.world = std::make_unique<sim::World>(sim::World::Config{seed ^ 0x7, nullptr});
  sim::populate_world(*s.world, s.truth, false);

  s.walk = std::make_shared<sim::RouteWalk>(
      std::vector<geo::Vec2>{{-200.0, 0.0}, {200.0, 0.0}}, 2.0);
  sim::MobileConfig mc;
  mc.mac = kVictim;
  mc.profile.probes = false;
  mc.mobility = s.walk;
  s.victim = s.world->add_mobile(std::make_unique<sim::MobileDevice>(mc));

  capture::SnifferConfig sc;
  sc.position = {0.0, 100.0};
  sc.antenna_height_m = 20.0;
  s.sniffer = std::make_unique<capture::Sniffer>(sc, &s.store);
  s.sniffer->attach(*s.world);
  return s;
}

TEST(Trajectory, FollowsWalkingVictim) {
  Scene s = make_scene(71);
  for (double t = 1.0; t < s.walk->arrival_time(); t += 30.0) {
    s.world->queue().schedule(t, [v = s.victim] { v->trigger_scan(); });
  }
  s.world->run_until(s.walk->arrival_time() + 5.0);

  Tracker tracker(ApDatabase::from_truth(s.truth, true), {.algorithm = Algorithm::kMLoc});
  const net80211::MacAddress identity[] = {kVictim};
  const auto track = build_trajectory(tracker, s.store, identity);
  ASSERT_GE(track.size(), 5u);

  // Time-ordered, west-to-east movement, near the y=0 line.
  for (std::size_t i = 1; i < track.size(); ++i) {
    EXPECT_GT(track[i].time, track[i - 1].time);
  }
  EXPECT_LT(track.front().position.x, track.back().position.x - 100.0);
  for (const TrackPoint& p : track) {
    const geo::Vec2 true_pos = s.walk->position(p.time);
    EXPECT_LT(p.position.distance_to(true_pos), 60.0);
  }
  // Track length comparable to the 400 m walk (within loose factor).
  const double length = track_length_m(track);
  EXPECT_GT(length, 150.0);
  EXPECT_LT(length, 900.0);
}

TEST(Trajectory, SpansMacRotation) {
  Scene s = make_scene(72);
  // Victim scans twice, rotating its MAC in between.
  s.world->queue().schedule(1.0, [v = s.victim] { v->trigger_scan(); });
  s.world->queue().schedule(50.0, [v = s.victim] { v->rotate_mac(kAlias); });
  s.world->queue().schedule(60.0, [v = s.victim] { v->trigger_scan(); });
  s.world->run_until(70.0);

  Tracker tracker(ApDatabase::from_truth(s.truth, true), {.algorithm = Algorithm::kMLoc});
  // Without the alias: only the first burst.
  const net80211::MacAddress only_first[] = {kVictim};
  EXPECT_EQ(build_trajectory(tracker, s.store, only_first).size(), 1u);
  // With the linked identity: both bursts, one coherent track.
  const net80211::MacAddress linked[] = {kVictim, kAlias};
  const auto track = build_trajectory(tracker, s.store, linked);
  ASSERT_EQ(track.size(), 2u);
  EXPECT_EQ(track[0].mac, kVictim);
  EXPECT_EQ(track[1].mac, kAlias);
}

TEST(Trajectory, SpeedGateDropsImpossibleJump) {
  // Hand-craft a store with two bursts whose M-Loc estimates are far apart
  // in a very short time.
  capture::ObservationStore store;
  ApDatabase db;
  const auto ap_a = *net80211::MacAddress::parse("00:1a:2b:00:00:0a");
  const auto ap_b = *net80211::MacAddress::parse("00:1a:2b:00:00:0b");
  db.add({ap_a, "a", {0.0, 0.0}, 50.0});
  db.add({ap_b, "b", {1000.0, 0.0}, 50.0});
  store.record_contact(ap_a, kVictim, 1.0, -60.0);
  store.record_contact(ap_b, kVictim, 10.0, -60.0);  // 1000 m in 9 s

  Tracker tracker(std::move(db), {.algorithm = Algorithm::kMLoc});
  const net80211::MacAddress identity[] = {kVictim};
  TrajectoryOptions options;
  options.max_speed_mps = 12.0;
  EXPECT_EQ(build_trajectory(tracker, store, identity, options).size(), 1u);
  options.max_speed_mps = 0.0;  // gating disabled
  EXPECT_EQ(build_trajectory(tracker, store, identity, options).size(), 2u);
}

TEST(Trajectory, SmoothingReducesJitterButKeepsEndpoints) {
  capture::ObservationStore store;
  ApDatabase db;
  // One AP per burst so each estimate is that AP's position (nearest-AP
  // reduction) — gives a controllable zig-zag.
  std::vector<net80211::MacAddress> aps;
  const double xs[] = {0.0, 30.0, 10.0, 40.0, 20.0, 50.0};
  for (int i = 0; i < 6; ++i) {
    std::array<std::uint8_t, 6> bytes{0x00, 0x1a, 0x2b, 0x01, 0x00,
                                      static_cast<std::uint8_t>(i)};
    aps.emplace_back(bytes);
    db.add({aps.back(), "ap", {xs[i], 0.0}, 60.0});
    store.record_contact(aps.back(), kVictim, 10.0 * (i + 1), -60.0);
  }
  Tracker tracker(std::move(db), {.algorithm = Algorithm::kMLoc});
  const net80211::MacAddress identity[] = {kVictim};
  TrajectoryOptions raw_options;
  raw_options.max_speed_mps = 0.0;
  TrajectoryOptions smooth_options = raw_options;
  smooth_options.smoothing_span = 3;
  const auto raw = build_trajectory(tracker, store, identity, raw_options);
  const auto smooth = build_trajectory(tracker, store, identity, smooth_options);
  ASSERT_EQ(raw.size(), 6u);
  ASSERT_EQ(smooth.size(), 6u);
  EXPECT_LT(track_length_m(smooth), track_length_m(raw));
  // Raw positions preserved alongside the smoothed ones.
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(smooth[i].raw_position, raw[i].raw_position);
  }
}

TEST(Trajectory, EmptyIdentityYieldsEmptyTrack) {
  capture::ObservationStore store;
  Tracker tracker(ApDatabase{}, {.algorithm = Algorithm::kMLoc});
  EXPECT_TRUE(build_trajectory(tracker, store, {}).empty());
  EXPECT_DOUBLE_EQ(track_length_m({}), 0.0);
}

}  // namespace
}  // namespace mm::marauder
