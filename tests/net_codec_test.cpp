// Lattice wire codec + FEC + link simulator unit tests: framing round
// trips under any fragmentation, the decoder resynchronizes past damage,
// XOR parity recovers any single loss per block at every position, double
// losses are counted as gaps (never thrown), and the link simulator is
// deterministic under its plan + seed.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "durability/wal.h"
#include "net/fec.h"
#include "net/link_sim.h"
#include "net/wire_codec.h"
#include "util/rng.h"

namespace mm::net {
namespace {

capture::FrameEvent make_event(std::uint64_t seq) {
  capture::FrameEvent ev;
  ev.kind = capture::FrameEventKind::kContact;
  ev.stream_seq = seq;
  ev.device = net80211::MacAddress::from_u64(0x0016f0000000ULL + seq);
  ev.ap = net80211::MacAddress::from_u64(0x00215c000000ULL + (seq % 7));
  ev.time_s = static_cast<double>(seq) * 0.25;
  ev.rssi_dbm = -60.0 - static_cast<double>(seq % 30);
  ev.channel = static_cast<std::int16_t>(1 + (seq % 11));
  return ev;
}

bool events_equal(const capture::FrameEvent& a, const capture::FrameEvent& b) {
  return a.kind == b.kind && a.stream_seq == b.stream_seq && a.device == b.device &&
         a.ap == b.ap && a.time_s == b.time_s && a.rssi_dbm == b.rssi_dbm &&
         a.channel == b.channel && a.has_ssid == b.has_ssid && a.ssid_len == b.ssid_len &&
         std::memcmp(a.ssid, b.ssid, capture::FrameEvent::kMaxSsid) == 0;
}

/// Splits well-formed encoder output back into individual frames.
std::vector<std::vector<std::uint8_t>> split_frames(const std::vector<std::uint8_t>& wire) {
  std::vector<std::vector<std::uint8_t>> frames;
  std::size_t off = 0;
  while (off + kWireHeaderBytes <= wire.size()) {
    const std::size_t len = static_cast<std::size_t>(wire[off + 18]) |
                            (static_cast<std::size_t>(wire[off + 19]) << 8);
    const std::size_t frame_len = kWireHeaderBytes + len;
    frames.emplace_back(wire.begin() + static_cast<std::ptrdiff_t>(off),
                        wire.begin() + static_cast<std::ptrdiff_t>(off + frame_len));
    off += frame_len;
  }
  EXPECT_EQ(off, wire.size());
  return frames;
}

std::vector<std::uint8_t> encode_stream(std::size_t count, std::size_t block_k) {
  FecEncoder encoder(1, block_k);
  std::vector<std::uint8_t> wire;
  for (std::uint64_t seq = 1; seq <= count; ++seq) {
    encoder.push(seq, make_event(seq), wire);
  }
  encoder.flush(wire);
  return wire;
}

/// Drains decoder -> fec -> released events.
std::vector<capture::FrameEvent> decode_all(FecDecoder& fec, WireDecoder& wire,
                                            std::span<const std::uint8_t> bytes) {
  wire.feed(bytes);
  std::vector<capture::FrameEvent> out;
  WireFrame frame;
  while (wire.next(frame)) fec.push(frame);
  capture::FrameEvent ev;
  while (fec.next(ev)) out.push_back(ev);
  return out;
}

TEST(WireCodec, RoundTripsDataAndParityFrames) {
  WireFrame in;
  in.type = WireFrameType::kParity;
  in.stream_id = 42;
  in.seq = 9001;
  in.block_k = 8;
  in.payload.assign(77, 0xA5);
  std::vector<std::uint8_t> wire;
  append_wire_frame(in, wire);
  EXPECT_EQ(wire.size(), kWireHeaderBytes + 77);

  WireDecoder decoder;
  decoder.feed(wire);
  WireFrame out;
  ASSERT_TRUE(decoder.next(out));
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.stream_id, in.stream_id);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.block_k, in.block_k);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_FALSE(decoder.next(out));
  EXPECT_EQ(decoder.stats().resync_bytes, 0u);
}

TEST(WireCodec, ByteAtATimeFeedDecodesEveryFrame) {
  const std::vector<std::uint8_t> wire = encode_stream(20, 4);
  WireDecoder decoder;
  std::size_t frames = 0;
  WireFrame frame;
  for (const std::uint8_t byte : wire) {
    decoder.feed({&byte, 1});
    while (decoder.next(frame)) ++frames;
  }
  EXPECT_EQ(frames, 20u + 5u);  // 20 data + 5 parity blocks of 4
  EXPECT_EQ(decoder.stats().resync_bytes, 0u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireCodec, ResynchronizesPastGarbage) {
  WireFrame in;
  in.seq = 1;
  in.payload.assign(10, 0x42);
  std::vector<std::uint8_t> wire = {0xDE, 0xAD, 'M', 0xBE};  // garbage incl. a lone magic
  append_wire_frame(in, wire);
  wire.push_back('M');
  wire.push_back('L');  // truncated header start
  in.seq = 2;
  append_wire_frame(in, wire);

  WireDecoder decoder;
  decoder.feed(wire);
  WireFrame out;
  ASSERT_TRUE(decoder.next(out));
  EXPECT_EQ(out.seq, 1u);
  ASSERT_TRUE(decoder.next(out));
  EXPECT_EQ(out.seq, 2u);
  EXPECT_FALSE(decoder.next(out));
  EXPECT_GT(decoder.stats().resync_bytes, 0u);
}

TEST(WireCodec, CrcFlipRejectsFrameButNotItsNeighbours) {
  WireFrame in;
  in.seq = 1;
  in.payload.assign(16, 0x11);
  std::vector<std::uint8_t> wire;
  append_wire_frame(in, wire);
  const std::size_t second = wire.size();
  in.seq = 2;
  append_wire_frame(in, wire);
  in.seq = 3;
  append_wire_frame(in, wire);
  wire[second + kWireHeaderBytes + 3] ^= 0x01;  // flip one payload bit of frame 2

  WireDecoder decoder;
  decoder.feed(wire);
  WireFrame out;
  std::vector<std::uint64_t> seqs;
  while (decoder.next(out)) seqs.push_back(out.seq);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_GE(decoder.stats().crc_failures, 1u);
  EXPECT_GT(decoder.stats().resync_bytes, 0u);
}

TEST(WireCodec, OversizePayloadThrowsAndBadLengthFieldIsRejected) {
  WireFrame in;
  in.payload.assign(kMaxWirePayloadBytes + 1, 0);
  std::vector<std::uint8_t> wire;
  EXPECT_THROW(append_wire_frame(in, wire), std::invalid_argument);

  in.payload.assign(8, 0x7);
  wire.clear();
  append_wire_frame(in, wire);
  wire[19] = 0xFF;  // length field now far beyond the sanity bound
  WireDecoder decoder;
  decoder.feed(wire);
  WireFrame out;
  EXPECT_FALSE(decoder.next(out));
  EXPECT_GE(decoder.stats().bad_length, 1u);
}

TEST(Fec, ParityPayloadIsXorOfBlock) {
  FecEncoder encoder(1, 3);
  std::vector<std::uint8_t> wire;
  for (std::uint64_t seq = 1; seq <= 3; ++seq) encoder.push(seq, make_event(seq), wire);
  const auto frames = split_frames(wire);
  ASSERT_EQ(frames.size(), 4u);  // 3 data + 1 parity

  WireDecoder decoder;
  decoder.feed(wire);
  std::vector<WireFrame> parsed;
  WireFrame f;
  while (decoder.next(f)) parsed.push_back(f);
  ASSERT_EQ(parsed.size(), 4u);
  ASSERT_EQ(parsed[3].type, WireFrameType::kParity);
  EXPECT_EQ(parsed[3].seq, 1u);
  EXPECT_EQ(parsed[3].block_k, 3u);
  std::vector<std::uint8_t> expected(parsed[0].payload.size(), 0);
  for (int i = 0; i < 3; ++i) {
    for (std::size_t b = 0; b < expected.size(); ++b) expected[b] ^= parsed[i].payload[b];
  }
  EXPECT_EQ(parsed[3].payload, expected);
}

TEST(Fec, SingleLossRecoversAtEveryBlockPosition) {
  constexpr std::size_t kBlock = 4;
  constexpr std::size_t kEvents = 8;
  const std::vector<std::uint8_t> wire = encode_stream(kEvents, kBlock);
  const auto frames = split_frames(wire);

  for (std::size_t drop = 0; drop < frames.size(); ++drop) {
    if (frames[drop][3] != 0) continue;  // only drop data frames here
    WireDecoder decoder;
    FecDecoder fec;
    std::vector<capture::FrameEvent> released;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (i == drop) continue;
      const auto out = decode_all(fec, decoder, frames[i]);
      released.insert(released.end(), out.begin(), out.end());
    }
    fec.finish();
    capture::FrameEvent ev;
    while (fec.next(ev)) released.push_back(ev);

    ASSERT_EQ(released.size(), kEvents) << "dropped frame " << drop;
    for (std::size_t i = 0; i < released.size(); ++i) {
      EXPECT_TRUE(events_equal(released[i], make_event(i + 1))) << "dropped " << drop;
    }
    EXPECT_EQ(fec.stats().recovered, 1u);
    EXPECT_EQ(fec.stats().unrecoverable_gaps, 0u);
  }
}

TEST(Fec, PartialBlockFlushCoversTheTail) {
  // 5 events at k=4: one full block + a flushed partial block of 1.
  FecEncoder encoder(1, 4);
  std::vector<std::uint8_t> wire;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) encoder.push(seq, make_event(seq), wire);
  encoder.flush(wire);
  auto frames = split_frames(wire);
  ASSERT_EQ(frames.size(), 7u);  // 5 data + 2 parity

  // Drop the lone data frame of the partial block (index 5; parity is last).
  frames.erase(frames.begin() + 5);
  WireDecoder decoder;
  FecDecoder fec;
  std::vector<capture::FrameEvent> released;
  for (const auto& f : frames) {
    const auto out = decode_all(fec, decoder, f);
    released.insert(released.end(), out.begin(), out.end());
  }
  fec.finish();
  capture::FrameEvent ev;
  while (fec.next(ev)) released.push_back(ev);
  ASSERT_EQ(released.size(), 5u);
  EXPECT_TRUE(events_equal(released[4], make_event(5)));
  EXPECT_EQ(fec.stats().recovered, 1u);
}

TEST(Fec, DuplicateDataFramesAreSuppressed) {
  const std::vector<std::uint8_t> wire = encode_stream(4, 0);
  WireDecoder decoder;
  FecDecoder fec;
  auto released = decode_all(fec, decoder, wire);
  const auto again = decode_all(fec, decoder, wire);  // replay the whole stream
  released.insert(released.end(), again.begin(), again.end());
  EXPECT_EQ(released.size(), 4u);
  EXPECT_EQ(fec.stats().duplicates, 4u);
}

TEST(Fec, ReorderedFramesReleaseInSequenceOrder) {
  const std::vector<std::uint8_t> wire = encode_stream(6, 0);
  auto frames = split_frames(wire);
  std::swap(frames[1], frames[4]);
  std::swap(frames[0], frames[2]);

  WireDecoder decoder;
  FecDecoder fec;
  std::vector<capture::FrameEvent> released;
  for (const auto& f : frames) {
    const auto out = decode_all(fec, decoder, f);
    released.insert(released.end(), out.begin(), out.end());
  }
  fec.finish();
  capture::FrameEvent ev;
  while (fec.next(ev)) released.push_back(ev);
  ASSERT_EQ(released.size(), 6u);
  for (std::size_t i = 0; i < released.size(); ++i) {
    EXPECT_EQ(released[i].stream_seq, i + 1);
  }
  EXPECT_GT(fec.stats().out_of_order, 0u);
  EXPECT_EQ(fec.stats().unrecoverable_gaps, 0u);
}

TEST(Fec, DoubleLossInOneBlockCountsGapsAndMovesOn) {
  const std::vector<std::uint8_t> wire = encode_stream(8, 4);
  auto frames = split_frames(wire);
  // Drop data frames for seq 2 and 3 (indices 1, 2): two losses, one block.
  frames.erase(frames.begin() + 2);
  frames.erase(frames.begin() + 1);

  WireDecoder decoder;
  FecDecoder fec;
  std::vector<capture::FrameEvent> released;
  for (const auto& f : frames) {
    const auto out = decode_all(fec, decoder, f);
    released.insert(released.end(), out.begin(), out.end());
  }
  fec.finish();
  capture::FrameEvent ev;
  while (fec.next(ev)) released.push_back(ev);
  ASSERT_EQ(released.size(), 6u);
  EXPECT_EQ(released[0].stream_seq, 1u);
  EXPECT_EQ(released[1].stream_seq, 4u);  // 2 and 3 skipped
  EXPECT_EQ(fec.stats().unrecoverable_gaps, 2u);
  EXPECT_EQ(fec.stats().recovered, 0u);
}

TEST(Fec, WindowOverrunSkipsTheGapInsteadOfStalling) {
  constexpr std::size_t kWindow = 8;
  const std::vector<std::uint8_t> wire = encode_stream(kWindow + 6, 0);
  auto frames = split_frames(wire);
  frames.erase(frames.begin());  // lose seq 1 with no parity to rebuild it

  WireDecoder decoder;
  FecDecoder fec(FecDecoderOptions{.reorder_window = kWindow});
  std::vector<capture::FrameEvent> released;
  for (const auto& f : frames) {
    const auto out = decode_all(fec, decoder, f);
    released.insert(released.end(), out.begin(), out.end());
  }
  // The window must have forced progress before stream end.
  EXPECT_GT(released.size(), 0u);
  EXPECT_EQ(released[0].stream_seq, 2u);
  EXPECT_EQ(fec.stats().unrecoverable_gaps, 1u);
}

TEST(LinkSim, DeterministicUnderPlanAndSeed) {
  const std::vector<std::uint8_t> wire = encode_stream(64, 8);
  const auto frames = split_frames(wire);

  fault::FaultPlan plan;
  plan.drop_rate = 0.1;
  plan.corrupt_rate = 0.05;
  plan.duplicate_rate = 0.05;
  plan.reorder_rate = 0.1;
  plan.burst_rate = 0.01;
  plan.seed = 99;

  const auto run = [&](const fault::FaultPlan& p) {
    LinkSimulator link(p);
    for (const auto& f : frames) link.send(f);
    link.flush();
    return link.take();
  };
  const std::vector<std::uint8_t> a = run(plan);
  const std::vector<std::uint8_t> b = run(plan);
  EXPECT_EQ(a, b);

  fault::FaultPlan other = plan;
  other.seed = 100;
  EXPECT_NE(run(other), a);
}

TEST(LinkSim, PureReorderLosesNothing) {
  const std::vector<std::uint8_t> wire = encode_stream(32, 0);
  const auto frames = split_frames(wire);
  fault::FaultPlan plan;
  plan.reorder_rate = 0.5;
  plan.reorder_depth_max = 3;
  plan.seed = 5;
  LinkSimulator link(plan);
  for (const auto& f : frames) link.send(f);
  link.flush();
  const std::vector<std::uint8_t> bytes = link.take();
  EXPECT_EQ(bytes.size(), wire.size());
  EXPECT_GT(link.stats().reordered, 0u);

  WireDecoder decoder;
  FecDecoder fec;
  auto released = decode_all(fec, decoder, bytes);
  fec.finish();
  capture::FrameEvent ev;
  while (fec.next(ev)) released.push_back(ev);
  ASSERT_EQ(released.size(), 32u);
  for (std::size_t i = 0; i < released.size(); ++i) {
    EXPECT_TRUE(events_equal(released[i], make_event(i + 1)));
  }
}

TEST(LinkSim, BurstOutageDropsRunsOfFrames) {
  const std::vector<std::uint8_t> wire = encode_stream(512, 0);
  const auto frames = split_frames(wire);
  fault::FaultPlan plan;
  plan.burst_rate = 0.02;
  plan.burst_frames_mean = 8.0;
  plan.seed = 21;
  LinkSimulator link(plan);
  for (const auto& f : frames) link.send(f);
  link.flush();
  EXPECT_GT(link.stats().burst_dropped, 0u);
  EXPECT_EQ(link.stats().frames_delivered + link.stats().burst_dropped,
            link.stats().frames_sent);
}

}  // namespace
}  // namespace mm::net
