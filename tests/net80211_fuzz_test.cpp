// Deterministic fuzz tests: the wire-format parsers must never crash or
// read out of bounds on arbitrary input — they either produce a frame or a
// parse failure. (The sniffer feeds them whatever the medium delivers, and
// replay_pcap feeds them whatever is on disk.)
#include <gtest/gtest.h>

#include <vector>

#include "net80211/frames.h"
#include "net80211/radiotap.h"
#include "util/rng.h"

namespace mm::net80211 {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

TEST(FrameFuzz, RandomBuffersNeverCrash) {
  util::Rng rng(0xfacefeed);
  int parsed_ok = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 256));
    const auto bytes = random_bytes(rng, len);
    const auto result = ManagementFrame::parse(bytes);
    parsed_ok += result.ok() ? 1 : 0;
  }
  // Random bytes essentially never satisfy the FCS; the point is absence of
  // crashes, but verify the check is actually doing its job too.
  EXPECT_LT(parsed_ok, 3);
}

TEST(FrameFuzz, MutatedValidFramesNeverCrash) {
  util::Rng rng(0xdecade);
  const auto ap = *MacAddress::parse("00:1a:2b:00:00:01");
  const auto base = make_beacon(ap, "FuzzNet", 6, 123456, 42).serialize();
  for (int trial = 0; trial < 5000; ++trial) {
    auto bytes = base;
    const int mutations = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    // Also randomly truncate sometimes.
    if (rng.bernoulli(0.3)) {
      bytes.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()))));
    }
    (void)ManagementFrame::parse(bytes);                        // FCS on
    (void)ManagementFrame::parse(bytes, /*verify_fcs=*/false);  // FCS off
  }
  SUCCEED();
}

TEST(FrameFuzz, TruncationSweepIsTotal) {
  const auto ap = *MacAddress::parse("00:1a:2b:00:00:02");
  const auto full = make_probe_response(ap, MacAddress::broadcast(), "Net", 11, 7, 3)
                        .serialize();
  for (std::size_t len = 0; len <= full.size(); ++len) {
    const std::vector<std::uint8_t> prefix(full.begin(),
                                           full.begin() + static_cast<std::ptrdiff_t>(len));
    const auto result = ManagementFrame::parse(prefix, /*verify_fcs=*/false);
    if (len == full.size()) {
      EXPECT_TRUE(result.ok());
    }
  }
  SUCCEED();
}

TEST(RadiotapFuzz, RandomBuffersNeverCrash) {
  util::Rng rng(0xab1e);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    const auto bytes = random_bytes(rng, len);
    (void)Radiotap::parse(bytes);
  }
  SUCCEED();
}

TEST(RadiotapFuzz, MutatedHeadersNeverCrash) {
  util::Rng rng(0x600d);
  const auto base = Radiotap{}.serialize();
  for (int trial = 0; trial < 5000; ++trial) {
    auto bytes = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)Radiotap::parse(bytes);
  }
  SUCCEED();
}

TEST(FrameFuzz, RoundtripSurvivesAllSubtypesAndSsids) {
  util::Rng rng(0x5eed);
  const auto ap = *MacAddress::parse("00:1a:2b:00:00:03");
  const auto client = *MacAddress::parse("00:16:6f:00:00:04");
  for (int trial = 0; trial < 500; ++trial) {
    std::string ssid;
    const auto ssid_len = static_cast<std::size_t>(rng.uniform_int(0, 32));
    for (std::size_t i = 0; i < ssid_len; ++i) {
      ssid += static_cast<char>(rng.uniform_int(32, 126));
    }
    const auto seq = static_cast<std::uint16_t>(rng.uniform_int(0, 4095));
    const int channel = static_cast<int>(rng.uniform_int(1, 11));
    for (const auto& frame :
         {make_beacon(ap, ssid, channel, 99, seq),
          make_probe_request(client, ssid, seq),
          make_probe_response(ap, client, ssid, channel, 1, seq),
          make_deauth(client, ap, static_cast<std::uint16_t>(rng.uniform_int(1, 99)), seq)}) {
      const auto parsed = ManagementFrame::parse(frame.serialize());
      ASSERT_TRUE(parsed.ok()) << parsed.error();
      EXPECT_EQ(parsed.value().subtype, frame.subtype);
      EXPECT_EQ(parsed.value().sequence, seq);
    }
  }
}

}  // namespace
}  // namespace mm::net80211
