#include "marauder/ap_database.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "sim/scenario.h"

namespace mm::marauder {
namespace {

net80211::MacAddress mac(int i) {
  std::array<std::uint8_t, 6> bytes{0x00, 0x1a, 0x2b, 0x00, 0x02,
                                    static_cast<std::uint8_t>(i)};
  return net80211::MacAddress(bytes);
}

TEST(ApDatabase, AddAndFind) {
  ApDatabase db;
  db.add({mac(1), "NetOne", {10.0, 20.0}, 100.0});
  EXPECT_EQ(db.size(), 1u);
  const KnownAp* ap = db.find(mac(1));
  ASSERT_NE(ap, nullptr);
  EXPECT_EQ(ap->ssid, "NetOne");
  EXPECT_EQ(ap->position, geo::Vec2(10.0, 20.0));
  ASSERT_TRUE(ap->radius_m.has_value());
  EXPECT_DOUBLE_EQ(*ap->radius_m, 100.0);
  EXPECT_EQ(db.find(mac(9)), nullptr);
}

TEST(ApDatabase, AddOverwritesSameBssid) {
  ApDatabase db;
  db.add({mac(1), "Old", {0.0, 0.0}, std::nullopt});
  db.add({mac(1), "New", {5.0, 5.0}, 50.0});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.find(mac(1))->ssid, "New");
}

TEST(ApDatabase, SetRadiusAndStrip) {
  ApDatabase db;
  db.add({mac(1), "x", {0.0, 0.0}, std::nullopt});
  db.set_radius(mac(1), 80.0);
  EXPECT_DOUBLE_EQ(db.find(mac(1))->radius_m.value(), 80.0);
  db.strip_radii();
  EXPECT_FALSE(db.find(mac(1))->radius_m.has_value());
  EXPECT_THROW(db.set_radius(mac(9), 1.0), std::out_of_range);
}

TEST(ApDatabase, DiscsForUsesDefaultWhenRadiusUnknown) {
  ApDatabase db;
  db.add({mac(1), "a", {0.0, 0.0}, 70.0});
  db.add({mac(2), "b", {100.0, 0.0}, std::nullopt});
  const auto discs = db.discs_for({mac(1), mac(2), mac(3)}, 125.0);
  ASSERT_EQ(discs.size(), 2u);  // mac(3) unknown -> skipped
  EXPECT_DOUBLE_EQ(discs[0].radius, 70.0);
  EXPECT_DOUBLE_EQ(discs[1].radius, 125.0);
}

TEST(ApDatabase, PositionsFor) {
  ApDatabase db;
  db.add({mac(1), "a", {1.0, 2.0}, std::nullopt});
  const auto positions = db.positions_for({mac(1), mac(7)});
  ASSERT_EQ(positions.size(), 1u);
  EXPECT_EQ(positions[0], geo::Vec2(1.0, 2.0));
}

TEST(ApDatabase, FromTruthRespectsRadiusFlag) {
  sim::CampusConfig cfg;
  cfg.num_aps = 5;
  const auto truth = sim::generate_campus_aps(cfg);
  const ApDatabase with = ApDatabase::from_truth(truth, /*include_radii=*/true);
  const ApDatabase without = ApDatabase::from_truth(truth, /*include_radii=*/false);
  EXPECT_EQ(with.size(), 5u);
  EXPECT_TRUE(with.find(truth[0].bssid)->radius_m.has_value());
  EXPECT_FALSE(without.find(truth[0].bssid)->radius_m.has_value());
}

TEST(ApDatabase, CsvRoundtripThroughGeodetic) {
  const geo::EnuFrame frame(sim::uml_north_campus());
  ApDatabase db;
  db.add({mac(1), "Cafe, The", {120.0, -340.0}, 95.0});
  db.add({mac(2), "plain", {-80.0, 15.0}, std::nullopt});

  const auto path = std::filesystem::temp_directory_path() / "mm_apdb.csv";
  db.to_csv(path, frame);
  CsvImportStats stats;
  const auto loaded_result = ApDatabase::from_csv(path, frame, &stats);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.error();
  const ApDatabase& loaded = loaded_result.value();
  EXPECT_EQ(stats.quarantined, 0u);
  ASSERT_EQ(loaded.size(), 2u);
  const KnownAp* ap1 = loaded.find(mac(1));
  ASSERT_NE(ap1, nullptr);
  EXPECT_EQ(ap1->ssid, "Cafe, The");
  EXPECT_NEAR(ap1->position.x, 120.0, 0.01);
  EXPECT_NEAR(ap1->position.y, -340.0, 0.01);
  ASSERT_TRUE(ap1->radius_m.has_value());
  EXPECT_NEAR(*ap1->radius_m, 95.0, 1e-6);
  EXPECT_FALSE(loaded.find(mac(2))->radius_m.has_value());
  std::filesystem::remove(path);
}

TEST(ApDatabase, WigleImportParsesAppFormat) {
  const geo::EnuFrame frame(sim::uml_north_campus());
  const auto path = std::filesystem::temp_directory_path() / "mm_wigle.csv";
  {
    std::ofstream out(path);
    out << "WigleWifi-1.4,appRelease=2.53,model=Pixel,release=13\n";
    out << "netid,ssid,authmode,firstseen,channel,rssi,currentlatitude,"
           "currentlongitude,altitudemeters,accuracymeters,type\n";
    out << "00:1a:2b:00:05:01,CampusNet,[WPA2],2008-10-24 10:00:00,6,-70,"
           "42.6560,-71.3250,30,5,WIFI\n";
    out << "00:1a:2b:00:05:02,HomeNet,[WEP],2008-10-24 10:01:00,11,-80,"
           "42.6550,-71.3240,30,5,WIFI\n";
    out << "aa:bb:cc:dd:ee:ff,MyPhone,,2008-10-24 10:02:00,0,-60,"
           "42.6555,-71.3248,30,5,BT\n";              // Bluetooth: skipped
    out << "not-a-mac,junk,,x,1,-70,42.0,-71.0,0,0,WIFI\n";  // bad BSSID
  }
  CsvImportStats stats;
  const auto imported = ApDatabase::from_wigle_csv(path, frame, &stats);
  ASSERT_TRUE(imported.ok()) << imported.error();
  const ApDatabase& db = imported.value();
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(stats.quarantined, 1u);  // the bad-BSSID row; BT is filtered
  const KnownAp* ap = db.find(*net80211::MacAddress::parse("00:1a:2b:00:05:01"));
  ASSERT_NE(ap, nullptr);
  EXPECT_EQ(ap->ssid, "CampusNet");
  EXPECT_FALSE(ap->radius_m.has_value());  // WiGLE has no distances
  // ~42.6560/-71.3250 is ~55m north, ~16m west of the anchor.
  EXPECT_NEAR(ap->position.y, 55.0, 5.0);
  EXPECT_LT(ap->position.x, 0.0);
  std::filesystem::remove(path);
}

TEST(ApDatabase, WigleImportToleratesShortRows) {
  const geo::EnuFrame frame(sim::uml_north_campus());
  const auto path = std::filesystem::temp_directory_path() / "mm_wigle_short.csv";
  {
    std::ofstream out(path);
    out << "netid,ssid\n00:11:22:33:44:55,x\n";  // too few columns
  }
  CsvImportStats stats;
  const auto imported = ApDatabase::from_wigle_csv(path, frame, &stats);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported.value().size(), 0u);
  EXPECT_EQ(stats.quarantined, 1u);
  std::filesystem::remove(path);
}

TEST(ApDatabase, FromCsvQuarantinesMalformedRows) {
  const geo::EnuFrame frame(sim::uml_north_campus());
  const auto path = std::filesystem::temp_directory_path() / "mm_apdb_bad.csv";
  {
    std::ofstream out(path);
    out << "bssid,ssid,lat,lon,radius_m\n";
    out << "not-a-mac,x,42.0,-71.0,\n";                      // bad BSSID
    out << "00:1a:2b:00:02:01,ok,42.656,-71.325,90\n";       // good
    out << "00:1a:2b:00:02:02,badlat,north,-71.325,\n";      // bad latitude
    out << "00:1a:2b:00:02:03,badrad,42.656,-71.325,wide\n"; // bad radius
  }
  CsvImportStats stats;
  const auto imported = ApDatabase::from_csv(path, frame, &stats);
  ASSERT_TRUE(imported.ok()) << imported.error();
  EXPECT_EQ(imported.value().size(), 1u);
  EXPECT_EQ(stats.rows_total, 4u);
  EXPECT_EQ(stats.rows_loaded, 1u);
  EXPECT_EQ(stats.quarantined, 3u);
  EXPECT_NE(imported.value().find(*net80211::MacAddress::parse("00:1a:2b:00:02:01")),
            nullptr);
  std::filesystem::remove(path);
}

TEST(ApDatabase, FromCsvMissingFileIsFailure) {
  const geo::EnuFrame frame(sim::uml_north_campus());
  const auto imported = ApDatabase::from_csv("/nonexistent/apdb.csv", frame);
  EXPECT_FALSE(imported.ok());
  EXPECT_FALSE(imported.error().empty());
}

}  // namespace
}  // namespace mm::marauder
