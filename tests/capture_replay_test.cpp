#include "capture/replay.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "capture/sniffer.h"
#include "net80211/pcap.h"
#include "net80211/radiotap.h"
#include "sim/ap.h"
#include "sim/mobile.h"
#include "sim/mobility.h"

namespace mm::capture {
namespace {

const net80211::MacAddress kApMac = *net80211::MacAddress::parse("00:1a:2b:00:00:01");
const net80211::MacAddress kClientMac = *net80211::MacAddress::parse("00:16:6f:00:00:02");

std::filesystem::path record_session() {
  const auto path = std::filesystem::temp_directory_path() / "mm_replay.pcap";
  sim::World world({});
  sim::ApConfig ap;
  ap.bssid = kApMac;
  ap.ssid = "ReplayNet";
  ap.channel = {rf::Band::kBg24GHz, 6};
  ap.position = {40.0, 0.0};
  ap.service_radius_m = 100.0;
  ap.beacons_enabled = true;
  world.add_access_point(std::make_unique<sim::AccessPoint>(ap));

  sim::MobileConfig mc;
  mc.mac = kClientMac;
  mc.profile.probes = false;
  mc.mobility = std::make_shared<sim::StaticPosition>(geo::Vec2{0.0, 0.0});
  sim::MobileDevice* mobile = world.add_mobile(std::make_unique<sim::MobileDevice>(mc));

  ObservationStore live;
  SnifferConfig sc;
  sc.position = {0.0, 60.0};
  sc.pcap_path = path;
  Sniffer sniffer(sc, &live);
  sniffer.attach(world);
  mobile->trigger_scan();
  world.run_until(5.0);
  return path;
}

TEST(Replay, RebuildsObservationsFromPcap) {
  const auto path = record_session();
  ObservationStore offline;
  const auto replayed = replay_pcap(path, offline);
  ASSERT_TRUE(replayed.ok()) << replayed.error();
  const ReplayStats& stats = replayed.value();
  EXPECT_GT(stats.records, 0u);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(stats.framing_quarantined, 0u);
  EXPECT_FALSE(stats.truncated_tail);
  EXPECT_GT(stats.probe_requests, 0u);
  EXPECT_EQ(stats.probe_responses, 1u);
  EXPECT_GT(stats.beacons, 0u);

  // The offline store carries the same Gamma evidence the live store did.
  EXPECT_EQ(offline.gamma(kClientMac), (std::set<net80211::MacAddress>{kApMac}));
  const DeviceRecord* rec = offline.device(kClientMac);
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->probe_requests, 0u);
  // Beacon sightings recovered too (channel survey works offline).
  ASSERT_EQ(offline.ap_sightings().count(kApMac), 1u);
  EXPECT_EQ(offline.ap_sightings().at(kApMac).ssid, "ReplayNet");
  EXPECT_EQ(offline.ap_sightings().at(kApMac).channel, 6);
  std::filesystem::remove(path);
}

TEST(Replay, RejectsWrongLinktype) {
  const auto path = std::filesystem::temp_directory_path() / "mm_replay_bad.pcap";
  { net80211::PcapWriter writer(path, net80211::kLinktype80211); }
  ObservationStore store;
  const auto replayed = replay_pcap(path, store);
  EXPECT_FALSE(replayed.ok());
  EXPECT_NE(replayed.error().find("linktype"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Replay, MissingFileIsFailure) {
  ObservationStore store;
  const auto replayed = replay_pcap("/nonexistent.pcap", store);
  EXPECT_FALSE(replayed.ok());
  EXPECT_FALSE(replayed.error().empty());
}

TEST(Replay, CountsMalformedRecords) {
  const auto path = std::filesystem::temp_directory_path() / "mm_replay_junk.pcap";
  {
    net80211::PcapWriter writer(path, net80211::kLinktypeRadiotap);
    writer.write(0, std::vector<std::uint8_t>{0x01, 0x02, 0x03});  // not radiotap
  }
  ObservationStore store;
  const auto replayed = replay_pcap(path, store);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().records, 1u);
  EXPECT_EQ(replayed.value().malformed, 1u);
  EXPECT_EQ(replayed.value().quarantined(), 1u);
  EXPECT_EQ(store.device_count(), 0u);
  std::filesystem::remove(path);
}

// A radiotap header whose advertised length exceeds the record must be
// quarantined as malformed without ever reading past the record's bytes
// (run under ASan in CI to prove the "never" part).
TEST(Replay, RadiotapLengthBeyondRecordQuarantined) {
  const auto path = std::filesystem::temp_directory_path() / "mm_replay_oob.pcap";
  {
    net80211::Radiotap rt;
    rt.antenna_signal_dbm = -60;
    auto packet = rt.serialize();
    // Lie in the it_len field: claim far more header than the record holds.
    packet[2] = 0xff;
    packet[3] = 0x00;
    net80211::PcapWriter writer(path, net80211::kLinktypeRadiotap);
    writer.write(0, packet);
  }
  ObservationStore store;
  const auto replayed = replay_pcap(path, store);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().records, 1u);
  EXPECT_EQ(replayed.value().malformed, 1u);
  EXPECT_EQ(store.device_count(), 0u);
  std::filesystem::remove(path);
}

TEST(Replay, TruncatedTailReported) {
  const auto path = record_session();
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 7);
  ObservationStore store;
  const auto replayed = replay_pcap(path, store);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed.value().truncated_tail);
  EXPECT_GT(replayed.value().records, 0u);  // intact prefix still ingested
  std::filesystem::remove(path);
}

// Replaying under a full-drop fault plan ingests nothing; a duplication
// plan ingests every record twice. Both leave the stats ledger consistent.
TEST(Replay, FaultPlanDropAndDuplicate) {
  const auto path = record_session();

  ObservationStore clean_store;
  const auto clean = replay_pcap(path, clean_store);
  ASSERT_TRUE(clean.ok());

  ReplayOptions drop_all;
  drop_all.fault_plan.drop_rate = 1.0;
  ObservationStore dropped_store;
  const auto dropped = replay_pcap(path, dropped_store, drop_all);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value().faults.frames_dropped, clean.value().records);
  EXPECT_EQ(dropped_store.device_count(), 0u);

  ReplayOptions dup_all;
  dup_all.fault_plan.duplicate_rate = 1.0;
  ObservationStore duped_store;
  const auto duped = replay_pcap(path, duped_store, dup_all);
  ASSERT_TRUE(duped.ok());
  EXPECT_EQ(duped.value().faults.frames_duplicated, clean.value().records);
  EXPECT_EQ(duped.value().probe_requests, 2 * clean.value().probe_requests);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mm::capture
