#include "capture/replay.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "capture/sniffer.h"
#include "net80211/pcap.h"
#include "sim/ap.h"
#include "sim/mobile.h"
#include "sim/mobility.h"

namespace mm::capture {
namespace {

const net80211::MacAddress kApMac = *net80211::MacAddress::parse("00:1a:2b:00:00:01");
const net80211::MacAddress kClientMac = *net80211::MacAddress::parse("00:16:6f:00:00:02");

std::filesystem::path record_session() {
  const auto path = std::filesystem::temp_directory_path() / "mm_replay.pcap";
  sim::World world({});
  sim::ApConfig ap;
  ap.bssid = kApMac;
  ap.ssid = "ReplayNet";
  ap.channel = {rf::Band::kBg24GHz, 6};
  ap.position = {40.0, 0.0};
  ap.service_radius_m = 100.0;
  ap.beacons_enabled = true;
  world.add_access_point(std::make_unique<sim::AccessPoint>(ap));

  sim::MobileConfig mc;
  mc.mac = kClientMac;
  mc.profile.probes = false;
  mc.mobility = std::make_shared<sim::StaticPosition>(geo::Vec2{0.0, 0.0});
  sim::MobileDevice* mobile = world.add_mobile(std::make_unique<sim::MobileDevice>(mc));

  ObservationStore live;
  SnifferConfig sc;
  sc.position = {0.0, 60.0};
  sc.pcap_path = path;
  Sniffer sniffer(sc, &live);
  sniffer.attach(world);
  mobile->trigger_scan();
  world.run_until(5.0);
  return path;
}

TEST(Replay, RebuildsObservationsFromPcap) {
  const auto path = record_session();
  ObservationStore offline;
  const ReplayStats stats = replay_pcap(path, offline);
  EXPECT_GT(stats.records, 0u);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_GT(stats.probe_requests, 0u);
  EXPECT_EQ(stats.probe_responses, 1u);
  EXPECT_GT(stats.beacons, 0u);

  // The offline store carries the same Gamma evidence the live store did.
  EXPECT_EQ(offline.gamma(kClientMac), (std::set<net80211::MacAddress>{kApMac}));
  const DeviceRecord* rec = offline.device(kClientMac);
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->probe_requests, 0u);
  // Beacon sightings recovered too (channel survey works offline).
  ASSERT_EQ(offline.ap_sightings().count(kApMac), 1u);
  EXPECT_EQ(offline.ap_sightings().at(kApMac).ssid, "ReplayNet");
  EXPECT_EQ(offline.ap_sightings().at(kApMac).channel, 6);
  std::filesystem::remove(path);
}

TEST(Replay, RejectsWrongLinktype) {
  const auto path = std::filesystem::temp_directory_path() / "mm_replay_bad.pcap";
  { net80211::PcapWriter writer(path, net80211::kLinktype80211); }
  ObservationStore store;
  EXPECT_THROW((void)replay_pcap(path, store), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Replay, MissingFileThrows) {
  ObservationStore store;
  EXPECT_THROW((void)replay_pcap("/nonexistent.pcap", store), std::runtime_error);
}

TEST(Replay, CountsMalformedRecords) {
  const auto path = std::filesystem::temp_directory_path() / "mm_replay_junk.pcap";
  {
    net80211::PcapWriter writer(path, net80211::kLinktypeRadiotap);
    writer.write(0, std::vector<std::uint8_t>{0x01, 0x02, 0x03});  // not radiotap
  }
  ObservationStore store;
  const ReplayStats stats = replay_pcap(path, store);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(store.device_count(), 0u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mm::capture
