// Cross-cutting invariants the rest of the system silently relies on:
//   * geometry is invariant under rigid motions (no axis-aligned bias in
//     the disc-intersection area/centroid math);
//   * the simulator is bit-for-bit deterministic for a fixed seed (the
//     reproducibility promise behind every number in EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "capture/sniffer.h"
#include "geo/disc_intersection.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace mm {
namespace {

geo::Vec2 rotate(geo::Vec2 p, double theta) {
  return {p.x * std::cos(theta) - p.y * std::sin(theta),
          p.x * std::sin(theta) + p.y * std::cos(theta)};
}

class RigidMotionInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RigidMotionInvariance, DiscIntersectionAreaAndCentroidTransformCovariantly) {
  util::Rng rng(GetParam());
  std::vector<geo::Circle> discs;
  const int k = static_cast<int>(rng.uniform_int(2, 9));
  for (int i = 0; i < k; ++i) {
    discs.push_back({geo::Vec2::from_polar(rng.uniform() * 0.9, rng.angle()),
                     rng.uniform(0.8, 1.2)});
  }
  const auto base = geo::DiscIntersection::compute(discs);
  ASSERT_FALSE(base.empty());

  const double theta = rng.angle();
  const geo::Vec2 shift{rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)};
  std::vector<geo::Circle> moved;
  for (const geo::Circle& c : discs) {
    moved.push_back({rotate(c.center, theta) + shift, c.radius});
  }
  const auto transformed = geo::DiscIntersection::compute(moved);
  ASSERT_FALSE(transformed.empty());

  EXPECT_NEAR(transformed.area(), base.area(), 1e-9 + 1e-9 * base.area());
  const geo::Vec2 expected_centroid = rotate(base.centroid(), theta) + shift;
  EXPECT_NEAR(transformed.centroid().distance_to(expected_centroid), 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RigidMotionInvariance,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

struct SimRunResult {
  std::uint64_t frames = 0;
  std::uint64_t decoded = 0;
  std::size_t devices = 0;
  std::vector<std::string> gamma_dump;
};

SimRunResult run_fixed_seed_world() {
  SimRunResult out;
  sim::CampusConfig campus;
  campus.seed = 424242;
  campus.num_aps = 60;
  campus.half_extent_m = 250.0;
  const auto truth = sim::generate_campus_aps(campus);

  sim::World world({.seed = 777, .propagation = nullptr});
  sim::populate_world(world, truth, /*beacons_enabled=*/true);

  util::Rng rng(99);
  for (int i = 0; i < 6; ++i) {
    sim::MobileConfig mc;
    mc.mac = net80211::MacAddress::random(rng, {0x00, 0x16, 0x6f});
    mc.profile.probes = true;
    mc.profile.scan_interval_s = 7.0;
    mc.mobility = std::make_shared<sim::RandomWaypoint>(
        geo::Vec2{-200.0, -200.0}, geo::Vec2{200.0, 200.0}, 1.0, 2.0, 60.0,
        500 + static_cast<std::uint64_t>(i));
    world.add_mobile(std::make_unique<sim::MobileDevice>(mc));
  }

  capture::ObservationStore store;
  capture::SnifferConfig sc;
  sc.position = {0.0, 0.0};
  sc.seed = 31337;
  capture::Sniffer sniffer(sc, &store);
  sniffer.attach(world);
  world.run_until(60.0);

  out.frames = world.frames_transmitted();
  out.decoded = sniffer.stats().frames_decoded;
  out.devices = store.device_count();
  for (const auto& mac : store.devices()) {
    std::string line = mac.to_string() + ":";
    for (const auto& ap : store.gamma(mac)) line += ap.to_string() + ",";
    out.gamma_dump.push_back(std::move(line));
  }
  return out;
}

TEST(Determinism, IdenticalSeedsProduceIdenticalWorlds) {
  const SimRunResult a = run_fixed_seed_world();
  const SimRunResult b = run_fixed_seed_world();
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.decoded, b.decoded);
  EXPECT_EQ(a.devices, b.devices);
  EXPECT_EQ(a.gamma_dump, b.gamma_dump);
  // Sanity: the run actually did something.
  EXPECT_GT(a.frames, 1000u);
  EXPECT_GT(a.devices, 3u);
}

TEST(Determinism, DifferentSnifferSeedChangesOnlyDecoding) {
  // The medium and devices are driven by the world seed; the sniffer's own
  // RNG only affects marginal decodes. Frame counts on air must match.
  SimRunResult a = run_fixed_seed_world();
  // Same everything (the function is fully fixed) — this is a re-run, so
  // equality is expected; the cross-seed variation is covered implicitly by
  // experiment configs elsewhere. Keep the sanity anchor:
  EXPECT_GT(a.decoded, 0u);
  EXPECT_LE(a.decoded, a.frames * 12);  // at most one decode per delivery per card
}

}  // namespace
}  // namespace mm
