// Basilisk snapshot damage drills: torn tails, flipped bits, and stale
// footers must degrade a Service to its surviving tiles — counted in
// ServiceStats, never thrown — mirroring the Phoenix checkpoint fallback.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "durability/crc32c.h"
#include "util/rng.h"
#include "wps/service.h"
#include "wps/snapshot_writer.h"

namespace mm::wps {
namespace {

namespace fs = std::filesystem;

fs::path temp_path(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / name;
  fs::remove(p);
  return p;
}

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

marauder::ApDatabase grid_db(std::size_t per_side, double spacing) {
  marauder::ApDatabase db;
  std::uint64_t next = 0x021111000000ULL;
  for (std::size_t ix = 0; ix < per_side; ++ix) {
    for (std::size_t iy = 0; iy < per_side; ++iy) {
      marauder::KnownAp ap;
      ap.bssid = net80211::MacAddress::from_u64(next++);
      ap.position = {static_cast<double>(ix) * spacing,
                     static_cast<double>(iy) * spacing};
      ap.radius_m = 80.0;
      db.add(std::move(ap));
    }
  }
  return db;
}

struct SectionView {
  std::size_t header_off = 0;
  std::size_t payload_off = 0;
  std::uint64_t payload_len = 0;
  std::uint8_t type = 0;
};

/// Walks the section chain exactly as the recovery scan does, stopping at
/// the footer magic.
std::vector<SectionView> sections_of(const std::vector<std::uint8_t>& bytes) {
  std::vector<SectionView> out;
  std::size_t off = kFileHeaderBytes;
  while (off + kSectionHeaderBytes <= bytes.size()) {
    if (std::memcmp(bytes.data() + off, kSectionMagic.data(), 4) != 0) break;
    SectionView s;
    s.header_off = off;
    s.type = bytes[off + 4];
    std::memcpy(&s.payload_len, bytes.data() + off + 24, 8);
    s.payload_off = off + kSectionHeaderBytes;
    out.push_back(s);
    off = s.payload_off + s.payload_len;
  }
  return out;
}

/// A pristine snapshot of a 40x40 grid sliced into many 512 m tiles.
struct Fixture {
  marauder::ApDatabase db;
  std::vector<std::uint8_t> pristine;
  fs::path path;

  explicit Fixture(const std::string& name) : db(grid_db(40, 130.0)), path(temp_path(name)) {
    SnapshotBuildOptions build;
    build.fsync = false;
    auto stats = write_snapshot(db, geo::Geodetic{}, path, build);
    EXPECT_TRUE(stats.ok()) << stats.error();
    pristine = read_file(path);
    EXPECT_EQ(pristine.size(), stats.value().file_bytes);
  }

  Service open_bytes(const std::vector<std::uint8_t>& bytes) {
    write_file(path, bytes);
    auto service = Service::open(path);
    EXPECT_TRUE(service.ok()) << service.error();
    return std::move(service).value();
  }
};

TEST(WpsSnapshot, PristineStatsAreClean) {
  Fixture fx("mm_snap_clean.wps");
  const Service service = fx.open_bytes(fx.pristine);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.records_total, fx.db.size());
  EXPECT_GT(stats.tiles_total, 50u);
  EXPECT_EQ(stats.sections_rejected, 0u);
  EXPECT_EQ(stats.tail_bytes_quarantined, 0u);
  EXPECT_FALSE(stats.footer_recovered);
  EXPECT_TRUE(stats.mac_index_present);
}

TEST(WpsSnapshot, TruncatedTrailerRecoversEverythingByScan) {
  Fixture fx("mm_snap_trailer.wps");
  auto bytes = fx.pristine;
  bytes.resize(bytes.size() - 10);  // tear mid-trailer
  const Service service = fx.open_bytes(bytes);
  const ServiceStats stats = service.stats();
  EXPECT_TRUE(stats.footer_recovered);
  EXPECT_EQ(stats.records_total, fx.db.size());
  for (const marauder::KnownAp* ap : fx.db.sorted_records()) {
    EXPECT_TRUE(service.lookup(ap->bssid).has_value());
  }
}

TEST(WpsSnapshot, TruncatedMidSectionServesSurvivingTiles) {
  Fixture fx("mm_snap_torn.wps");
  const auto sections = sections_of(fx.pristine);
  ASSERT_GT(sections.size(), 3u);
  // Cut inside the third-from-last section: everything before it survives.
  const SectionView& cut = sections[sections.size() - 3];
  auto bytes = fx.pristine;
  bytes.resize(cut.payload_off + cut.payload_len / 2);
  const Service service = fx.open_bytes(bytes);
  const ServiceStats stats = service.stats();
  EXPECT_TRUE(stats.footer_recovered);
  EXPECT_GT(stats.tail_bytes_quarantined, 0u);
  EXPECT_LT(stats.records_total, fx.db.size());
  EXPECT_GT(stats.records_total, 0u);
  // Every surviving record answers bit-exact; lost BSSIDs answer nullopt.
  std::size_t hits = 0;
  for (const marauder::KnownAp* ap : fx.db.sorted_records()) {
    const auto got = service.lookup(ap->bssid);
    if (!got) continue;
    ++hits;
    EXPECT_EQ(got->bssid, ap->bssid);
    EXPECT_EQ(got->position.x, ap->position.x);
    EXPECT_EQ(got->position.y, ap->position.y);
  }
  EXPECT_EQ(hits, stats.records_total);
}

TEST(WpsSnapshot, BitFlipQuarantinesOneTile) {
  Fixture fx("mm_snap_flip.wps");
  const auto sections = sections_of(fx.pristine);
  const SectionView* victim = nullptr;
  for (const auto& s : sections) {
    if (s.type == static_cast<std::uint8_t>(SectionType::kTileRecords) &&
        s.payload_len > 0) {
      victim = &s;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  auto bytes = fx.pristine;
  bytes[victim->payload_off + 17] ^= 0x40;  // one flipped bit in one record
  const Service service = fx.open_bytes(bytes);
  EXPECT_EQ(service.stats().tiles_quarantined, 0u) << "quarantine must be lazy";

  const std::uint64_t victim_records = victim->payload_len / kRecordBytes;
  std::size_t hits = 0;
  for (const marauder::KnownAp* ap : fx.db.sorted_records()) {
    if (service.lookup(ap->bssid)) ++hits;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tiles_quarantined, 1u);
  EXPECT_EQ(stats.records_quarantined, victim_records);
  EXPECT_EQ(hits, fx.db.size() - victim_records);

  // Geometric queries skip the quarantined tile and stay sane elsewhere.
  const auto everything = service.range({2600.0, 2600.0}, 1.0e7);
  EXPECT_EQ(everything.size(), fx.db.size() - victim_records);
}

TEST(WpsSnapshot, StaleFooterEntryIsRejected) {
  Fixture fx("mm_snap_stale.wps");
  const auto sections = sections_of(fx.pristine);
  ASSERT_GT(sections.size(), 4u);
  // Rewrite one body section header (tile.y nudged) and repair its header
  // CRC: the header itself parses, but the footer's verbatim copy no longer
  // matches — a footer gone stale relative to the body it indexes.
  const SectionView& victim = sections[1];
  ASSERT_EQ(victim.type, static_cast<std::uint8_t>(SectionType::kTileRecords));
  auto bytes = fx.pristine;
  bytes[victim.header_off + 16] ^= 0x01;
  const std::uint32_t crc =
      durability::crc32c({bytes.data() + victim.header_off, 44});
  std::memcpy(bytes.data() + victim.header_off + 44, &crc, 4);
  const Service service = fx.open_bytes(bytes);
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.sections_rejected, 1u);
  EXPECT_LT(stats.records_total, fx.db.size());

  // The MAC index maps global record numbers that no longer line up with
  // the surviving tiles; lookups must still be correct via tile fallback.
  const std::uint64_t victim_records = victim.payload_len / kRecordBytes;
  std::size_t hits = 0;
  for (const marauder::KnownAp* ap : fx.db.sorted_records()) {
    const auto got = service.lookup(ap->bssid);
    if (!got) continue;
    ++hits;
    EXPECT_EQ(got->position.x, ap->position.x);
    EXPECT_EQ(got->position.y, ap->position.y);
  }
  EXPECT_EQ(hits, fx.db.size() - victim_records);
}

TEST(WpsSnapshot, DamagedFooterFallsBackToScanWithZeroLoss) {
  Fixture fx("mm_snap_footer.wps");
  const auto sections = sections_of(fx.pristine);
  const std::size_t footer_off =
      sections.back().payload_off + sections.back().payload_len;
  auto bytes = fx.pristine;
  bytes[footer_off + 6] ^= 0x80;  // corrupt the footer table itself
  const Service service = fx.open_bytes(bytes);
  const ServiceStats stats = service.stats();
  EXPECT_TRUE(stats.footer_recovered);
  EXPECT_EQ(stats.records_total, fx.db.size());
  EXPECT_EQ(stats.sections_rejected, 0u);
  for (const marauder::KnownAp* ap : fx.db.sorted_records()) {
    EXPECT_TRUE(service.lookup(ap->bssid).has_value());
  }
}

TEST(WpsSnapshot, DamagedMacIndexFallsBackToTileSearch) {
  Fixture fx("mm_snap_macidx.wps");
  const auto sections = sections_of(fx.pristine);
  const SectionView* mac = nullptr;
  for (const auto& s : sections) {
    if (s.type == static_cast<std::uint8_t>(SectionType::kMacIndex)) mac = &s;
  }
  ASSERT_NE(mac, nullptr);
  auto bytes = fx.pristine;
  bytes[mac->payload_off + 3] ^= 0x10;
  const Service service = fx.open_bytes(bytes);
  EXPECT_TRUE(service.stats().mac_index_present);
  for (const marauder::KnownAp* ap : fx.db.sorted_records()) {
    const auto got = service.lookup(ap->bssid);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->position.x, ap->position.x);
  }
  EXPECT_TRUE(service.stats().mac_index_damaged);
  EXPECT_EQ(service.stats().tiles_quarantined, 0u);
}

TEST(WpsSnapshot, RandomDamageNeverThrows) {
  Fixture fx("mm_snap_fuzz.wps");
  util::Rng rng(4242);
  for (int round = 0; round < 60; ++round) {
    auto bytes = fx.pristine;
    if (rng.bernoulli(0.3)) {
      bytes.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()))));
    }
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips && !bytes.empty(); ++f) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    write_file(fx.path, bytes);
    auto opened = Service::open(fx.path);
    if (!opened.ok()) continue;  // header damage may fail open; fine
    const Service service = std::move(opened).value();
    EXPECT_NO_THROW({
      for (const marauder::KnownAp* ap : fx.db.sorted_records()) {
        (void)service.lookup(ap->bssid);
      }
      (void)service.range({1000.0, 1000.0}, 2000.0);
      (void)service.nearest_k({-500.0, 4000.0}, 12);
      (void)service.stats();
    });
  }
}

TEST(WpsSnapshot, RebuildOverwritesAtomically) {
  const fs::path path = temp_path("mm_snap_rewrite.wps");
  SnapshotBuildOptions build;
  build.fsync = false;
  auto first = write_snapshot(grid_db(10, 100.0), geo::Geodetic{}, path, build);
  ASSERT_TRUE(first.ok());
  auto second = write_snapshot(grid_db(12, 100.0), geo::Geodetic{}, path, build);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  auto service = Service::open(path);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service.value().size(), 144u);
}

TEST(WpsSnapshot, IdenticalInputsProduceIdenticalBytes) {
  const fs::path p1 = temp_path("mm_snap_pure1.wps");
  const fs::path p2 = temp_path("mm_snap_pure2.wps");
  SnapshotBuildOptions build;
  build.fsync = false;
  const auto db = grid_db(15, 90.0);
  ASSERT_TRUE(write_snapshot(db, geo::Geodetic{1, 2, 3}, p1, build).ok());
  ASSERT_TRUE(write_snapshot(db, geo::Geodetic{1, 2, 3}, p2, build).ok());
  EXPECT_EQ(read_file(p1), read_file(p2));
}

}  // namespace
}  // namespace mm::wps
