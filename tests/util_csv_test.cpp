#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace mm::util {
namespace {

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(Csv, EscapeComma) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(Csv, EscapeQuote) { EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\""); }

TEST(Csv, JoinRow) {
  EXPECT_EQ(csv_join({"a", "b,c", "d"}), "a,\"b,c\",d");
}

TEST(Csv, ParseSimpleLine) {
  const CsvRow row = csv_parse_line("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(Csv, ParseQuotedComma) {
  const CsvRow row = csv_parse_line("x,\"a,b\",y");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], "a,b");
}

TEST(Csv, ParseDoubledQuotes) {
  const CsvRow row = csv_parse_line("\"he said \"\"hey\"\"\"");
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], "he said \"hey\"");
}

TEST(Csv, ParseEmptyFields) {
  const CsvRow row = csv_parse_line("a,,c,");
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "");
  EXPECT_EQ(row[3], "");
}

TEST(Csv, ParseToleratesCarriageReturn) {
  const CsvRow row = csv_parse_line("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(Csv, ParseUnterminatedQuoteThrows) {
  EXPECT_THROW((void)csv_parse_line("\"oops"), std::runtime_error);
}

TEST(Csv, RoundtripParseJoin) {
  const CsvRow original{"plain", "with,comma", "with \"quote\"", ""};
  const CsvRow reparsed = csv_parse_line(csv_join(original));
  EXPECT_EQ(reparsed, original);
}

TEST(Csv, FileRoundtrip) {
  const auto path = std::filesystem::temp_directory_path() / "mm_csv_test.csv";
  const std::vector<CsvRow> rows{
      {"bssid", "ssid", "lat", "lon"},
      {"00:11:22:33:44:55", "Cafe, The", "42.655", "-71.325"},
  };
  csv_write_file(path, rows);
  const auto read = csv_read_file(path);
  EXPECT_EQ(read, rows);
  std::filesystem::remove(path);
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW((void)csv_read_file("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(Csv, ReadSkipsBlankLines) {
  const auto path = std::filesystem::temp_directory_path() / "mm_csv_blank.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a,b\n\nc,d\n", f);
    std::fclose(f);
  }
  const auto rows = csv_read_file(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "c");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mm::util
