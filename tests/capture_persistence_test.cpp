#include "capture/persistence.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fault/fault_injector.h"

namespace mm::capture {
namespace {

const net80211::MacAddress kDev = *net80211::MacAddress::parse("00:16:6f:00:00:0a");
const net80211::MacAddress kAp1 = *net80211::MacAddress::parse("00:1a:2b:00:00:01");
const net80211::MacAddress kAp2 = *net80211::MacAddress::parse("00:1a:2b:00:00:02");

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

ObservationStore make_populated_store() {
  ObservationStore store;
  store.record_probe_request(kDev, 1.5, std::string("HomeNet"));
  store.record_probe_request(kDev, 2.5, std::string("WorkNet"));
  store.record_contact(kAp1, kDev, 3.0, -72.5);
  store.record_contact(kAp1, kDev, 4.0, -70.25);
  store.record_contact(kAp2, kDev, 5.0, -80.0);
  store.record_beacon(kAp1, "NetOne", 6, 1.0, -55.0);
  store.record_beacon(kAp1, "NetOne", 6, 2.0, -54.5);
  return store;
}

TEST(Persistence, ExactRoundtrip) {
  const auto path = temp_file("mm_obs_roundtrip.csv");
  const ObservationStore original = make_populated_store();
  const auto saved = save_observations(original, path);
  ASSERT_TRUE(saved.ok()) << saved.error();
  EXPECT_EQ(saved.value().attempts, 1);
  auto loaded_result = load_observations(path);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.error();
  const ObservationStore& loaded = loaded_result.value().store;
  EXPECT_EQ(loaded_result.value().stats.quarantined, 0u);
  EXPECT_EQ(loaded_result.value().stats.rows_loaded,
            loaded_result.value().stats.rows_total);

  ASSERT_EQ(loaded.device_count(), original.device_count());
  const DeviceRecord* orig_rec = original.device(kDev);
  const DeviceRecord* load_rec = loaded.device(kDev);
  ASSERT_NE(load_rec, nullptr);
  EXPECT_EQ(load_rec->probe_requests, orig_rec->probe_requests);
  EXPECT_DOUBLE_EQ(load_rec->first_seen, orig_rec->first_seen);
  EXPECT_DOUBLE_EQ(load_rec->last_seen, orig_rec->last_seen);
  EXPECT_EQ(load_rec->directed_ssids, orig_rec->directed_ssids);
  ASSERT_EQ(load_rec->contacts.size(), 2u);
  const ApContact& c1 = load_rec->contacts.at(kAp1);
  EXPECT_EQ(c1.count, 2u);
  EXPECT_DOUBLE_EQ(c1.first_seen, 3.0);
  EXPECT_DOUBLE_EQ(c1.last_seen, 4.0);
  EXPECT_DOUBLE_EQ(c1.last_rssi_dbm, -70.25);
  EXPECT_EQ(c1.times, (std::vector<sim::SimTime>{3.0, 4.0}));

  // Gamma queries behave identically.
  EXPECT_EQ(loaded.gamma(kDev), original.gamma(kDev));
  EXPECT_EQ(loaded.gamma(kDev, {2.9, 3.1}), original.gamma(kDev, {2.9, 3.1}));
  EXPECT_EQ(loaded.session_gammas(5.0).size(), original.session_gammas(5.0).size());

  // Sightings too.
  ASSERT_EQ(loaded.ap_sightings().size(), 1u);
  EXPECT_EQ(loaded.ap_sightings().at(kAp1).beacons, 2u);
  EXPECT_EQ(loaded.ap_sightings().at(kAp1).ssid, "NetOne");

  // Atomicity: no leftover temp file after a successful save.
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::filesystem::remove(path);
}

TEST(Persistence, EmptyStoreRoundtrip) {
  const auto path = temp_file("mm_obs_empty.csv");
  ASSERT_TRUE(save_observations(ObservationStore{}, path).ok());
  auto loaded = load_observations(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().store.device_count(), 0u);
  EXPECT_TRUE(loaded.value().store.ap_sightings().empty());
  std::filesystem::remove(path);
}

TEST(Persistence, SsidWithCommaSurvives) {
  const auto path = temp_file("mm_obs_comma.csv");
  ObservationStore store;
  store.record_beacon(kAp1, "Cafe, The \"Best\"", 11, 1.0, -60.0);
  ASSERT_TRUE(save_observations(store, path).ok());
  auto loaded = load_observations(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().store.ap_sightings().at(kAp1).ssid, "Cafe, The \"Best\"");
  std::filesystem::remove(path);
}

TEST(Persistence, UnknownTagQuarantined) {
  const auto path = temp_file("mm_obs_badtag.csv");
  {
    std::ofstream out(path);
    out << "gibberish,1,2,3\n";
    out << "sighting,00:1a:2b:00:00:01,Net,6,2,-55\n";
  }
  auto loaded = load_observations(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().stats.quarantined, 1u);
  EXPECT_EQ(loaded.value().stats.rows_loaded, 1u);
  EXPECT_EQ(loaded.value().store.ap_sightings().size(), 1u);
  ASSERT_FALSE(loaded.value().stats.sample_errors.empty());
  EXPECT_NE(loaded.value().stats.sample_errors.front().find("unknown row tag"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST(Persistence, OrphanContactQuarantined) {
  const auto path = temp_file("mm_obs_orphan.csv");
  {
    std::ofstream out(path);
    out << "contact,00:16:6f:00:00:0a,00:1a:2b:00:00:01,1,2,1,-70,1\n";
  }
  auto loaded = load_observations(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().stats.quarantined, 1u);
  EXPECT_EQ(loaded.value().store.device_count(), 0u);
  std::filesystem::remove(path);
}

TEST(Persistence, MissingFileIsFailure) {
  const auto loaded = load_observations("/nonexistent/obs.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_FALSE(loaded.error().empty());
}

TEST(Persistence, TornTailQuarantinesOnlyDamagedLine) {
  const auto path = temp_file("mm_obs_torn.csv");
  ASSERT_TRUE(save_observations(make_populated_store(), path).ok());
  // Chop the file mid-final-line, as an interrupted non-atomic write would:
  // the last row ("sighting,...,-54.5\n") is left ending in a bare "-".
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 5);
  auto loaded = load_observations(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().stats.quarantined, 1u);
  EXPECT_EQ(loaded.value().stats.rows_loaded, loaded.value().stats.rows_total - 1);
  // The intact prefix (device + contacts) survived.
  EXPECT_EQ(loaded.value().store.device_count(), 1u);
  std::filesystem::remove(path);
}

TEST(Persistence, GarbageRowsDoNotPoisonLoad) {
  const auto path = temp_file("mm_obs_garbage.csv");
  {
    std::ofstream out(path);
    out << "device,00:16:6f:00:00:0a,1.5,5,2,HomeNet\n";
    out << "device,zz:zz:zz:zz:zz:zz,1,2,3,\n";                          // bad MAC
    out << "contact,00:16:6f:00:00:0a,00:1a:2b:00:00:01,x,4,2,-70,3;4\n"; // bad number
    out << "contact,00:16:6f:00:00:0a,00:1a:2b:00:00:02,3,5,1,-80,3;oops\n";
    out << "sighting,00:1a:2b:00:00:01,Net\n";                            // short row
    out << "contact,00:16:6f:00:00:0a,00:1a:2b:00:00:03,3,5,1,-80,3\n";   // good
  }
  auto loaded = load_observations(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().stats.rows_total, 6u);
  EXPECT_EQ(loaded.value().stats.quarantined, 4u);
  EXPECT_EQ(loaded.value().stats.rows_loaded, 2u);
  const DeviceRecord* rec = loaded.value().store.device(kDev);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->contacts.size(), 1u);
  std::filesystem::remove(path);
}

TEST(Persistence, TornWriteLeavesPreviousSnapshotIntact) {
  const auto path = temp_file("mm_obs_crashsafe.csv");
  const ObservationStore first = make_populated_store();
  ASSERT_TRUE(save_observations(first, path).ok());

  // Second save "crashes" mid-write: the injector tears the temp file and
  // the save fails before rename.
  ObservationStore second = make_populated_store();
  second.record_contact(kAp2, kDev, 99.0, -60.0);
  fault::FaultPlan plan;
  plan.torn_write_rate = 1.0;
  fault::FaultInjector injector(plan);
  SaveOptions options;
  options.injector = &injector;
  const auto saved = save_observations(second, path, options);
  EXPECT_FALSE(saved.ok());
  EXPECT_NE(saved.error().find("torn write"), std::string::npos);
  EXPECT_EQ(injector.stats().files_torn, 1u);

  // The destination still holds the first snapshot, fully loadable.
  auto loaded = load_observations(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().stats.quarantined, 0u);
  EXPECT_EQ(loaded.value().store.device(kDev)->contacts.at(kAp2).count, 1u);
  std::filesystem::remove(path);
  std::filesystem::remove(path.string() + ".tmp");
}

TEST(Persistence, SaveToUnwritableDirectoryFailsAfterRetries) {
  SaveOptions options;
  options.max_attempts = 2;
  options.backoff_s = 0.0;
  const auto saved =
      save_observations(ObservationStore{}, "/nonexistent/dir/obs.csv", options);
  EXPECT_FALSE(saved.ok());
  EXPECT_NE(saved.error().find("2 attempts"), std::string::npos);
}

TEST(Checkpointer, WritesAtIntervalAndCountsFailures) {
  const auto path = temp_file("mm_obs_checkpoint.csv");
  std::filesystem::remove(path);
  const ObservationStore store = make_populated_store();
  ObservationCheckpointer cp(&store, path, /*interval_s=*/10.0);

  EXPECT_FALSE(cp.maybe_checkpoint(0.0));   // anchors the clock only
  EXPECT_FALSE(cp.maybe_checkpoint(5.0));   // within the interval
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(cp.maybe_checkpoint(10.0));
  EXPECT_EQ(cp.checkpoints_written(), 1u);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(cp.maybe_checkpoint(15.0));
  EXPECT_TRUE(cp.maybe_checkpoint(20.5));
  EXPECT_EQ(cp.checkpoints_written(), 2u);
  EXPECT_EQ(cp.failures(), 0u);

  // A checkpoint loads back to the full store.
  auto loaded = load_observations(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().store.device_count(), store.device_count());
  std::filesystem::remove(path);

  SaveOptions bad;
  bad.max_attempts = 1;
  ObservationCheckpointer broken(&store, "/nonexistent/dir/cp.csv", 1.0, bad);
  EXPECT_FALSE(broken.checkpoint_now().ok());
  EXPECT_EQ(broken.failures(), 1u);
}

}  // namespace
}  // namespace mm::capture
