#include "capture/persistence.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace mm::capture {
namespace {

const net80211::MacAddress kDev = *net80211::MacAddress::parse("00:16:6f:00:00:0a");
const net80211::MacAddress kAp1 = *net80211::MacAddress::parse("00:1a:2b:00:00:01");
const net80211::MacAddress kAp2 = *net80211::MacAddress::parse("00:1a:2b:00:00:02");

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

ObservationStore make_populated_store() {
  ObservationStore store;
  store.record_probe_request(kDev, 1.5, std::string("HomeNet"));
  store.record_probe_request(kDev, 2.5, std::string("WorkNet"));
  store.record_contact(kAp1, kDev, 3.0, -72.5);
  store.record_contact(kAp1, kDev, 4.0, -70.25);
  store.record_contact(kAp2, kDev, 5.0, -80.0);
  store.record_beacon(kAp1, "NetOne", 6, 1.0, -55.0);
  store.record_beacon(kAp1, "NetOne", 6, 2.0, -54.5);
  return store;
}

TEST(Persistence, ExactRoundtrip) {
  const auto path = temp_file("mm_obs_roundtrip.csv");
  const ObservationStore original = make_populated_store();
  save_observations(original, path);
  const ObservationStore loaded = load_observations(path);

  ASSERT_EQ(loaded.device_count(), original.device_count());
  const DeviceRecord* orig_rec = original.device(kDev);
  const DeviceRecord* load_rec = loaded.device(kDev);
  ASSERT_NE(load_rec, nullptr);
  EXPECT_EQ(load_rec->probe_requests, orig_rec->probe_requests);
  EXPECT_DOUBLE_EQ(load_rec->first_seen, orig_rec->first_seen);
  EXPECT_DOUBLE_EQ(load_rec->last_seen, orig_rec->last_seen);
  EXPECT_EQ(load_rec->directed_ssids, orig_rec->directed_ssids);
  ASSERT_EQ(load_rec->contacts.size(), 2u);
  const ApContact& c1 = load_rec->contacts.at(kAp1);
  EXPECT_EQ(c1.count, 2u);
  EXPECT_DOUBLE_EQ(c1.first_seen, 3.0);
  EXPECT_DOUBLE_EQ(c1.last_seen, 4.0);
  EXPECT_DOUBLE_EQ(c1.last_rssi_dbm, -70.25);
  EXPECT_EQ(c1.times, (std::vector<sim::SimTime>{3.0, 4.0}));

  // Gamma queries behave identically.
  EXPECT_EQ(loaded.gamma(kDev), original.gamma(kDev));
  EXPECT_EQ(loaded.gamma(kDev, {2.9, 3.1}), original.gamma(kDev, {2.9, 3.1}));
  EXPECT_EQ(loaded.session_gammas(5.0).size(), original.session_gammas(5.0).size());

  // Sightings too.
  ASSERT_EQ(loaded.ap_sightings().size(), 1u);
  EXPECT_EQ(loaded.ap_sightings().at(kAp1).beacons, 2u);
  EXPECT_EQ(loaded.ap_sightings().at(kAp1).ssid, "NetOne");
  std::filesystem::remove(path);
}

TEST(Persistence, EmptyStoreRoundtrip) {
  const auto path = temp_file("mm_obs_empty.csv");
  save_observations(ObservationStore{}, path);
  const ObservationStore loaded = load_observations(path);
  EXPECT_EQ(loaded.device_count(), 0u);
  EXPECT_TRUE(loaded.ap_sightings().empty());
  std::filesystem::remove(path);
}

TEST(Persistence, SsidWithCommaSurvives) {
  const auto path = temp_file("mm_obs_comma.csv");
  ObservationStore store;
  store.record_beacon(kAp1, "Cafe, The \"Best\"", 11, 1.0, -60.0);
  save_observations(store, path);
  const ObservationStore loaded = load_observations(path);
  EXPECT_EQ(loaded.ap_sightings().at(kAp1).ssid, "Cafe, The \"Best\"");
  std::filesystem::remove(path);
}

TEST(Persistence, UnknownTagThrows) {
  const auto path = temp_file("mm_obs_badtag.csv");
  {
    std::ofstream out(path);
    out << "gibberish,1,2,3\n";
  }
  EXPECT_THROW((void)load_observations(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Persistence, ContactWithoutDeviceThrows) {
  const auto path = temp_file("mm_obs_orphan.csv");
  {
    std::ofstream out(path);
    out << "contact,00:16:6f:00:00:0a,00:1a:2b:00:00:01,1,2,1,-70,1\n";
  }
  EXPECT_THROW((void)load_observations(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Persistence, MissingFileThrows) {
  EXPECT_THROW((void)load_observations("/nonexistent/obs.csv"), std::runtime_error);
}

}  // namespace
}  // namespace mm::capture
