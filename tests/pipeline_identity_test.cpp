// Chimera over Riptide: identity resolution on the live path must equal the
// batch path exactly.
//
// The contract (live_tracker.h, "Chimera identity surface"): per-shard
// summary boards are pure projections of the shard store slices, each MAC
// lives in exactly one shard, and resolve() is ingestion-order-independent —
// so after stop(), LiveTracker::resolve_identities() over a capture pushed
// through the rings equals marauder::resolve_identities() over the batch
// store, identity for identity. Holds clean and under a fault plan (same
// plan + seed damages both paths identically).
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "capture/replay.h"
#include "capture/sniffer.h"
#include "fault/fault_injector.h"
#include "marauder/ap_database.h"
#include "marauder/identity.h"
#include "pipeline/live_feed.h"
#include "pipeline/live_tracker.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"

namespace mm::pipeline {
namespace {

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << a << " != " << b << " (bitwise)";
}

struct RotatingScenario {
  std::vector<sim::ApTruth> truth;
  std::filesystem::path pcap_path;
};

/// A population of MAC-rotating devices: directed SSIDs for some (the legacy
/// signal), pure counter/Gamma evidence for the anonymized ones, so batch ==
/// live must hold across every evidence path.
RotatingScenario record_rotating_capture(const char* pcap_name) {
  RotatingScenario s;
  sim::CampusConfig campus;
  campus.seed = 9090;
  campus.num_aps = 80;
  campus.half_extent_m = 220.0;
  s.truth = sim::generate_campus_aps(campus);

  sim::World world({.seed = 31, .propagation = nullptr});
  sim::populate_world(world, s.truth, /*beacons_enabled=*/true);

  const std::vector<geo::Vec2> positions = {
      {40.0, -20.0}, {-60.0, 30.0}, {10.0, 70.0}, {-30.0, -50.0}};
  for (std::size_t i = 0; i < positions.size(); ++i) {
    std::array<std::uint8_t, 6> bytes{0x00, 0x16, 0x6f, 0x00, 0x05,
                                      static_cast<std::uint8_t>(i + 1)};
    sim::MobileConfig mc;
    mc.mac = net80211::MacAddress(bytes);
    mc.mobility = std::make_shared<sim::StaticPosition>(positions[i]);
    mc.profile.probes = true;
    mc.profile.scan_interval_s = 4.0;
    mc.profile.mac_rotation_interval_s = 7.0;
    if (i % 2 == 0) {
      mc.profile.directed_ssids = {"home-" + std::to_string(i)};
    }
    world.add_mobile(std::make_unique<sim::MobileDevice>(mc));
  }

  capture::ObservationStore store;
  capture::SnifferConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.antenna_height_m = 20.0;
  cfg.pcap_path = std::filesystem::temp_directory_path() / pcap_name;
  {
    capture::Sniffer sniffer(cfg, &store);
    sniffer.attach(world);
    world.run_until(30.0);
  }
  s.pcap_path = *cfg.pcap_path;
  return s;
}

marauder::ResolverOptions full_resolver() {
  marauder::ResolverOptions options;
  options.signals = marauder::ResolverSignals::all();
  return options;
}

void expect_maps_equal(const marauder::IdentityMap& live,
                       const marauder::IdentityMap& batch) {
  ASSERT_EQ(live.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE("identity " + std::to_string(i));
    EXPECT_EQ(live.identities[i].id, batch.identities[i].id);
    EXPECT_EQ(live.identities[i].macs, batch.identities[i].macs);
    EXPECT_EQ(live.identities[i].fingerprint, batch.identities[i].fingerprint);
    EXPECT_TRUE(bits_equal(live.identities[i].first_seen, batch.identities[i].first_seen));
    EXPECT_TRUE(bits_equal(live.identities[i].last_seen, batch.identities[i].last_seen));
  }
  EXPECT_EQ(live.by_mac, batch.by_mac);
}

void expect_live_resolution_matches_batch(const RotatingScenario& s,
                                          const marauder::ApDatabase& db,
                                          const fault::FaultPlan& plan) {
  // Batch path.
  capture::ObservationStore batch_store;
  capture::ReplayOptions replay_options;
  replay_options.fault_plan = plan;
  const auto replayed = capture::replay_pcap(s.pcap_path, batch_store, replay_options);
  ASSERT_TRUE(replayed.ok()) << replayed.error();
  const marauder::IdentityMap batch =
      marauder::resolve_identities(batch_store, full_resolver());

  // Live path, lossless policy.
  LiveTrackerConfig config;
  config.shards = 4;
  config.ring_capacity = 1 << 10;
  config.drop_policy = DropPolicy::kBlock;
  LiveTracker tracker(db, config);
  tracker.start();
  LiveFeedOptions feed_options;
  feed_options.fault_plan = plan;
  const auto fed = feed_pcap(s.pcap_path, tracker, feed_options);
  tracker.stop();
  ASSERT_TRUE(fed.ok()) << fed.error();
  ASSERT_EQ(fed.value().dropped, 0u);

  const marauder::IdentityMap live = tracker.resolve_identities(full_resolver());
  expect_maps_equal(live, batch);

  // The rotation actually produced pseudonyms, and at least one identity
  // re-linked several of them — otherwise this test proves nothing.
  EXPECT_GT(batch_store.device_count(), 4u);
  std::size_t best = 0;
  for (const auto& identity : batch.identities) best = std::max(best, identity.macs.size());
  EXPECT_GE(best, 2u);
}

TEST(PipelineIdentity, LiveResolutionEqualsBatchOnCleanCapture) {
  const RotatingScenario s = record_rotating_capture("mm_pipeline_identity.pcap");
  const auto db = marauder::ApDatabase::from_truth(s.truth, true);
  expect_live_resolution_matches_batch(s, db, fault::FaultPlan{});
  std::filesystem::remove(s.pcap_path);
}

TEST(PipelineIdentity, LiveResolutionEqualsBatchUnderFaultPlan) {
  const RotatingScenario s = record_rotating_capture("mm_pipeline_identity_fault.pcap");
  const auto db = marauder::ApDatabase::from_truth(s.truth, true);
  for (const double severity : {0.05, 0.2}) {
    SCOPED_TRACE("severity " + std::to_string(severity));
    fault::FaultPlan plan;
    plan.corrupt_rate = severity;
    plan.drop_rate = severity / 2.0;
    plan.duplicate_rate = severity / 4.0;
    plan.seed = 77;
    expect_live_resolution_matches_batch(s, db, plan);
  }
  std::filesystem::remove(s.pcap_path);
}

TEST(PipelineIdentity, LocateIdentityReturnsFreshestAliasPosition) {
  const RotatingScenario s = record_rotating_capture("mm_pipeline_identity_locate.pcap");
  const auto db = marauder::ApDatabase::from_truth(s.truth, true);

  LiveTrackerConfig config;
  config.shards = 4;
  config.drop_policy = DropPolicy::kBlock;
  LiveTracker tracker(db, config);
  tracker.start();
  const auto fed = feed_pcap(s.pcap_path, tracker);
  tracker.stop();
  ASSERT_TRUE(fed.ok()) << fed.error();

  const marauder::IdentityMap map = tracker.resolve_identities(full_resolver());
  std::size_t identities_located = 0;
  for (const auto& identity : map.identities) {
    std::optional<LivePosition> freshest;
    for (const auto& mac : identity.macs) {
      const auto position = tracker.locate(mac);
      if (position && (!freshest || position->updated_at_s > freshest->updated_at_s)) {
        freshest = position;
      }
    }
    const auto got = tracker.locate_identity(identity);
    ASSERT_EQ(got.has_value(), freshest.has_value());
    if (!got) continue;
    ++identities_located;
    EXPECT_TRUE(bits_equal(got->x_m, freshest->x_m));
    EXPECT_TRUE(bits_equal(got->y_m, freshest->y_m));
    EXPECT_TRUE(bits_equal(got->updated_at_s, freshest->updated_at_s));
  }
  EXPECT_GT(identities_located, 0u);
  std::filesystem::remove(s.pcap_path);
}

}  // namespace
}  // namespace mm::pipeline
