// Deterministic fuzz tests for the Phoenix WAL decoder, in the style of the
// net80211 parser fuzzers: recovery feeds read_wal_segment_bytes whatever a
// crash left on disk, so the decoder must be total — arbitrary bytes produce
// a (possibly empty, possibly torn) prefix of records, never a crash, an
// over-read, or an allocation driven by a hostile length field.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "durability/wal.h"
#include "util/rng.h"

namespace mm::durability {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

/// Builds one genuine segment file through the writer and returns its bytes.
std::vector<std::uint8_t> valid_segment_bytes(std::uint64_t records) {
  const auto dir = std::filesystem::temp_directory_path() / "mm_wal_fuzz_seed";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  WalWriterOptions options;
  options.commit_every_records = 1;
  options.fsync_on_commit = false;
  WalWriter writer(dir, 1, options);
  for (std::uint64_t i = 0; i < records; ++i) {
    WalRecord record;
    record.seq = i + 1;
    record.event.kind = capture::FrameEventKind::kContact;
    record.event.device = net80211::MacAddress::from_u64(0xaa0000000000u + i);
    record.event.ap = net80211::MacAddress::from_u64(0xbb0000000000u + i);
    record.event.time_s = static_cast<double>(i);
    record.event.rssi_dbm = -50.0;
    EXPECT_TRUE(writer.append(record).ok());
  }
  EXPECT_TRUE(writer.seal().ok());
  const auto segments = list_wal_segments(dir);
  EXPECT_EQ(segments.size(), 1u);
  std::ifstream in(segments[0], std::ios::binary);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  std::filesystem::remove_all(dir);
  return bytes;
}

TEST(WalFuzz, RandomBuffersNeverCrash) {
  util::Rng rng(0xa15eedu);
  int headers_ok = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 512));
    const auto bytes = random_bytes(rng, len);
    const SegmentReadResult result = read_wal_segment_bytes(bytes);
    headers_ok += result.header_ok ? 1 : 0;
    EXPECT_TRUE(result.records.empty());  // random bytes never pass the CRCs
  }
  // An 8-byte magic + header CRC makes a random hit essentially impossible.
  EXPECT_EQ(headers_ok, 0);
}

TEST(WalFuzz, MutatedValidSegmentsDecodeToAPrefix) {
  util::Rng rng(0x90e1fu);
  const auto base = valid_segment_bytes(24);
  // The mutated decode may keep only records the CRC still vouches for, and
  // whatever survives must be an untouched prefix: ascending seqs from 1.
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = base;
    const int mutations = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    if (rng.bernoulli(0.3)) {
      bytes.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()))));
    }
    const SegmentReadResult result = read_wal_segment_bytes(bytes);
    std::uint64_t expect = 0;
    for (const WalRecord& record : result.records) {
      ASSERT_EQ(record.seq, ++expect);
    }
  }
}

TEST(WalFuzz, TruncationSweepIsTotal) {
  const auto full = valid_segment_bytes(6);
  for (std::size_t len = 0; len <= full.size(); ++len) {
    const std::vector<std::uint8_t> prefix(
        full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    const SegmentReadResult result = read_wal_segment_bytes(prefix);
    if (len == full.size()) {
      EXPECT_TRUE(result.header_ok);
      EXPECT_FALSE(result.torn);
      EXPECT_EQ(result.records.size(), 6u);
    } else if (result.header_ok && len < full.size()) {
      // Any shorter prefix is torn (or empty), never silently complete.
      EXPECT_TRUE(result.torn || result.records.size() < 6u);
    }
  }
}

TEST(WalFuzz, HostileLengthFieldsAreFramesNotAllocations) {
  // A frame whose length field reads 0xffffffff (or anything past the
  // payload bound) must be treated as a torn tail, not a 4 GiB reserve.
  auto bytes = valid_segment_bytes(3);
  const std::size_t header = 28;
  std::memset(bytes.data() + header, 0xff, 4);
  const SegmentReadResult result = read_wal_segment_bytes(bytes);
  EXPECT_TRUE(result.header_ok);
  EXPECT_TRUE(result.torn);
  EXPECT_TRUE(result.records.empty());

  // Length zero is equally dead: progress must not stall into a spin.
  auto zero = valid_segment_bytes(3);
  std::memset(zero.data() + header, 0x00, 4);
  const SegmentReadResult zres = read_wal_segment_bytes(zero);
  EXPECT_TRUE(zres.torn);
  EXPECT_TRUE(zres.records.empty());
}

TEST(WalFuzz, RandomPayloadDecodeIsTotal) {
  util::Rng rng(0xc4c);
  WalRecord out;
  int accepted = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const auto payload = random_bytes(rng, kWalPayloadBytes);
    accepted += decode_wal_payload(payload, out) ? 1 : 0;
  }
  // kind and ssid_len validation reject most random payloads but not all;
  // the point is totality, not rejection rate.
  EXPECT_LT(accepted, 5000);
}

}  // namespace
}  // namespace mm::durability
