// Afterburner's core promise: the parallel offline stack is bit-for-bit
// identical to its serial twin at any thread count — locate_all (clean and
// under an active fault plan), AP-Rad's constraint generation, the
// Monte-Carlo theorem kernels, and the Gamma-memo cache. Run under TSan in
// CI alongside the pool contract tests.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/theorems.h"
#include "capture/sniffer.h"
#include "marauder/aprad.h"
#include "marauder/tracker.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"

namespace mm {
namespace {

using ResultMap = std::map<net80211::MacAddress, marauder::LocalizationResult>;

bool bit_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_same_results(const ResultMap& a, const ResultMap& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    ASSERT_EQ(ita->first, itb->first);
    const marauder::LocalizationResult& ra = ita->second;
    const marauder::LocalizationResult& rb = itb->second;
    EXPECT_EQ(ra.ok, rb.ok);
    EXPECT_EQ(ra.used_fallback, rb.used_fallback);
    EXPECT_EQ(ra.discs_rejected, rb.discs_rejected);
    EXPECT_EQ(ra.num_aps, rb.num_aps);
    EXPECT_TRUE(bit_equal(ra.estimate.x, rb.estimate.x)) << ita->first.to_string();
    EXPECT_TRUE(bit_equal(ra.estimate.y, rb.estimate.y)) << ita->first.to_string();
    ASSERT_EQ(ra.discs.size(), rb.discs.size());
    for (std::size_t i = 0; i < ra.discs.size(); ++i) {
      EXPECT_TRUE(bit_equal(ra.discs[i].center.x, rb.discs[i].center.x));
      EXPECT_TRUE(bit_equal(ra.discs[i].center.y, rb.discs[i].center.y));
      EXPECT_TRUE(bit_equal(ra.discs[i].radius, rb.discs[i].radius));
    }
  }
}

struct Capture {
  std::vector<sim::ApTruth> truth;
  capture::ObservationStore store;
};

/// Static devices scattered over a campus, one scan each, optionally through
/// a fault plan (corrupted evidence exercises the outlier-rejection path).
Capture make_capture(const fault::FaultPlan& plan = {}) {
  Capture c;
  sim::CampusConfig campus;
  campus.seed = 1717;
  campus.num_aps = 120;
  campus.half_extent_m = 280.0;
  c.truth = sim::generate_campus_aps(campus);

  sim::World world({.seed = 29, .propagation = nullptr});
  sim::populate_world(world, c.truth, /*beacons_enabled=*/false);

  std::vector<sim::MobileDevice*> devices;
  for (std::size_t i = 0; i < 12; ++i) {
    sim::MobileConfig mc;
    std::array<std::uint8_t, 6> bytes{0x00, 0x16, 0x6f, 0x00, 0x02,
                                      static_cast<std::uint8_t>(i + 1)};
    mc.mac = net80211::MacAddress(bytes);
    mc.profile.probes = false;
    const double x = -150.0 + 75.0 * static_cast<double>(i % 5);
    const double y = -100.0 + 100.0 * static_cast<double>(i / 5);
    mc.mobility = std::make_shared<sim::StaticPosition>(geo::Vec2{x, y});
    devices.push_back(world.add_mobile(std::make_unique<sim::MobileDevice>(mc)));
  }

  capture::SnifferConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.antenna_height_m = 20.0;
  cfg.fault_plan = plan;
  capture::Sniffer sniffer(cfg, &c.store);
  sniffer.attach(world);
  for (std::size_t i = 0; i < devices.size(); ++i) {
    sim::MobileDevice* dev = devices[i];
    world.queue().schedule(1.0 + 0.25 * static_cast<double>(i),
                           [dev] { dev->trigger_scan(); });
  }
  world.run_until(6.0);
  return c;
}

ResultMap locate_all_with(const Capture& c, std::size_t threads, bool cache,
                          bool reject_outliers, bool soa_arena = true) {
  marauder::TrackerOptions options;
  options.algorithm = marauder::Algorithm::kMLoc;
  options.threads = threads;
  options.gamma_cache = cache;
  options.mloc.reject_outliers = reject_outliers;
  options.soa_arena = soa_arena;
  marauder::Tracker tracker(marauder::ApDatabase::from_truth(c.truth, true), options);
  return tracker.locate_all(c.store);
}

TEST(AfterburnerDeterminism, LocateAllBitIdenticalAcrossThreadCounts) {
  const Capture c = make_capture();
  ASSERT_GE(c.store.device_count(), 10u);
  const ResultMap serial = locate_all_with(c, 1, true, false);
  ASSERT_FALSE(serial.empty());
  expect_same_results(serial, locate_all_with(c, 2, true, false));
  expect_same_results(serial, locate_all_with(c, 8, true, false));
}

TEST(AfterburnerDeterminism, GammaCacheDoesNotChangeResults) {
  const Capture c = make_capture();
  expect_same_results(locate_all_with(c, 1, false, false),
                      locate_all_with(c, 8, true, false));
}

TEST(AfterburnerDeterminism, LocateAllIdenticalUnderFaultPlan) {
  // Corrupted frames make inconsistent disc sets likely, so this run drives
  // the greedy rejection path (distance-matrix code) across thread counts.
  fault::FaultPlan plan;
  plan.corrupt_rate = 0.08;
  plan.duplicate_rate = 0.05;
  const Capture c = make_capture(plan);
  ASSERT_GE(c.store.device_count(), 8u);
  const ResultMap serial = locate_all_with(c, 1, true, true);
  ASSERT_FALSE(serial.empty());
  expect_same_results(serial, locate_all_with(c, 2, true, true));
  expect_same_results(serial, locate_all_with(c, 8, true, true));
}

TEST(AfterburnerDeterminism, ApRadRadiiIdenticalAcrossThreadCounts) {
  const Capture c = make_capture();
  const auto gammas = c.store.all_gammas();
  ASSERT_FALSE(gammas.empty());
  const auto db = marauder::ApDatabase::from_truth(c.truth, false);

  auto radii_at = [&](std::size_t threads) {
    marauder::ApRadOptions options;
    options.threads = threads;
    return marauder::aprad_estimate_radii(db, gammas, options);
  };
  const auto serial = radii_at(1);
  ASSERT_FALSE(serial.empty());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto parallel = radii_at(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    auto its = serial.begin();
    auto itp = parallel.begin();
    for (; its != serial.end(); ++its, ++itp) {
      EXPECT_EQ(its->first, itp->first);
      EXPECT_TRUE(bit_equal(its->second, itp->second)) << its->first.to_string();
    }
  }
}

TEST(AfterburnerDeterminism, MonteCarloKernelsBitIdenticalAcrossThreadCounts) {
  const double serial2 = analysis::thm2_monte_carlo_area(6, 1.0, 500, 77, 1);
  EXPECT_TRUE(bit_equal(serial2, analysis::thm2_monte_carlo_area(6, 1.0, 500, 77, 2)));
  EXPECT_TRUE(bit_equal(serial2, analysis::thm2_monte_carlo_area(6, 1.0, 500, 77, 8)));

  const auto serial3 = analysis::thm3_monte_carlo(6, 1.0, 0.9, 500, 77, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto parallel = analysis::thm3_monte_carlo(6, 1.0, 0.9, 500, 77, threads);
    EXPECT_TRUE(bit_equal(serial3.mean_area, parallel.mean_area));
    EXPECT_TRUE(bit_equal(serial3.coverage_probability, parallel.coverage_probability));
  }
}

TEST(SlipstreamDeterminism, FullMatrixBitIdenticalUnderFaultPlan) {
  // The Slipstream contract, exhaustively: thread count x Gamma-cache x
  // arena/legacy path all produce the bit-identical result map, under a
  // fault plan so the outlier-rejection scratch path is exercised too. The
  // reference is the serial, uncached, legacy per-device loop — the
  // configuration closest to a hand-written for loop.
  fault::FaultPlan plan;
  plan.corrupt_rate = 0.08;
  plan.duplicate_rate = 0.05;
  const Capture c = make_capture(plan);
  ASSERT_GE(c.store.device_count(), 8u);
  const ResultMap reference =
      locate_all_with(c, 1, /*cache=*/false, /*reject_outliers=*/true, /*soa_arena=*/false);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    for (const bool cache : {false, true}) {
      for (const bool soa : {false, true}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " cache=" + std::to_string(cache) + " soa=" + std::to_string(soa));
        expect_same_results(reference, locate_all_with(c, threads, cache, true, soa));
      }
    }
  }
}

TEST(SlipstreamCacheGate, MemoDisengagesOnLowDuplication) {
  // Every device hears its own disjoint AP triple: zero duplicate Gammas, so
  // the batch must stay below gamma_cache_min_duplicate_ratio and never
  // touch the shared memo (the counters stay zero), while still grouping —
  // trivially — and producing per-device results.
  sim::CampusConfig campus;
  campus.seed = 55;
  campus.num_aps = 40;
  const auto truth = sim::generate_campus_aps(campus);

  capture::ObservationStore store;
  for (std::size_t d = 0; d < 10; ++d) {
    const auto mac = net80211::MacAddress::from_u64(0x0016f0002000ULL + d);
    for (std::size_t k = 0; k < 3; ++k) {
      store.record_contact(truth[d * 3 + k].bssid, mac, 1.0, -55.0);
    }
  }

  marauder::TrackerOptions options;
  options.algorithm = marauder::Algorithm::kMLoc;
  marauder::Tracker tracker(marauder::ApDatabase::from_truth(truth, true), options);
  marauder::LocateAllProfile profile;
  const ResultMap results = tracker.locate_all(store, {}, &profile);
  ASSERT_EQ(results.size(), 10u);
  EXPECT_EQ(profile.devices, 10u);
  EXPECT_EQ(profile.unique_gammas, 10u);
  EXPECT_EQ(profile.duplicate_ratio, 0.0);
  EXPECT_FALSE(profile.cache_engaged);

  const auto stats = tracker.gamma_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_FALSE(stats.engaged);
}

TEST(AfterburnerDeterminism, GammaCacheHitsOnSharedGammasAndStaysExact) {
  // Two co-located device groups: every device in a group hears the same
  // APs, so each group costs one M-Loc solve and the rest are cache hits.
  sim::CampusConfig campus;
  campus.seed = 55;
  campus.num_aps = 40;
  const auto truth = sim::generate_campus_aps(campus);

  capture::ObservationStore store;
  for (std::size_t d = 0; d < 10; ++d) {
    const auto mac = net80211::MacAddress::from_u64(0x0016f0001000ULL + d);
    const std::size_t base = (d % 2) * 7;
    for (std::size_t k = 0; k < 4; ++k) {
      store.record_contact(truth[base + k].bssid, mac, 1.0, -55.0);
    }
  }

  marauder::TrackerOptions options;
  options.algorithm = marauder::Algorithm::kMLoc;
  marauder::Tracker cached(marauder::ApDatabase::from_truth(truth, true), options);
  marauder::LocateAllProfile profile;
  const ResultMap with_cache = cached.locate_all(store, {}, &profile);
  const auto stats = cached.gamma_cache_stats();
  EXPECT_EQ(stats.misses, 2u);  // one per distinct Gamma
  EXPECT_EQ(stats.hits, 8u);
  EXPECT_TRUE(stats.engaged);  // 8/10 duplicates clears the 5% gate easily
  EXPECT_EQ(stats.duplicate_ratio, 0.8);
  EXPECT_EQ(profile.unique_gammas, 2u);
  EXPECT_TRUE(profile.cache_engaged);

  // A second batch answers every device from the cross-call memo.
  const ResultMap second = cached.locate_all(store);
  expect_same_results(with_cache, second);
  const auto stats2 = cached.gamma_cache_stats();
  EXPECT_EQ(stats2.misses, 2u);
  EXPECT_EQ(stats2.hits, 18u);

  options.gamma_cache = false;
  marauder::Tracker uncached(marauder::ApDatabase::from_truth(truth, true), options);
  expect_same_results(with_cache, uncached.locate_all(store));
}

}  // namespace
}  // namespace mm
