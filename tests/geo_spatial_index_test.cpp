// Property tests pinning Atlas to its oracle: a brute-force scan in
// ascending-id order with the same predicates. Whatever the cell size, the
// point cloud, or the query, the grid must return byte-for-byte what the
// scan returns — that equality is what every indexed hot path in the system
// leans on.
#include "geo/spatial_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mm::geo {
namespace {

using Id = SpatialIndex::Id;

std::vector<Id> brute_disc(const std::vector<Vec2>& points, Vec2 center, double radius) {
  std::vector<Id> out;
  if (!(radius >= 0.0)) return out;  // NaN/negative: empty, like the index
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].distance_to(center) <= radius) out.push_back(i);
  }
  return out;
}

std::vector<Id> brute_range(const std::vector<Vec2>& points, Vec2 lo, Vec2 hi) {
  std::vector<Id> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Vec2& p = points[i];
    if (p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y) out.push_back(i);
  }
  return out;
}

std::vector<Id> brute_nearest(const std::vector<Vec2>& points, Vec2 center,
                              std::size_t k) {
  std::vector<std::pair<double, Id>> ranked;
  for (std::size_t i = 0; i < points.size(); ++i) {
    ranked.emplace_back(points[i].distance_to(center), i);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<Id> out;
  for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) out.push_back(ranked[i].second);
  return out;
}

TEST(SpatialIndex, RejectsBadCellSize) {
  EXPECT_THROW(SpatialIndex(0.0), std::invalid_argument);
  EXPECT_THROW(SpatialIndex(-3.0), std::invalid_argument);
  EXPECT_THROW(SpatialIndex(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(SpatialIndex(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(SpatialIndex, EmptyIndexReturnsEmpty) {
  const SpatialIndex index(10.0);
  EXPECT_TRUE(index.empty());
  EXPECT_TRUE(index.query_disc({0.0, 0.0}, 1e9).empty());
  EXPECT_TRUE(index.query_range({-1e9, -1e9}, {1e9, 1e9}).empty());
  EXPECT_TRUE(index.nearest_k({0.0, 0.0}, 5).empty());
}

TEST(SpatialIndex, DuplicateIdThrows) {
  SpatialIndex index(10.0);
  index.insert(7, {1.0, 2.0});
  EXPECT_THROW(index.insert(7, {3.0, 4.0}), std::invalid_argument);
  EXPECT_EQ(index.size(), 1u);
}

TEST(SpatialIndex, CoincidentPointsAllReturnedAscending) {
  SpatialIndex index(5.0);
  const Vec2 p{12.5, -3.25};
  for (Id id : {9, 2, 5, 0, 7}) index.insert(id, p);  // insertion order scrambled
  const std::vector<Id> expect{0, 2, 5, 7, 9};
  EXPECT_EQ(index.query_disc(p, 0.0), expect);
  EXPECT_EQ(index.nearest_k(p, 5), expect);
  EXPECT_EQ(index.nearest_k({100.0, 100.0}, 3), (std::vector<Id>{0, 2, 5}));
}

TEST(SpatialIndex, ZeroRadiusHitsExactPointOnly) {
  SpatialIndex index(1.0);
  index.insert(0, {0.0, 0.0});
  index.insert(1, {0.0, 1e-12});
  EXPECT_EQ(index.query_disc({0.0, 0.0}, 0.0), (std::vector<Id>{0}));
}

TEST(SpatialIndex, PointsOnCellBoundaries) {
  // Points exactly on cell-grid lines (x or y a multiple of the cell size)
  // are the classic off-by-one-cell bug; the closed-disc predicate must win.
  const double cell = 10.0;
  SpatialIndex index(cell);
  std::vector<Vec2> points;
  Id id = 0;
  for (int ix = -3; ix <= 3; ++ix) {
    for (int iy = -3; iy <= 3; ++iy) {
      points.push_back({ix * cell, iy * cell});
      index.insert(id++, points.back());
    }
  }
  for (double radius : {0.0, 10.0, 14.142135623730951, 20.0, 35.0}) {
    EXPECT_EQ(index.query_disc({0.0, 0.0}, radius), brute_disc(points, {0.0, 0.0}, radius))
        << "radius " << radius;
  }
  EXPECT_EQ(index.query_range({-10.0, -10.0}, {10.0, 10.0}),
            brute_range(points, {-10.0, -10.0}, {10.0, 10.0}));
}

TEST(SpatialIndex, NegativeAndNanRadiusEmpty) {
  SpatialIndex index(10.0);
  index.insert(0, {0.0, 0.0});
  EXPECT_TRUE(index.query_disc({0.0, 0.0}, -1.0).empty());
  EXPECT_TRUE(index.query_disc({0.0, 0.0}, std::numeric_limits<double>::quiet_NaN()).empty());
}

TEST(SpatialIndex, EraseRemovesFromQueries) {
  SpatialIndex index(10.0);
  index.insert(0, {1.0, 1.0});
  index.insert(1, {2.0, 2.0});
  EXPECT_TRUE(index.erase(0));
  EXPECT_FALSE(index.erase(0));
  EXPECT_FALSE(index.contains(0));
  EXPECT_EQ(index.query_disc({0.0, 0.0}, 100.0), (std::vector<Id>{1}));
  EXPECT_EQ(index.nearest_k({0.0, 0.0}, 2), (std::vector<Id>{1}));
}

TEST(SpatialIndex, RandomizedAgainstBruteForce) {
  util::Rng rng(0xA71A5);
  for (int round = 0; round < 30; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 200));
    const double extent = rng.uniform(5.0, 2000.0);
    const double cell = rng.uniform(0.5, 300.0);
    std::vector<Vec2> points;
    points.reserve(n);
    SpatialIndex index(cell);
    for (std::size_t i = 0; i < n; ++i) {
      Vec2 p{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
      if (!points.empty() && rng.bernoulli(0.1)) p = points.back();  // coincident
      points.push_back(p);
      index.insert(i, p);
    }
    for (int q = 0; q < 20; ++q) {
      const Vec2 center{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
      const double radius = rng.uniform(0.0, extent);
      EXPECT_EQ(index.query_disc(center, radius), brute_disc(points, center, radius))
          << "round " << round << " disc query " << q;
      const Vec2 a{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
      const Vec2 b{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
      const Vec2 lo{std::min(a.x, b.x), std::min(a.y, b.y)};
      const Vec2 hi{std::max(a.x, b.x), std::max(a.y, b.y)};
      EXPECT_EQ(index.query_range(lo, hi), brute_range(points, lo, hi))
          << "round " << round << " range query " << q;
      const std::size_t k = static_cast<std::size_t>(rng.uniform_int(0, 12));
      EXPECT_EQ(index.nearest_k(center, k), brute_nearest(points, center, k))
          << "round " << round << " nearest query " << q;
    }
  }
}

TEST(SpatialIndex, RandomizedEraseKeepsOracle) {
  util::Rng rng(0xE7A5E);
  std::vector<Vec2> points;
  std::vector<char> alive;
  SpatialIndex index(25.0);
  for (std::size_t i = 0; i < 150; ++i) {
    points.push_back({rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)});
    alive.push_back(1);
    index.insert(i, points.back());
  }
  for (int step = 0; step < 100; ++step) {
    const std::size_t victim = static_cast<std::size_t>(rng.uniform_int(0, 149));
    EXPECT_EQ(index.erase(victim), alive[victim] != 0);
    alive[victim] = 0;
    const Vec2 center{rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)};
    const double radius = rng.uniform(0.0, 400.0);
    std::vector<Id> expect;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (alive[i] != 0 && points[i].distance_to(center) <= radius) expect.push_back(i);
    }
    EXPECT_EQ(index.query_disc(center, radius), expect) << "step " << step;
  }
}

TEST(SpatialIndex, BuildFromMatchesIncrementalInsert) {
  util::Rng rng(0xB01D);
  std::vector<Vec2> points;
  for (int i = 0; i < 300; ++i) {
    points.push_back({rng.uniform(-1000.0, 1000.0), rng.uniform(-1000.0, 1000.0)});
  }
  const SpatialIndex built = SpatialIndex::build_from(points);
  SpatialIndex manual(built.cell_size_m());
  for (std::size_t i = 0; i < points.size(); ++i) manual.insert(i, points[i]);
  for (int q = 0; q < 25; ++q) {
    const Vec2 center{rng.uniform(-1000.0, 1000.0), rng.uniform(-1000.0, 1000.0)};
    const double radius = rng.uniform(0.0, 800.0);
    EXPECT_EQ(built.query_disc(center, radius), manual.query_disc(center, radius));
    EXPECT_EQ(built.query_disc(center, radius), brute_disc(points, center, radius));
  }
  EXPECT_TRUE(SpatialIndex::build_from({}).empty());
}

// The best-first nearest_k rewrite earns its keep on clustered clouds: tight
// blobs separated by wide empty gulfs, queried with large k and from centers
// far outside the occupied bounding box. The oracle stays the same brute
// (distance, id) sort — the traversal must never change a single bit.
TEST(SpatialIndex, NearestKClusteredOracle) {
  util::Rng rng(0xC1057E2);
  for (int round = 0; round < 8; ++round) {
    std::vector<Vec2> points;
    const int clusters = static_cast<int>(rng.uniform_int(2, 6));
    std::vector<Vec2> centers;
    for (int c = 0; c < clusters; ++c) {
      centers.push_back({rng.uniform(-50000.0, 50000.0), rng.uniform(-50000.0, 50000.0)});
    }
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(300, 900));
    for (std::size_t i = 0; i < n; ++i) {
      const Vec2 c = centers[i % centers.size()];
      points.push_back({c.x + rng.gaussian(0.0, 40.0), c.y + rng.gaussian(0.0, 40.0)});
    }
    // A fine cell size recreates the pathological many-empty-cells regime.
    const SpatialIndex index = SpatialIndex::build_from(points, rng.uniform(2.0, 30.0));
    for (const std::size_t k : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                n / 2, n - 1, n, n + 10}) {
      // From inside a cluster, between clusters, and far outside everything.
      const Vec2 inside = points[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))];
      const Vec2 between = (centers[0] + centers[clusters - 1]) * 0.5;
      const Vec2 far{rng.uniform(1.0e8, 1.0e9), rng.uniform(-1.0e9, -1.0e8)};
      for (const Vec2& center : {inside, between, far}) {
        EXPECT_EQ(index.nearest_k(center, k), brute_nearest(points, center, k))
            << "round " << round << " k " << k;
      }
    }
  }
}

// Equidistant points across cell boundaries: the k-th distance ties exactly,
// and the tie must resolve by ascending id whether the contenders share a
// cell, a frontier ring, or neither.
TEST(SpatialIndex, NearestKExactTiesResolveById) {
  SpatialIndex index(10.0);
  std::vector<Vec2> points;
  const double r = 100.0;
  for (Id id = 0; id < 8; ++id) {
    // Points spread over an axis-aligned square of "radius" 100 around the
    // origin — edge midpoints, corners, and the center — in different cells,
    // with distances tied in groups (three at 100, four at 100*sqrt(2)).
    const double sx = (id % 3 == 0) ? 0.0 : (id % 3 == 1 ? r : -r);
    const double sy = (id < 3) ? r : (id < 6 ? -r : 0.0);
    points.push_back({sx, sy});
    index.insert(id, points.back());
  }
  for (std::size_t k = 1; k <= points.size(); ++k) {
    EXPECT_EQ(index.nearest_k({0.0, 0.0}, k), brute_nearest(points, {0.0, 0.0}, k))
        << "k " << k;
  }
}

// Erase leaves the cached cell bounding box loose; nearest_k from far away
// must still clamp into it and return the survivors.
TEST(SpatialIndex, NearestKAfterEraseFromFarAway) {
  SpatialIndex index(5.0);
  std::vector<Vec2> points;
  util::Rng rng(0xE2A5E2);
  for (Id id = 0; id < 120; ++id) {
    points.push_back({rng.uniform(-300.0, 300.0), rng.uniform(-300.0, 300.0)});
    index.insert(id, points.back());
  }
  std::vector<char> alive(points.size(), 1);
  for (Id id = 0; id < 120; id += 3) {
    index.erase(id);
    alive[id] = 0;
  }
  const Vec2 far{-4.0e7, 9.0e7};
  const auto got = index.nearest_k(far, 10);
  std::vector<std::pair<double, Id>> ranked;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (alive[i] != 0) ranked.emplace_back(points[i].distance_to(far), i);
  }
  std::sort(ranked.begin(), ranked.end());
  ranked.resize(10);
  std::vector<Id> expect;
  for (const auto& [d, id] : ranked) expect.push_back(id);
  EXPECT_EQ(got, expect);
}

TEST(SpatialIndex, ExtremeCoordinatesDoNotOverflow) {
  SpatialIndex index(1.0);  // huge coordinate / tiny cell: saturated cells
  const double big = 1e18;
  index.insert(0, {big, big});
  index.insert(1, {-big, -big});
  index.insert(2, {0.0, 0.0});
  EXPECT_EQ(index.query_disc({big, big}, 1.0), (std::vector<Id>{0}));
  EXPECT_EQ(index.query_range({-2e18, -2e18}, {2e18, 2e18}), (std::vector<Id>{0, 1, 2}));
  EXPECT_EQ(index.nearest_k({0.0, 0.0}, 1), (std::vector<Id>{2}));
}

// Const queries are pure reads: many threads may hit one index concurrently
// (this is what locate_all's workers do through ApDatabase). Run under TSan
// in CI to make the claim checkable, not just asserted.
TEST(SpatialIndex, ConcurrentReadsAreSafe) {
  util::Rng rng(0xC0C0);
  std::vector<Vec2> points;
  SpatialIndex index(50.0);
  for (std::size_t i = 0; i < 500; ++i) {
    points.push_back({rng.uniform(-1000.0, 1000.0), rng.uniform(-1000.0, 1000.0)});
    index.insert(i, points.back());
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      util::Rng local(0xBEEF + static_cast<std::uint64_t>(t));
      for (int q = 0; q < 200; ++q) {
        const Vec2 center{local.uniform(-1000.0, 1000.0), local.uniform(-1000.0, 1000.0)};
        const double radius = local.uniform(0.0, 600.0);
        if (index.query_disc(center, radius) != brute_disc(points, center, radius)) {
          mismatches.fetch_add(1);
        }
        if (index.nearest_k(center, 5) != brute_nearest(points, center, 5)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace mm::geo
