// Aegis end-to-end contracts, pumped entirely on the virtual-clock loopback:
// bit-identity with the local Service, zero silent losses under damage,
// idempotent retransmits, explicit shedding, breaker cutoff, and replay
// determinism.
#include "wps/remote.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "marauder/ap_database.h"
#include "net80211/mac_address.h"
#include "util/rng.h"
#include "wps/service.h"
#include "wps/snapshot_writer.h"

namespace mm::wps {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kBssidBase = 0x02ce0000000ULL;

marauder::ApDatabase small_city(std::size_t n, std::uint64_t seed) {
  marauder::ApDatabase db;
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    marauder::KnownAp ap;
    ap.bssid = net80211::MacAddress::from_u64(kBssidBase + i);
    ap.position = {rng.uniform(-3000.0, 3000.0), rng.uniform(-3000.0, 3000.0)};
    if (rng.bernoulli(0.5)) ap.radius_m = rng.uniform(20.0, 120.0);
    db.add(std::move(ap));
  }
  return db;
}

Service open_city(const std::string& name, std::size_t n, std::uint64_t seed) {
  const fs::path path = fs::temp_directory_path() / name;
  fs::remove(path);
  SnapshotBuildOptions build;
  build.fsync = false;
  auto written = write_snapshot(small_city(n, seed), geo::Geodetic{}, path, build);
  EXPECT_TRUE(written.ok()) << written.error();
  auto service = Service::open(path);
  EXPECT_TRUE(service.ok()) << service.error();
  return std::move(service).value();
}

std::vector<QueryRequest> mixed_requests(std::size_t count, std::size_t n_aps,
                                         std::uint64_t seed) {
  std::vector<QueryRequest> requests;
  util::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    QueryRequest q;
    const double dice = rng.uniform(0.0, 1.0);
    if (dice < 0.4) {
      q.op = QueryOp::kLookup;
      q.bssid = kBssidBase + static_cast<std::uint64_t>(rng.uniform_int(
                                 0, static_cast<std::int64_t>(n_aps) - 1));
    } else if (dice < 0.8) {
      q.op = QueryOp::kNearest;
      q.k = static_cast<std::uint16_t>(rng.uniform_int(1, 9));
      q.center = {rng.uniform(-3000.0, 3000.0), rng.uniform(-3000.0, 3000.0)};
    } else {
      q.op = QueryOp::kRange;
      q.center = {rng.uniform(-3000.0, 3000.0), rng.uniform(-3000.0, 3000.0)};
      q.radius_m = rng.uniform(50.0, 300.0);
    }
    requests.push_back(q);
  }
  return requests;
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_same_response(const QueryResponse& got, const QueryResponse& want) {
  EXPECT_EQ(got.op, want.op);
  EXPECT_EQ(got.status, want.status);
  ASSERT_EQ(got.aps.size(), want.aps.size());
  for (std::size_t i = 0; i < got.aps.size(); ++i) {
    EXPECT_EQ(got.aps[i].bssid, want.aps[i].bssid);
    EXPECT_TRUE(bits_equal(got.aps[i].position.x, want.aps[i].position.x));
    EXPECT_TRUE(bits_equal(got.aps[i].position.y, want.aps[i].position.y));
    ASSERT_EQ(got.aps[i].radius_m.has_value(), want.aps[i].radius_m.has_value());
    if (got.aps[i].radius_m) {
      EXPECT_TRUE(bits_equal(*got.aps[i].radius_m, *want.aps[i].radius_m));
    }
  }
}

struct RunTally {
  std::size_t answered = 0;
  std::size_t shed = 0;
  std::size_t timed_out = 0;
  std::size_t circuit_open = 0;
  [[nodiscard]] std::size_t total() const {
    return answered + shed + timed_out + circuit_open;
  }
};

RunTally tally(const std::vector<Outcome>& outcomes) {
  RunTally t;
  for (const Outcome& o : outcomes) {
    switch (o.kind) {
      case OutcomeKind::kAnswered: ++t.answered; break;
      case OutcomeKind::kShed: ++t.shed; break;
      case OutcomeKind::kTimedOut: ++t.timed_out; break;
      case OutcomeKind::kCircuitOpen: ++t.circuit_open; break;
    }
  }
  return t;
}

TEST(WpsRemote, CleanLoopbackBitIdenticalToLocalService) {
  const Service service = open_city("mm_remote_clean.wps", 800, 31);
  const auto requests = mixed_requests(60, 800, 32);

  RemoteClient client({});
  RemoteServer server(service, {});
  LoopbackOptions lopts;  // default plans: a perfect link
  LossyLoopback loop(client, server, lopts);

  for (const QueryRequest& q : requests) client.issue(q, loop.now_ms());
  loop.run();
  ASSERT_TRUE(client.idle());

  const auto outcomes = client.drain();
  ASSERT_EQ(outcomes.size(), requests.size());
  for (const Outcome& o : outcomes) {
    ASSERT_EQ(o.kind, OutcomeKind::kAnswered);
    ASSERT_GE(o.request_id, 1u);
    expect_same_response(o.response, execute_query(service, requests[o.request_id - 1]));
  }
  EXPECT_EQ(client.stats().retransmissions, 0u);
  EXPECT_EQ(server.stats().executed, requests.size());
  EXPECT_EQ(server.dedup_stats().hits, 0u);
}

TEST(WpsRemote, LossyLinkZeroSilentLossAndIdempotentRetries) {
  const Service service = open_city("mm_remote_lossy.wps", 800, 41);
  const auto requests = mixed_requests(120, 800, 42);

  RemoteClientOptions copts;
  copts.retry.max_attempts = 8;
  copts.retry.timeout_ms = 60;
  copts.retry.backoff_base_ms = 20;
  copts.breaker.max_failures = 1000;  // isolate retry/dedup from the breaker
  RemoteServerOptions sopts;
  sopts.dedup_window = 4096;
  RemoteClient client(copts);
  RemoteServer server(service, sopts);

  LoopbackOptions lopts;
  lopts.up.drop_rate = 0.05;
  lopts.up.duplicate_rate = 0.05;
  lopts.up.reorder_rate = 0.05;
  lopts.up.burst_rate = 0.002;
  lopts.up.burst_frames_mean = 4.0;
  lopts.up.seed = 0xa1;
  lopts.down = lopts.up;
  lopts.down.seed = 0xb2;
  lopts.step_ms = 5;
  LossyLoopback loop(client, server, lopts);

  for (const QueryRequest& q : requests) client.issue(q, loop.now_ms());
  loop.run();
  ASSERT_TRUE(client.idle()) << "loopback failed to converge";

  const auto outcomes = client.drain();
  // Zero silent losses: every issued request has exactly one outcome.
  ASSERT_EQ(outcomes.size(), requests.size());
  const RunTally t = tally(outcomes);
  EXPECT_EQ(t.total(), requests.size());
  EXPECT_GT(t.answered, requests.size() * 9 / 10);
  for (const Outcome& o : outcomes) {
    if (o.kind != OutcomeKind::kAnswered) continue;
    expect_same_response(o.response, execute_query(service, requests[o.request_id - 1]));
  }
  // Idempotency: damage forced retransmits, the dedup window absorbed every
  // one that got through — no request id ever executed twice.
  EXPECT_GT(client.stats().retransmissions, 0u);
  EXPECT_LE(server.stats().executed, requests.size());
  EXPECT_GT(server.dedup_stats().hits + loop.up_stats().dropped +
                loop.up_stats().burst_dropped,
            0u);
  EXPECT_EQ(server.dedup_stats().evictions, 0u);
}

TEST(WpsRemote, OverloadShedsExplicitly) {
  const Service service = open_city("mm_remote_shed.wps", 400, 51);
  const auto requests = mixed_requests(40, 400, 52);

  RemoteClientOptions copts;
  copts.retry.max_attempts = 1;  // no second chance: every shed is terminal
  RemoteServerOptions sopts;
  sopts.max_queue = 1;
  RemoteClient client(copts);
  RemoteServer server(service, sopts);
  LossyLoopback loop(client, server, {});

  for (const QueryRequest& q : requests) client.issue(q, loop.now_ms());
  loop.run();
  ASSERT_TRUE(client.idle());

  const RunTally t = tally(client.drain());
  EXPECT_EQ(t.total(), requests.size());
  EXPECT_EQ(t.answered, 1u);  // the queue held exactly one per pump round
  EXPECT_EQ(t.shed, requests.size() - 1);
  EXPECT_EQ(t.timed_out, 0u);
  EXPECT_EQ(server.stats().shed, requests.size() - 1);
  EXPECT_EQ(client.stats().retry_after_seen, requests.size() - 1);
  // Shed is refusal, not loss — and refusals were never cached as answers.
  EXPECT_EQ(server.stats().executed, 1u);
}

TEST(WpsRemote, ShedRequestsRecoverThroughRetry) {
  const Service service = open_city("mm_remote_shedretry.wps", 400, 53);
  const auto requests = mixed_requests(40, 400, 54);

  RemoteClientOptions copts;
  copts.retry.max_attempts = 10;
  copts.retry.timeout_ms = 50;
  copts.retry.backoff_base_ms = 10;
  copts.breaker.max_failures = 1000;
  RemoteServerOptions sopts;
  sopts.max_queue = 4;  // heavy overload vs 40 simultaneous requests
  RemoteClient client(copts);
  RemoteServer server(service, sopts);
  LoopbackOptions lopts;
  lopts.step_ms = 5;
  LossyLoopback loop(client, server, lopts);

  for (const QueryRequest& q : requests) client.issue(q, loop.now_ms());
  loop.run();
  ASSERT_TRUE(client.idle());

  const RunTally t = tally(client.drain());
  EXPECT_EQ(t.total(), requests.size());
  // Backoff spreads the herd: every request eventually lands and answers
  // bit-identically, with the shed refusals absorbed along the way.
  EXPECT_EQ(t.answered, requests.size());
  EXPECT_GT(server.stats().shed, 0u);
  EXPECT_GT(client.stats().retry_after_seen, 0u);
  EXPECT_EQ(server.stats().executed, requests.size());
}

TEST(WpsRemote, DeadServerTripsBreakerAndFailsFast) {
  const Service service = open_city("mm_remote_dead.wps", 400, 61);
  const auto requests = mixed_requests(30, 400, 62);

  RemoteClientOptions copts;
  copts.retry.max_attempts = 2;
  copts.retry.timeout_ms = 40;
  copts.retry.backoff_base_ms = 10;
  copts.breaker.max_failures = 3;
  copts.breaker.open_initial_ms = 100000;  // stays open for the whole run
  copts.breaker.open_max_ms = 1000000;
  RemoteClient client(copts);
  RemoteServer server(service, {});
  LoopbackOptions lopts;
  lopts.up.drop_rate = 1.0;  // the server is unreachable
  lopts.step_ms = 5;
  LossyLoopback loop(client, server, lopts);

  // First wave: these pass the (still closed) breaker, burn their attempts,
  // and time out — the strikes that trip it.
  for (std::size_t i = 0; i < 10; ++i) client.issue(requests[i], loop.now_ms());
  loop.run();
  ASSERT_TRUE(client.idle());
  ASSERT_GE(client.breaker_stats().trips, 1u);

  // Second wave: the open breaker refuses their first transmission — they
  // fail fast as kCircuitOpen without spending a single timeout.
  for (std::size_t i = 10; i < requests.size(); ++i) {
    client.issue(requests[i], loop.now_ms());
  }
  loop.run();
  ASSERT_TRUE(client.idle());

  const RunTally t = tally(client.drain());
  EXPECT_EQ(t.total(), requests.size());
  EXPECT_EQ(t.answered, 0u);
  EXPECT_EQ(t.timed_out, 10u);
  EXPECT_EQ(t.circuit_open, requests.size() - 10u);
  EXPECT_EQ(server.stats().frames_seen, 0u);
}

TEST(WpsRemote, SameSeedsReplayByteIdentically) {
  const Service service = open_city("mm_remote_replay.wps", 600, 71);
  const auto requests = mixed_requests(80, 600, 72);

  const auto run = [&service, &requests]() {
    RemoteClientOptions copts;
    copts.retry.max_attempts = 6;
    copts.retry.timeout_ms = 60;
    copts.retry.backoff_base_ms = 20;
    copts.retry.seed = 0x5eed;
    copts.breaker.max_failures = 1000;
    RemoteClient client(copts);
    RemoteServer server(service, {});
    LoopbackOptions lopts;
    lopts.up.drop_rate = 0.08;
    lopts.up.reorder_rate = 0.05;
    lopts.up.seed = 0x11;
    lopts.down.drop_rate = 0.08;
    lopts.down.duplicate_rate = 0.05;
    lopts.down.seed = 0x22;
    lopts.step_ms = 5;
    LossyLoopback loop(client, server, lopts);
    for (const QueryRequest& q : requests) client.issue(q, loop.now_ms());
    loop.run();
    EXPECT_TRUE(client.idle());
    return client.drain();
  };

  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].request_id, b[i].request_id);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].attempts, b[i].attempts);
    EXPECT_EQ(a[i].completed_ms, b[i].completed_ms);
    EXPECT_EQ(a[i].response.aps.size(), b[i].response.aps.size());
  }
}

}  // namespace
}  // namespace mm::wps
