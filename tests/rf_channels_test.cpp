#include "rf/channels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace mm::rf {
namespace {

TEST(Channels, BgCenterFrequencies) {
  EXPECT_DOUBLE_EQ(channel_center_mhz({Band::kBg24GHz, 1}), 2412.0);
  EXPECT_DOUBLE_EQ(channel_center_mhz({Band::kBg24GHz, 6}), 2437.0);
  EXPECT_DOUBLE_EQ(channel_center_mhz({Band::kBg24GHz, 11}), 2462.0);
}

TEST(Channels, ACenterFrequencies) {
  EXPECT_DOUBLE_EQ(channel_center_mhz({Band::kA5GHz, 36}), 5180.0);
  EXPECT_DOUBLE_EQ(channel_center_mhz({Band::kA5GHz, 161}), 5805.0);
}

TEST(Channels, InvalidChannelsThrow) {
  EXPECT_THROW((void)channel_center_mhz({Band::kBg24GHz, 0}), std::invalid_argument);
  EXPECT_THROW((void)channel_center_mhz({Band::kBg24GHz, 12}), std::invalid_argument);
  EXPECT_THROW((void)channel_center_mhz({Band::kA5GHz, 37}), std::invalid_argument);
}

TEST(Channels, Widths) {
  EXPECT_DOUBLE_EQ(channel_width_mhz({Band::kBg24GHz, 3}), 22.0);
  EXPECT_DOUBLE_EQ(channel_width_mhz({Band::kA5GHz, 36}), 20.0);
}

TEST(Channels, AllChannelsCounts) {
  EXPECT_EQ(all_channels(Band::kBg24GHz).size(), 11u);   // 11 b/g channels
  EXPECT_EQ(all_channels(Band::kA5GHz).size(), 12u);     // 12 802.11a channels
}

TEST(Channels, NonoverlappingSetIs1_6_11) {
  const auto chans = nonoverlapping_bg_channels();
  ASSERT_EQ(chans.size(), 3u);
  EXPECT_EQ(chans[0].number, 1);
  EXPECT_EQ(chans[1].number, 6);
  EXPECT_EQ(chans[2].number, 11);
  // Verify they are truly non-overlapping.
  EXPECT_DOUBLE_EQ(spectral_overlap(chans[0], chans[1]), 0.0);
  EXPECT_DOUBLE_EQ(spectral_overlap(chans[1], chans[2]), 0.0);
}

TEST(Channels, OverlapCoChannelIsOne) {
  EXPECT_DOUBLE_EQ(spectral_overlap({Band::kBg24GHz, 6}, {Band::kBg24GHz, 6}), 1.0);
}

TEST(Channels, OverlapDecreasesWithSeparation) {
  const Channel tx{Band::kBg24GHz, 6};
  double prev = 1.0;
  for (int n = 7; n <= 11; ++n) {
    const double o = spectral_overlap(tx, {Band::kBg24GHz, n});
    EXPECT_LT(o, prev);
    prev = o;
  }
  // Channels 5 apart (25 MHz offset > 22 MHz width): no overlap.
  EXPECT_DOUBLE_EQ(spectral_overlap(tx, {Band::kBg24GHz, 11}), 0.0);
}

TEST(Channels, OverlapAdjacentChannelValue) {
  // 5 MHz offset of a 22 MHz signal: 17/22 of the spectrum captured.
  EXPECT_NEAR(spectral_overlap({Band::kBg24GHz, 6}, {Band::kBg24GHz, 7}), 17.0 / 22.0,
              1e-12);
}

TEST(Channels, OverlapSymmetricForEqualWidths) {
  const Channel a{Band::kBg24GHz, 3};
  const Channel b{Band::kBg24GHz, 5};
  EXPECT_DOUBLE_EQ(spectral_overlap(a, b), spectral_overlap(b, a));
}

TEST(Channels, CrossBandNoOverlap) {
  EXPECT_DOUBLE_EQ(spectral_overlap({Band::kBg24GHz, 6}, {Band::kA5GHz, 36}), 0.0);
}

TEST(Channels, PenaltyCoChannelZero) {
  EXPECT_DOUBLE_EQ(cross_channel_penalty_db({Band::kBg24GHz, 1}, {Band::kBg24GHz, 1}), 0.0);
}

TEST(Channels, PenaltyGrowsWithOffset) {
  const Channel tx{Band::kBg24GHz, 11};
  const double p1 = cross_channel_penalty_db(tx, {Band::kBg24GHz, 10});
  const double p2 = cross_channel_penalty_db(tx, {Band::kBg24GHz, 9});
  EXPECT_GT(p1, 10.0);  // even one channel off is a heavy penalty
  EXPECT_GT(p2, p1 + 5.0);
}

TEST(Channels, LockCeilingCoChannelIsOne) {
  EXPECT_DOUBLE_EQ(cross_channel_lock_ceiling({Band::kBg24GHz, 6}, {Band::kBg24GHz, 6}),
                   1.0);
}

TEST(Channels, LockCeilingFewForAdjacentNoneBeyond) {
  const Channel tx{Band::kBg24GHz, 11};
  const double adjacent = cross_channel_lock_ceiling(tx, {Band::kBg24GHz, 10});
  const double two_off = cross_channel_lock_ceiling(tx, {Band::kBg24GHz, 9});
  EXPECT_GT(adjacent, 0.0);
  EXPECT_LT(adjacent, 0.15);  // "few" packets regardless of signal strength
  EXPECT_GT(two_off, 0.0);
  EXPECT_LT(two_off, 0.01);
  EXPECT_DOUBLE_EQ(cross_channel_lock_ceiling(tx, {Band::kBg24GHz, 6}), 0.0);
  EXPECT_DOUBLE_EQ(cross_channel_lock_ceiling(tx, {Band::kA5GHz, 36}), 0.0);
}

TEST(Channels, PenaltyInfiniteWhenDisjoint) {
  EXPECT_TRUE(std::isinf(cross_channel_penalty_db({Band::kBg24GHz, 11}, {Band::kBg24GHz, 6})));
  EXPECT_TRUE(std::isinf(cross_channel_penalty_db({Band::kBg24GHz, 1}, {Band::kA5GHz, 36})));
}

// Fig 9's message: a card on a neighbouring channel decodes few or none of
// the packets — the adjacent channel is marginal even at a healthy 30 dB
// SNR ("few"), and two channels away fails at any level ("none").
TEST(Channels, Fig9NeighbouringChannelsUndecodableAtTypicalSnr) {
  const Channel tx{Band::kBg24GHz, 11};
  const double typical_snr_db = 30.0;
  const double snr_min = 5.0;
  const double one_off = typical_snr_db - cross_channel_penalty_db(tx, {Band::kBg24GHz, 10});
  const double two_off = typical_snr_db - cross_channel_penalty_db(tx, {Band::kBg24GHz, 9});
  EXPECT_LT(one_off, snr_min + 5.0);   // marginal at best: "few" packets
  EXPECT_GT(one_off, snr_min - 15.0);  // not a brick wall yet
  EXPECT_LT(two_off, snr_min - 20.0);  // "none", with margin to spare
}

}  // namespace
}  // namespace mm::rf
