#include "rf/propagation.h"

#include <gtest/gtest.h>

#include <memory>

#include "rf/units.h"

namespace mm::rf {
namespace {

TEST(Terrain, FlatByDefault) {
  const Terrain t;
  EXPECT_TRUE(t.flat());
  EXPECT_DOUBLE_EQ(t.ground_height_m({100.0, -50.0}), 0.0);
  EXPECT_DOUBLE_EQ(t.obstruction_depth_m({0.0, 0.0}, 2.0, {500.0, 0.0}, 2.0), 0.0);
}

TEST(Terrain, HillPeakHeight) {
  Terrain t;
  t.add_hill({{100.0, 0.0}, 12.0, 40.0});
  EXPECT_NEAR(t.ground_height_m({100.0, 0.0}), 12.0, 1e-9);
  EXPECT_LT(t.ground_height_m({140.0, 0.0}), 12.0);
  EXPECT_NEAR(t.ground_height_m({1000.0, 0.0}), 0.0, 1e-6);
}

TEST(Terrain, HillsSuperpose) {
  Terrain t;
  t.add_hill({{0.0, 0.0}, 5.0, 30.0});
  t.add_hill({{0.0, 0.0}, 3.0, 30.0});
  EXPECT_NEAR(t.ground_height_m({0.0, 0.0}), 8.0, 1e-9);
}

TEST(Terrain, ObstructionWhenHillBetween) {
  Terrain t;
  t.add_hill({{250.0, 0.0}, 20.0, 50.0});
  const double depth = t.obstruction_depth_m({0.0, 0.0}, 2.0, {500.0, 0.0}, 2.0);
  EXPECT_GT(depth, 10.0);
  EXPECT_LE(depth, 20.0);
}

TEST(Terrain, NoObstructionWhenPathClearsHill) {
  Terrain t;
  t.add_hill({{250.0, 0.0}, 20.0, 50.0});
  // Endpoints raised well above the hill.
  EXPECT_DOUBLE_EQ(t.obstruction_depth_m({0.0, 0.0}, 40.0, {500.0, 0.0}, 40.0), 0.0);
}

TEST(Terrain, NoObstructionWhenHillOffPath) {
  Terrain t;
  t.add_hill({{250.0, 400.0}, 20.0, 50.0});
  EXPECT_NEAR(t.obstruction_depth_m({0.0, 0.0}, 2.0, {500.0, 0.0}, 2.0), 0.0, 1e-6);
}

TEST(Terrain, ElevatedReceiverSeesOverHill) {
  Terrain t;
  t.add_hill({{100.0, 0.0}, 10.0, 40.0});
  // Sniffer on a rooftop (20 m) looking at a mobile at 2 m, 400 m away:
  // the LOS at the hill (x=100, t=0.25) is ~15.5 m — above the 10 m hill.
  EXPECT_DOUBLE_EQ(t.obstruction_depth_m({0.0, 0.0}, 20.0, {400.0, 0.0}, 2.0), 0.0);
}

TEST(FreeSpaceModel, MatchesFsplHelper) {
  const FreeSpaceModel m;
  const double loss = m.path_loss_db({0.0, 0.0}, 2.0, {300.0, 400.0}, 2.0, 2437.0);
  EXPECT_NEAR(loss, free_space_path_loss_db(500.0, 2437.0), 1e-9);
}

TEST(FreeSpaceModel, ClampsNearField) {
  const FreeSpaceModel m;
  const double at_zero = m.path_loss_db({0.0, 0.0}, 2.0, {0.0, 0.0}, 2.0, 2437.0);
  EXPECT_NEAR(at_zero, free_space_path_loss_db(1.0, 2437.0), 1e-9);
}

TEST(LogDistanceModel, ReducesToFsplAtExponent2) {
  const LogDistanceModel m(2.0);
  const double d = 250.0;
  EXPECT_NEAR(m.path_loss_db({0.0, 0.0}, 2.0, {d, 0.0}, 2.0, 2412.0),
              free_space_path_loss_db(d, 2412.0), 1e-9);
}

TEST(LogDistanceModel, HigherExponentMoreLoss) {
  const LogDistanceModel fs(2.0);
  const LogDistanceModel urban(3.2);
  const double l2 = fs.path_loss_db({0.0, 0.0}, 2.0, {100.0, 0.0}, 2.0, 2437.0);
  const double l3 = urban.path_loss_db({0.0, 0.0}, 2.0, {100.0, 0.0}, 2.0, 2437.0);
  EXPECT_NEAR(l3 - l2, 10.0 * 1.2 * 2.0, 1e-9);  // 10*(3.2-2.0)*log10(100)
}

TEST(LogDistanceModel, InvalidExponentThrows) {
  EXPECT_THROW(LogDistanceModel(0.5), std::invalid_argument);
  EXPECT_THROW(LogDistanceModel(7.0), std::invalid_argument);
}

TEST(LogDistanceModel, ShadowingIsDeterministicPerLink) {
  const LogDistanceModel m(2.9, 6.0, 42);
  const double a = m.path_loss_db({10.0, 20.0}, 2.0, {300.0, -100.0}, 2.0, 2437.0);
  const double b = m.path_loss_db({10.0, 20.0}, 2.0, {300.0, -100.0}, 2.0, 2437.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(LogDistanceModel, ShadowingSymmetricInEndpoints) {
  const LogDistanceModel m(2.9, 6.0, 42);
  const double ab = m.path_loss_db({10.0, 20.0}, 2.0, {300.0, -100.0}, 2.0, 2437.0);
  const double ba = m.path_loss_db({300.0, -100.0}, 2.0, {10.0, 20.0}, 2.0, 2437.0);
  EXPECT_DOUBLE_EQ(ab, ba);
}

TEST(LogDistanceModel, ShadowingVariesAcrossLinks) {
  const LogDistanceModel m(2.9, 6.0, 42);
  const LogDistanceModel no_shadow(2.9, 0.0, 42);
  int distinct = 0;
  for (int i = 0; i < 20; ++i) {
    const geo::Vec2 rx{200.0 + 10.0 * i, 35.0};
    const double with_s = m.path_loss_db({0.0, 0.0}, 2.0, rx, 2.0, 2437.0);
    const double without = no_shadow.path_loss_db({0.0, 0.0}, 2.0, rx, 2.0, 2437.0);
    if (std::abs(with_s - without) > 0.5) ++distinct;
  }
  EXPECT_GT(distinct, 10);
}

TEST(TerrainAwareModel, AddsLossOnlyWhenObstructed) {
  auto base = std::make_shared<FreeSpaceModel>();
  auto terrain = std::make_shared<Terrain>();
  terrain->add_hill({{250.0, 0.0}, 25.0, 40.0});
  const TerrainAwareModel m(base, terrain);

  const double blocked = m.path_loss_db({0.0, 0.0}, 2.0, {500.0, 0.0}, 2.0, 2437.0);
  const double clear = m.path_loss_db({0.0, 300.0}, 2.0, {500.0, 300.0}, 2.0, 2437.0);
  const double fs = base->path_loss_db({0.0, 0.0}, 2.0, {500.0, 0.0}, 2.0, 2437.0);
  EXPECT_GT(blocked, fs + 6.0);
  EXPECT_NEAR(clear, fs, 1e-9);
}

TEST(TerrainAwareModel, LossIsCapped) {
  auto base = std::make_shared<FreeSpaceModel>();
  auto terrain = std::make_shared<Terrain>();
  terrain->add_hill({{250.0, 0.0}, 500.0, 60.0});
  const TerrainAwareModel m(base, terrain, 6.0, 1.5, 35.0);
  const double blocked = m.path_loss_db({0.0, 0.0}, 2.0, {500.0, 0.0}, 2.0, 2437.0);
  const double fs = base->path_loss_db({0.0, 0.0}, 2.0, {500.0, 0.0}, 2.0, 2437.0);
  EXPECT_NEAR(blocked - fs, 35.0, 1e-9);
}

TEST(TerrainAwareModel, NullArgumentsThrow) {
  auto base = std::make_shared<FreeSpaceModel>();
  auto terrain = std::make_shared<Terrain>();
  EXPECT_THROW(TerrainAwareModel(nullptr, terrain), std::invalid_argument);
  EXPECT_THROW(TerrainAwareModel(base, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace mm::rf
