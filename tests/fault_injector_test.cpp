#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace mm::fault {
namespace {

std::vector<std::uint8_t> test_frame(std::size_t n = 64) {
  std::vector<std::uint8_t> frame(n);
  for (std::size_t i = 0; i < n; ++i) frame[i] = static_cast<std::uint8_t>(i);
  return frame;
}

TEST(FaultPlan, DefaultIsInactive) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlan, ParsesFullSpec) {
  const auto parsed = FaultPlan::parse(
      "corrupt=0.01,corrupt-bits=4,truncate=0.02,drop=0.03,dup=0.04,"
      "nic-dropout=0.1,dropout-mean=20,skew=0.5,drift=50,torn=0.25,seed=7");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const FaultPlan& plan = parsed.value();
  EXPECT_DOUBLE_EQ(plan.corrupt_rate, 0.01);
  EXPECT_EQ(plan.corrupt_bits_max, 4);
  EXPECT_DOUBLE_EQ(plan.truncate_rate, 0.02);
  EXPECT_DOUBLE_EQ(plan.drop_rate, 0.03);
  EXPECT_DOUBLE_EQ(plan.duplicate_rate, 0.04);
  EXPECT_DOUBLE_EQ(plan.nic_dropout_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan.nic_dropout_mean_s, 20.0);
  EXPECT_DOUBLE_EQ(plan.clock_skew_max_s, 0.5);
  EXPECT_DOUBLE_EQ(plan.clock_drift_max_ppm, 50.0);
  EXPECT_DOUBLE_EQ(plan.torn_write_rate, 0.25);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlan, SpecRoundtrip) {
  const auto parsed = FaultPlan::parse("corrupt=0.01,drop=0.02,seed=9");
  ASSERT_TRUE(parsed.ok());
  const auto reparsed = FaultPlan::parse(parsed.value().to_spec());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_DOUBLE_EQ(reparsed.value().corrupt_rate, 0.01);
  EXPECT_DOUBLE_EQ(reparsed.value().drop_rate, 0.02);
  EXPECT_EQ(reparsed.value().seed, 9u);
}

TEST(FaultPlan, RejectsTypos) {
  EXPECT_FALSE(FaultPlan::parse("corupt=0.1").ok());       // unknown key
  EXPECT_FALSE(FaultPlan::parse("corrupt").ok());          // missing '='
  EXPECT_FALSE(FaultPlan::parse("corrupt=lots").ok());     // bad number
  EXPECT_FALSE(FaultPlan::parse("corrupt=1.5").ok());      // rate > 1
  EXPECT_FALSE(FaultPlan::parse("drop=-0.1").ok());        // negative
  EXPECT_FALSE(FaultPlan::parse("corrupt-bits=0").ok());   // needs >= 1
  EXPECT_FALSE(FaultPlan::parse("nic-dropout=0.1,dropout-mean=0").ok());
}

TEST(FaultInjector, InactivePlanPassesFramesUntouched) {
  FaultInjector injector(FaultPlan{});
  auto frame = test_frame();
  const auto original = frame;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.apply_frame(frame), FaultInjector::FrameAction::kPass);
  }
  EXPECT_EQ(frame, original);
  EXPECT_EQ(injector.stats().frames_seen, 100u);
  EXPECT_EQ(injector.stats().frames_corrupted, 0u);
}

TEST(FaultInjector, DeterministicAcrossRuns) {
  FaultPlan plan;
  plan.corrupt_rate = 0.3;
  plan.truncate_rate = 0.2;
  plan.drop_rate = 0.1;
  plan.duplicate_rate = 0.1;
  plan.seed = 42;

  auto run = [&plan] {
    FaultInjector injector(plan);
    std::vector<std::vector<std::uint8_t>> outcomes;
    std::vector<FaultInjector::FrameAction> actions;
    for (int i = 0; i < 200; ++i) {
      auto frame = test_frame();
      actions.push_back(injector.apply_frame(frame));
      outcomes.push_back(std::move(frame));
    }
    return std::make_pair(std::move(outcomes), std::move(actions));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(FaultInjector, RatesRoughlyHonored) {
  FaultPlan plan;
  plan.corrupt_rate = 0.25;
  plan.seed = 3;
  FaultInjector injector(plan);
  for (int i = 0; i < 4000; ++i) {
    auto frame = test_frame();
    (void)injector.apply_frame(frame);
  }
  const double observed =
      static_cast<double>(injector.stats().frames_corrupted) / 4000.0;
  EXPECT_NEAR(observed, 0.25, 0.03);
}

TEST(FaultInjector, CorruptionFlipsAtMostMaxBits) {
  FaultPlan plan;
  plan.corrupt_rate = 1.0;
  plan.corrupt_bits_max = 3;
  FaultInjector injector(plan);
  for (int i = 0; i < 100; ++i) {
    auto frame = test_frame();
    const auto original = frame;
    (void)injector.apply_frame(frame);
    ASSERT_EQ(frame.size(), original.size());
    int flipped = 0;
    for (std::size_t b = 0; b < frame.size(); ++b) {
      flipped += __builtin_popcount(frame[b] ^ original[b]);
    }
    EXPECT_GE(flipped, 1);
    EXPECT_LE(flipped, 3);
  }
}

TEST(FaultInjector, TruncationShortensFrame) {
  FaultPlan plan;
  plan.truncate_rate = 1.0;
  FaultInjector injector(plan);
  auto frame = test_frame(64);
  (void)injector.apply_frame(frame);
  EXPECT_LT(frame.size(), 64u);
}

TEST(FaultInjector, DropoutFractionMatchesRate) {
  FaultPlan plan;
  plan.nic_dropout_rate = 0.2;
  plan.nic_dropout_mean_s = 10.0;
  const FaultInjector injector(plan);
  for (std::size_t card = 0; card < 3; ++card) {
    int down = 0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i) {
      if (injector.card_down(card, 0.1 * i)) ++down;
    }
    EXPECT_NEAR(static_cast<double>(down) / samples, 0.2, 0.05) << "card " << card;
  }
}

TEST(FaultInjector, DropoutWindowsAreContiguous) {
  FaultPlan plan;
  plan.nic_dropout_rate = 0.2;
  plan.nic_dropout_mean_s = 10.0;
  const FaultInjector injector(plan);
  // Count down->up/up->down edges over 1000 s: with 10 s outages per 50 s
  // period there are ~20 outages => ~40 edges, far fewer than a per-sample
  // independent coin would produce.
  int edges = 0;
  bool prev = injector.card_down(0, 0.0);
  for (double t = 0.1; t < 1000.0; t += 0.1) {
    const bool now = injector.card_down(0, t);
    if (now != prev) ++edges;
    prev = now;
  }
  EXPECT_GT(edges, 10);
  EXPECT_LT(edges, 100);
}

TEST(FaultInjector, ClockSkewBoundedAndStablePerCard) {
  FaultPlan plan;
  plan.clock_skew_max_s = 0.5;
  const FaultInjector injector(plan);
  for (std::size_t card = 0; card < 5; ++card) {
    const double offset0 = injector.card_time(card, 100.0) - 100.0;
    const double offset1 = injector.card_time(card, 5000.0) - 5000.0;
    EXPECT_LE(std::abs(offset0), 0.5);
    // Constant skew, no drift configured; NEAR because (t + skew) - t
    // rounds differently at different magnitudes of t.
    EXPECT_NEAR(offset0, offset1, 1e-9);
  }
  // Different cards get different skews (all-equal would defeat the fault).
  EXPECT_NE(injector.card_time(0, 100.0), injector.card_time(1, 100.0));
}

TEST(FaultInjector, ClockDriftGrowsLinearly) {
  FaultPlan plan;
  plan.clock_drift_max_ppm = 100.0;
  const FaultInjector injector(plan);
  const double err1 = injector.card_time(0, 1000.0) - 1000.0;
  const double err2 = injector.card_time(0, 2000.0) - 2000.0;
  EXPECT_NE(err1, 0.0);
  EXPECT_NEAR(err2, 2.0 * err1, 1e-9);
  EXPECT_LE(std::abs(err1), 1000.0 * 100.0 * 1e-6);
}

TEST(FaultInjector, PerCardFaultsDoNotPerturbFrameStream) {
  FaultPlan base;
  base.corrupt_rate = 0.5;
  base.seed = 11;
  FaultPlan with_cards = base;
  with_cards.nic_dropout_rate = 0.3;
  with_cards.clock_skew_max_s = 1.0;
  with_cards.clock_drift_max_ppm = 50.0;

  FaultInjector a(base);
  FaultInjector b(with_cards);
  for (int i = 0; i < 100; ++i) {
    auto fa = test_frame();
    auto fb = test_frame();
    (void)a.apply_frame(fa);
    // Interleave card queries: they are stateless and must not shift b's
    // frame-damage stream away from a's.
    (void)b.card_down(i % 3, 0.5 * i);
    (void)b.card_time(i % 3, 0.5 * i);
    (void)b.apply_frame(fb);
    EXPECT_EQ(fa, fb) << "frame " << i;
  }
}

TEST(FaultInjector, TearFileKeepsPrefixOnly) {
  const auto path = std::filesystem::temp_directory_path() / "mm_tear.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const std::vector<char> bytes(1000, 'x');
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  FaultPlan plan;
  plan.torn_write_rate = 1.0;
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.should_tear_write());
  EXPECT_TRUE(injector.tear_file(path));
  EXPECT_LT(std::filesystem::file_size(path), 1000u);
  EXPECT_EQ(injector.stats().files_torn, 1u);
  EXPECT_FALSE(injector.tear_file(path.string() + ".missing"));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mm::fault
