#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/population.h"

namespace mm::sim {
namespace {

TEST(Scenario, GeneratesRequestedApCount) {
  CampusConfig cfg;
  cfg.num_aps = 75;
  const auto aps = generate_campus_aps(cfg);
  EXPECT_EQ(aps.size(), 75u);
}

TEST(Scenario, DeterministicInSeed) {
  CampusConfig cfg;
  cfg.seed = 99;
  const auto a = generate_campus_aps(cfg);
  const auto b = generate_campus_aps(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bssid, b[i].bssid);
    EXPECT_EQ(a[i].position, b[i].position);
    EXPECT_DOUBLE_EQ(a[i].radius_m, b[i].radius_m);
  }
}

TEST(Scenario, ApsInsideExtentAndRadiusInRange) {
  CampusConfig cfg;
  cfg.half_extent_m = 300.0;
  cfg.radius_min_m = 60.0;
  cfg.radius_max_m = 90.0;
  for (const ApTruth& ap : generate_campus_aps(cfg)) {
    EXPECT_LE(std::abs(ap.position.x), 300.0);
    EXPECT_LE(std::abs(ap.position.y), 300.0);
    EXPECT_GE(ap.radius_m, 60.0);
    EXPECT_LE(ap.radius_m, 90.0);
  }
}

TEST(Scenario, BssidsUnique) {
  CampusConfig cfg;
  cfg.num_aps = 200;
  std::set<net80211::MacAddress> macs;
  for (const ApTruth& ap : generate_campus_aps(cfg)) macs.insert(ap.bssid);
  EXPECT_EQ(macs.size(), 200u);
}

// Fig 8: channels 1/6/11 should carry ~93.7% of APs, channel 6 the most.
TEST(Scenario, ChannelDistributionMatchesFig8) {
  CampusConfig cfg;
  cfg.num_aps = 5000;
  std::map<int, int> histogram;
  for (const ApTruth& ap : generate_campus_aps(cfg)) histogram[ap.channel]++;
  const double total = 5000.0;
  const double main_three = (histogram[1] + histogram[6] + histogram[11]) / total;
  EXPECT_NEAR(main_three, 0.937, 0.02);
  EXPECT_GT(histogram[6], histogram[1]);
  EXPECT_GT(histogram[1], histogram[11]);
  for (int ch = 1; ch <= 11; ++ch) {
    EXPECT_GE(histogram[ch], 1) << "channel " << ch << " never used";
  }
}

TEST(Scenario, WeightsCoverElevenChannels) {
  EXPECT_EQ(default_channel_weights().size(), 11u);
  double sum = 0.0;
  for (double w : default_channel_weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Scenario, PopulateWorldAddsAps) {
  CampusConfig cfg;
  cfg.num_aps = 10;
  const auto aps = generate_campus_aps(cfg);
  World world({});
  populate_world(world, aps, /*beacons_enabled=*/false);
  EXPECT_EQ(world.access_points().size(), 10u);
  EXPECT_EQ(world.access_points()[0]->config().bssid, aps[0].bssid);
}

TEST(Scenario, UmlAnchorIsInLowell) {
  const geo::Geodetic uml = uml_north_campus();
  EXPECT_NEAR(uml.lat_deg, 42.65, 0.05);
  EXPECT_NEAR(uml.lon_deg, -71.32, 0.05);
}

TEST(Scenario, HillsExist) {
  const auto terrain = uml_hills();
  ASSERT_NE(terrain, nullptr);
  EXPECT_FALSE(terrain->flat());
}

TEST(Scenario, LawnmowerRouteCoversArea) {
  const auto route = lawnmower_route(100.0, 4);
  ASSERT_GE(route.size(), 8u);
  double min_y = 1e9;
  double max_y = -1e9;
  for (const auto& p : route) {
    EXPECT_LE(std::abs(p.x), 100.0 + 1e-9);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  EXPECT_DOUBLE_EQ(min_y, -100.0);
  EXPECT_DOUBLE_EQ(max_y, 100.0);
}

TEST(Population, SevenDaysWithWeekend) {
  util::Rng rng(1);
  const auto days = simulate_population({}, rng);
  ASSERT_EQ(days.size(), 7u);
  // Starting Friday Oct 24: Sat/Sun are indices 1 and 2.
  EXPECT_FALSE(days[0].weekend);
  EXPECT_TRUE(days[1].weekend);
  EXPECT_TRUE(days[2].weekend);
  for (std::size_t i = 3; i < 7; ++i) EXPECT_FALSE(days[i].weekend);
  EXPECT_EQ(days[0].label, "Oct 24");
  EXPECT_EQ(days[6].label, "Oct 30");
}

// Fig 10: more mobiles on weekdays; Fig 11: probing fraction > 50% every day
// and higher on weekends.
TEST(Population, MatchesPaperShape) {
  util::Rng rng(2009);
  const auto days = simulate_population({}, rng);
  double weekday_found = 0.0;
  double weekend_found = 0.0;
  double weekday_frac = 0.0;
  double weekend_frac = 0.0;
  int weekdays = 0;
  int weekends = 0;
  for (const auto& day : days) {
    EXPECT_GT(day.probing_fraction(), 0.5) << day.label;
    if (day.weekend) {
      weekend_found += static_cast<double>(day.mobiles_found);
      weekend_frac += day.probing_fraction();
      ++weekends;
    } else {
      weekday_found += static_cast<double>(day.mobiles_found);
      weekday_frac += day.probing_fraction();
      ++weekdays;
    }
  }
  EXPECT_GT(weekday_found / weekdays, weekend_found / weekends);
  EXPECT_GT(weekend_frac / weekends, weekday_frac / weekdays);
}

TEST(Population, ActiveAttackRaisesProbingFraction) {
  PopulationConfig passive;
  PopulationConfig active;
  active.active_attack = true;
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  const auto passive_days = simulate_population(passive, rng_a);
  const auto active_days = simulate_population(active, rng_b);
  double passive_avg = 0.0;
  double active_avg = 0.0;
  for (std::size_t i = 0; i < 7; ++i) {
    passive_avg += passive_days[i].probing_fraction();
    active_avg += active_days[i].probing_fraction();
  }
  EXPECT_GT(active_avg / 7.0, passive_avg / 7.0 + 0.1);
  for (const auto& day : active_days) EXPECT_GT(day.probing_fraction(), 0.9);
}

TEST(Population, DeterministicInRngSeed) {
  util::Rng a(5);
  util::Rng b(5);
  const auto days_a = simulate_population({}, a);
  const auto days_b = simulate_population({}, b);
  for (std::size_t i = 0; i < days_a.size(); ++i) {
    EXPECT_EQ(days_a[i].mobiles_found, days_b[i].mobiles_found);
    EXPECT_EQ(days_a[i].probing_mobiles, days_b[i].probing_mobiles);
  }
}

TEST(Population, ProbingNeverExceedsFound) {
  util::Rng rng(11);
  PopulationConfig cfg;
  cfg.days = 30;
  for (const auto& day : simulate_population(cfg, rng)) {
    EXPECT_LE(day.probing_mobiles, day.mobiles_found);
    EXPECT_GE(day.mobiles_found, 1u);
  }
}

}  // namespace
}  // namespace mm::sim
