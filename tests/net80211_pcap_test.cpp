#include "net80211/pcap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "net80211/frames.h"
#include "net80211/radiotap.h"

namespace mm::net80211 {
namespace {

std::filesystem::path temp_pcap(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(Radiotap, SerializeParseRoundtrip) {
  Radiotap hdr;
  hdr.channel_freq_mhz = 2462;
  hdr.channel_flags = 0x00a0;
  hdr.antenna_signal_dbm = -67;
  hdr.antenna_noise_dbm = -99;
  const auto bytes = hdr.serialize();
  const auto parsed = Radiotap::parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().header, hdr);
  EXPECT_EQ(parsed.value().header_length, bytes.size());
}

TEST(Radiotap, RejectsBadVersion) {
  auto bytes = Radiotap{}.serialize();
  bytes[0] = 1;
  EXPECT_FALSE(Radiotap::parse(bytes).ok());
}

TEST(Radiotap, RejectsShortBuffer) {
  const std::vector<std::uint8_t> tiny(4, 0);
  EXPECT_FALSE(Radiotap::parse(tiny).ok());
}

TEST(Radiotap, RejectsUnknownPresentBits) {
  auto bytes = Radiotap{}.serialize();
  bytes[7] |= 0x80;  // set an unsupported present bit
  EXPECT_FALSE(Radiotap::parse(bytes).ok());
}

TEST(Radiotap, NegativeSignalLevelsSurvive) {
  Radiotap hdr;
  hdr.antenna_signal_dbm = -128;
  hdr.antenna_noise_dbm = -1;
  const auto parsed = Radiotap::parse(hdr.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header.antenna_signal_dbm, -128);
  EXPECT_EQ(parsed.value().header.antenna_noise_dbm, -1);
}

TEST(Pcap, EmptyFileRoundtrip) {
  const auto path = temp_pcap("mm_empty.pcap");
  { PcapWriter writer(path); }
  PcapReader reader(path);
  EXPECT_EQ(reader.linktype(), kLinktypeRadiotap);
  EXPECT_EQ(reader.snaplen(), 65535u);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.truncated());
  std::filesystem::remove(path);
}

TEST(Pcap, RecordsRoundtrip) {
  const auto path = temp_pcap("mm_records.pcap");
  const PcapRecord r1{1000001, {0xde, 0xad, 0xbe, 0xef}};
  const PcapRecord r2{2000002, {0x01}};
  {
    PcapWriter writer(path, kLinktype80211);
    writer.write(r1.timestamp_us, r1.data);
    writer.write(r2.timestamp_us, r2.data);
    EXPECT_EQ(writer.records_written(), 2u);
  }
  PcapReader reader(path);
  EXPECT_EQ(reader.linktype(), kLinktype80211);
  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], r1);
  EXPECT_EQ(records[1], r2);
  std::filesystem::remove(path);
}

TEST(Pcap, TimestampSplitAcrossSecondBoundary) {
  const auto path = temp_pcap("mm_ts.pcap");
  {
    PcapWriter writer(path);
    writer.write(5999999, std::vector<std::uint8_t>{0x00});
  }
  PcapReader reader(path);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->timestamp_us, 5999999u);
  std::filesystem::remove(path);
}

TEST(Pcap, SnaplenTruncatesStoredData) {
  const auto path = temp_pcap("mm_snap.pcap");
  {
    PcapWriter writer(path, kLinktypeRadiotap, /*snaplen=*/8);
    writer.write(0, std::vector<std::uint8_t>(100, 0xab));
  }
  PcapReader reader(path);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->data.size(), 8u);
  std::filesystem::remove(path);
}

TEST(Pcap, MissingFileIsError) {
  PcapReader reader("/nonexistent/capture.pcap");
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.error().empty());
  EXPECT_FALSE(reader.next().has_value());  // safe to call anyway
}

TEST(Pcap, MissingDirectoryWriterIsError) {
  PcapWriter writer("/nonexistent/dir/capture.pcap");
  EXPECT_FALSE(writer.ok());
  EXPECT_FALSE(writer.write(0, std::vector<std::uint8_t>{0x01}));
  EXPECT_EQ(writer.records_written(), 0u);
  EXPECT_EQ(writer.write_failures(), 1u);
}

TEST(Pcap, BadMagicIsError) {
  const auto path = temp_pcap("mm_badmagic.pcap");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "NOTAPCAPFILE............";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  PcapReader reader(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("magic"), std::string::npos);
  EXPECT_FALSE(reader.next().has_value());
  std::filesystem::remove(path);
}

TEST(Pcap, TruncatedMidPayloadDetected) {
  const auto path = temp_pcap("mm_trunc.pcap");
  {
    PcapWriter writer(path);
    writer.write(0, std::vector<std::uint8_t>(32, 0x55));
  }
  // Chop the file mid-payload: record header intact, 16 of 32 data bytes.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 16);
  PcapReader reader(path);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.truncated());
  std::filesystem::remove(path);
}

TEST(Pcap, TruncatedMidRecordHeaderDetected) {
  const auto path = temp_pcap("mm_trunc_hdr.pcap");
  {
    PcapWriter writer(path);
    writer.write(0, std::vector<std::uint8_t>{0x01, 0x02});
    writer.write(1, std::vector<std::uint8_t>{0x03});
  }
  // Keep record 1 whole; cut record 2 in the middle of its 16-byte header.
  std::filesystem::resize_file(path, 24 + 16 + 2 + 7);
  PcapReader reader(path);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.truncated());
  EXPECT_FALSE(reader.next().has_value());  // stays latched, no reread
  std::filesystem::remove(path);
}

TEST(Pcap, InsaneRecordLengthQuarantined) {
  const auto path = temp_pcap("mm_insane.pcap");
  {
    PcapWriter writer(path);
    writer.write(0, std::vector<std::uint8_t>{0x01, 0x02});
  }
  // Corrupt the record's incl_len (offset 24+8) to a hostile value: the
  // reader must quarantine (not allocate gigabytes or read out of bounds).
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24 + 8, SEEK_SET);
    const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0x7f};
    std::fwrite(huge, 1, sizeof(huge), f);
    std::fclose(f);
  }
  PcapReader reader(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.quarantined(), 1u);
  EXPECT_FALSE(reader.truncated());
  std::filesystem::remove(path);
}

// End-to-end: a radiotap-framed management frame written to pcap and read
// back parses into the original frame — the exact artifact chain a real
// monitor-mode capture produces.
TEST(Pcap, MonitorModeCaptureChain) {
  const auto path = temp_pcap("mm_chain.pcap");
  const MacAddress ap = *MacAddress::parse("00:1a:2b:00:00:01");
  const ManagementFrame beacon = make_beacon(ap, "CampusNet", 6, 777, 9);

  Radiotap rt;
  rt.channel_freq_mhz = 2437;
  rt.antenna_signal_dbm = -70;
  std::vector<std::uint8_t> packet = rt.serialize();
  const auto body = beacon.serialize();
  packet.insert(packet.end(), body.begin(), body.end());

  {
    PcapWriter writer(path);
    writer.write(42, packet);
  }

  PcapReader reader(path);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  const auto rt_parsed = Radiotap::parse(rec->data);
  ASSERT_TRUE(rt_parsed.ok());
  EXPECT_EQ(rt_parsed.value().header.channel_freq_mhz, 2437);
  const std::span<const std::uint8_t> frame_bytes{
      rec->data.data() + rt_parsed.value().header_length,
      rec->data.size() - rt_parsed.value().header_length};
  const auto frame = ManagementFrame::parse(frame_bytes);
  ASSERT_TRUE(frame.ok()) << frame.error();
  EXPECT_EQ(frame.value().ssid().value_or(""), "CampusNet");
  EXPECT_EQ(frame.value().addr2, ap);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mm::net80211
