#include "analysis/theorems.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/integrate.h"

namespace mm::analysis {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Integrate, PolynomialExact) {
  EXPECT_NEAR(adaptive_simpson([](double x) { return x * x; }, 0.0, 3.0), 9.0, 1e-9);
  EXPECT_NEAR(adaptive_simpson([](double x) { return 2.0 * x + 1.0; }, -1.0, 2.0), 6.0,
              1e-9);
}

TEST(Integrate, TranscendentalAccurate) {
  EXPECT_NEAR(adaptive_simpson([](double x) { return std::sin(x); }, 0.0, kPi), 2.0, 1e-9);
  EXPECT_NEAR(adaptive_simpson([](double x) { return std::exp(x); }, 0.0, 1.0),
              std::numbers::e - 1.0, 1e-9);
}

TEST(Integrate, EmptyAndReversedIntervals) {
  EXPECT_DOUBLE_EQ(adaptive_simpson([](double) { return 1.0; }, 2.0, 2.0), 0.0);
  EXPECT_THROW((void)adaptive_simpson([](double) { return 1.0; }, 2.0, 1.0),
               std::invalid_argument);
}

TEST(Thm2, KOneIsLensExpectation) {
  // For k=1 the expected area has closed form: the mean lens area of two
  // unit discs whose centers are distance x apart, x ~ with density 2x on
  // [0,1] scaled... cross-check against Monte Carlo instead of deriving.
  const double formula = thm2_expected_area(1, 1.0);
  const double mc = thm2_monte_carlo_area(1, 1.0, 20000, 99);
  EXPECT_NEAR(formula, mc, 0.02 * formula);
}

// Fig 2: the curve is monotone decreasing in k, roughly ~1/k.
TEST(Thm2, MonotoneDecreasingInK) {
  double prev = thm2_expected_area(1, 1.0);
  for (int k = 2; k <= 20; ++k) {
    const double ca = thm2_expected_area(k, 1.0);
    EXPECT_LT(ca, prev) << "k=" << k;
    prev = ca;
  }
}

TEST(Thm2, RoughInverseProportionality) {
  // Paper: "roughly inversely proportional with the number of APs". The
  // exact decay is slightly faster than 1/k (doubling k from 5 to 10 cuts
  // the area by ~3.2x), so bound the ratio loosely around 2.
  const double ca5 = thm2_expected_area(5, 1.0);
  const double ca10 = thm2_expected_area(10, 1.0);
  const double ratio = ca5 / ca10;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

// Corollary 1 scaling: CA proportional to r^2 at fixed k.
TEST(Thm2, ScalesWithRadiusSquared) {
  const double base = thm2_expected_area(6, 1.0);
  EXPECT_NEAR(thm2_expected_area(6, 2.0), base * 4.0, 1e-9);
  EXPECT_NEAR(thm2_expected_area(6, 0.5), base * 0.25, 1e-9);
}

class Thm2MonteCarloMatch : public ::testing::TestWithParam<int> {};

TEST_P(Thm2MonteCarloMatch, FormulaMatchesSimulation) {
  const int k = GetParam();
  const double formula = thm2_expected_area(k, 1.0);
  const double mc =
      thm2_monte_carlo_area(k, 1.0, 20000, 1234 + static_cast<std::uint64_t>(k));
  EXPECT_NEAR(mc, formula, 0.05 * formula + 1e-4) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(KSweep, Thm2MonteCarloMatch, ::testing::Values(1, 2, 3, 5, 8, 12));

TEST(Thm2, InvalidArguments) {
  EXPECT_THROW((void)thm2_expected_area(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)thm2_expected_area(3, 0.0), std::invalid_argument);
}

TEST(Thm3, ReducesToThm2WhenREqualsR) {
  for (int k : {2, 5, 10}) {
    EXPECT_NEAR(thm3_expected_area(k, 1.0, 1.0), thm2_expected_area(k, 1.0), 1e-6)
        << "k=" << k;
  }
}

// Fig 5: expected area grows rapidly with the overestimated radius R.
TEST(Thm3, AreaGrowsWithR) {
  double prev = thm3_expected_area(10, 1.0, 1.0);
  for (double big_r : {1.2, 1.5, 2.0, 3.0}) {
    const double ca = thm3_expected_area(10, 1.0, big_r);
    EXPECT_GT(ca, prev);
    prev = ca;
  }
  // Growth is steep: R=2 is much worse than R=1.
  EXPECT_GT(thm3_expected_area(10, 1.0, 2.0), 4.0 * thm3_expected_area(10, 1.0, 1.0));
}

TEST(Thm3, AreaRequiresROverR) {
  EXPECT_THROW((void)thm3_expected_area(5, 1.0, 0.5), std::invalid_argument);
}

// Fig 6: coverage probability collapses like (R/r)^{2k} for underestimates.
TEST(Thm3, CoverageProbabilityFormula) {
  EXPECT_DOUBLE_EQ(thm3_coverage_probability(5, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(thm3_coverage_probability(5, 1.0, 2.0), 1.0);
  EXPECT_NEAR(thm3_coverage_probability(1, 1.0, 0.5), 0.25, 1e-12);
  EXPECT_NEAR(thm3_coverage_probability(10, 1.0, 0.9), std::pow(0.9, 20.0), 1e-12);
  // Large k + underestimate: essentially zero (the paper's warning).
  EXPECT_LT(thm3_coverage_probability(10, 1.0, 0.5), 1e-5);
}

class Thm3CoverageMonteCarlo : public ::testing::TestWithParam<double> {};

TEST_P(Thm3CoverageMonteCarlo, EmpiricalCoverageMatchesFormula) {
  const double big_r = GetParam();
  const int k = 4;
  const auto mc = thm3_monte_carlo(k, 1.0, big_r, 20000, 555);
  const double expected = thm3_coverage_probability(k, 1.0, big_r);
  EXPECT_NEAR(mc.coverage_probability, expected, 0.02);
}

INSTANTIATE_TEST_SUITE_P(RSweep, Thm3CoverageMonteCarlo,
                         ::testing::Values(0.7, 0.8, 0.9, 1.0, 1.3));

TEST(Thm3, MonteCarloAreaMatchesFormulaForOverestimates) {
  for (double big_r : {1.0, 1.5, 2.0}) {
    const double formula = thm3_expected_area(6, 1.0, big_r);
    const auto mc = thm3_monte_carlo(6, 1.0, big_r, 15000, 777);
    EXPECT_NEAR(mc.mean_area, formula, 0.05 * formula) << "R=" << big_r;
  }
}

TEST(Thm3, OverestimatePreferredOverUnderestimate) {
  // The paper's conclusion from Figs 5/6: prefer R > r because an
  // underestimate destroys the coverage guarantee exponentially in k.
  const int k = 10;
  EXPECT_GT(thm3_coverage_probability(k, 1.0, 1.1), 0.999);
  EXPECT_LT(thm3_coverage_probability(k, 1.0, 0.9), 0.13);
}

}  // namespace
}  // namespace mm::analysis
