// Atlas equivalence: every indexed hot path must be bit-identical to the
// linear-scan baseline it replaced. This file pins the three layers end to
// end — the medium's delivery culling (kScan vs kIndexed worlds running the
// same scenario, clean and under a fault plan), AP-Rad's grid neighbour scan
// vs the O(n^2) oracle across thread counts, and ApDatabase's grid queries
// vs brute force over sorted_records().
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <utility>
#include <vector>

#include "capture/sniffer.h"
#include "marauder/aprad.h"
#include "marauder/tracker.h"
#include "rf/propagation.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace mm {
namespace {

struct RunResult {
  capture::ObservationStore store;
  capture::SnifferStats stats;
  capture::SnifferStats far_stats;  ///< station 50 km out: decodes nothing
  std::uint64_t transmitted = 0;
  std::uint64_t culled = 0;
};

/// One deterministic campus scenario: APs with beacons, a dozen wandering
/// probers, one sniffer. Identical inputs whatever the delivery mode.
RunResult run_campus(sim::DeliveryMode mode, const fault::FaultPlan& plan,
                     double shadowing_sigma_db = 0.0,
                     double far_station_x_m = 50000.0) {
  sim::CampusConfig campus;
  campus.seed = 2024;
  campus.num_aps = 150;
  campus.half_extent_m = 400.0;
  const auto truth = sim::generate_campus_aps(campus);

  RunResult out;
  {
    // Log-distance clutter: max_range_m is finite — with shadowing too,
    // since the truncated draw admits a 6-sigma quantile bound — so the
    // sniffer's rssi-floor culling is actually exercised.
    sim::World world({.seed = 11,
                      .propagation = std::make_shared<rf::LogDistanceModel>(
                          3.2, shadowing_sigma_db, /*seed=*/9),
                      .delivery = mode});
    sim::populate_world(world, truth, /*beacons_enabled=*/true);

    util::Rng rng(77);
    for (int i = 0; i < 12; ++i) {
      sim::MobileConfig mc;
      mc.mac = net80211::MacAddress::random(rng, {0x00, 0x21, 0x5c});
      mc.profile.probes = true;
      mc.profile.scan_interval_s = 15.0;
      mc.mobility = std::make_shared<sim::RandomWaypoint>(
          geo::Vec2{-400.0, -400.0}, geo::Vec2{400.0, 400.0}, 1.0, 2.0, 200.0,
          500 + static_cast<std::uint64_t>(i));
      world.add_mobile(std::make_unique<sim::MobileDevice>(mc));
    }

    capture::SnifferConfig sc;
    sc.position = {0.0, 0.0};
    sc.antenna_height_m = 20.0;
    sc.fault_plan = plan;
    capture::Sniffer sniffer(sc, &out.store);
    sniffer.attach(world);

    // A second station 50 km out — far beyond the log-distance model's
    // conservative max_range_m for its decode floor, so its rssi-floor
    // interest culls every delivery in kIndexed while kScan still offers
    // each frame. Its decode probability is exactly 0 either way.
    capture::ObservationStore far_store;
    capture::SnifferConfig far_sc;
    far_sc.position = {far_station_x_m, 0.0};
    far_sc.antenna_height_m = 20.0;
    far_sc.fault_plan = plan;
    capture::Sniffer far_sniffer(far_sc, &far_store);
    far_sniffer.attach(world);

    world.run_until(90.0);
    out.stats = sniffer.stats();
    out.far_stats = far_sniffer.stats();
    out.transmitted = world.frames_transmitted();
    out.culled = world.deliveries_culled();
    EXPECT_EQ(far_store.device_count(), 0u);
  }
  return out;
}

void expect_stores_equal(const capture::ObservationStore& a,
                         const capture::ObservationStore& b) {
  ASSERT_EQ(a.devices(), b.devices());
  for (const auto& mac : a.devices()) {
    const capture::DeviceRecord* ra = a.device(mac);
    const capture::DeviceRecord* rb = b.device(mac);
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(ra->first_seen, rb->first_seen) << mac.to_string();
    EXPECT_EQ(ra->last_seen, rb->last_seen) << mac.to_string();
    EXPECT_EQ(ra->probe_requests, rb->probe_requests) << mac.to_string();
    EXPECT_EQ(ra->directed_ssids, rb->directed_ssids) << mac.to_string();
    ASSERT_EQ(ra->contacts.size(), rb->contacts.size()) << mac.to_string();
    auto itb = rb->contacts.begin();
    for (const auto& [ap, ca] : ra->contacts) {
      ASSERT_EQ(ap, itb->first) << mac.to_string();
      const capture::ApContact& cb = itb->second;
      EXPECT_EQ(ca.first_seen, cb.first_seen);
      EXPECT_EQ(ca.last_seen, cb.last_seen);
      EXPECT_EQ(ca.count, cb.count);
      EXPECT_EQ(ca.last_rssi_dbm, cb.last_rssi_dbm);
      EXPECT_EQ(ca.times, cb.times);
      ++itb;
    }
  }
  ASSERT_EQ(a.ap_sightings().size(), b.ap_sightings().size());
  auto itb = b.ap_sightings().begin();
  for (const auto& [bssid, sa] : a.ap_sightings()) {
    ASSERT_EQ(bssid, itb->first);
    EXPECT_EQ(sa.ssid, itb->second.ssid);
    EXPECT_EQ(sa.channel, itb->second.channel);
    EXPECT_EQ(sa.beacons, itb->second.beacons);
    EXPECT_EQ(sa.last_rssi_dbm, itb->second.last_rssi_dbm);
    ++itb;
  }
}

void expect_results_equal(
    const std::map<net80211::MacAddress, marauder::LocalizationResult>& a,
    const std::map<net80211::MacAddress, marauder::LocalizationResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  auto itb = b.begin();
  for (const auto& [mac, ra] : a) {
    ASSERT_EQ(mac, itb->first);
    const marauder::LocalizationResult& rb = itb->second;
    EXPECT_EQ(ra.ok, rb.ok) << mac.to_string();
    EXPECT_EQ(ra.method, rb.method) << mac.to_string();
    // Bit-exact, not "near": the whole point of the determinism contract.
    EXPECT_EQ(ra.estimate.x, rb.estimate.x) << mac.to_string();
    EXPECT_EQ(ra.estimate.y, rb.estimate.y) << mac.to_string();
    EXPECT_EQ(ra.num_aps, rb.num_aps) << mac.to_string();
    EXPECT_EQ(ra.used_fallback, rb.used_fallback) << mac.to_string();
    ++itb;
  }
}

TEST(AtlasEquivalence, DeliveryCullingIsInvisibleClean) {
  const RunResult scan = run_campus(sim::DeliveryMode::kScan, {});
  const RunResult indexed = run_campus(sim::DeliveryMode::kIndexed, {});

  EXPECT_EQ(scan.culled, 0u);
  EXPECT_GT(indexed.culled, 0u);  // the index must actually cull, or this test is vacuous
  EXPECT_EQ(scan.transmitted, indexed.transmitted);
  // The far station proves the rssi-floor culling: kScan offers it every
  // frame, kIndexed none — and it decodes zero either way.
  EXPECT_EQ(scan.far_stats.frames_on_air, scan.transmitted);
  EXPECT_EQ(indexed.far_stats.frames_on_air, 0u);
  EXPECT_EQ(scan.far_stats.frames_decoded, 0u);
  EXPECT_EQ(indexed.far_stats.frames_decoded, 0u);
  // Offered deliveries never grow; everything decodable is untouched.
  EXPECT_GE(scan.stats.frames_on_air, indexed.stats.frames_on_air);
  EXPECT_EQ(scan.stats.frames_decoded, indexed.stats.frames_decoded);
  EXPECT_EQ(scan.stats.probe_requests, indexed.stats.probe_requests);
  EXPECT_EQ(scan.stats.probe_responses, indexed.stats.probe_responses);
  EXPECT_EQ(scan.stats.beacons, indexed.stats.beacons);
  EXPECT_EQ(scan.stats.associations, indexed.stats.associations);
  EXPECT_EQ(scan.stats.data_frames, indexed.stats.data_frames);
  expect_stores_equal(scan.store, indexed.store);
}

TEST(AtlasEquivalence, DeliveryCullingIsInvisibleUnderFaults) {
  fault::FaultPlan plan;
  plan.corrupt_rate = 0.02;
  plan.truncate_rate = 0.01;
  plan.drop_rate = 0.02;
  plan.duplicate_rate = 0.01;
  plan.nic_dropout_rate = 0.1;
  plan.nic_dropout_mean_s = 10.0;
  plan.clock_skew_max_s = 0.25;
  plan.clock_drift_max_ppm = 40.0;
  plan.seed = 0xFA11;

  const RunResult scan = run_campus(sim::DeliveryMode::kScan, plan);
  const RunResult indexed = run_campus(sim::DeliveryMode::kIndexed, plan);

  EXPECT_GT(indexed.culled, 0u);
  EXPECT_EQ(scan.stats.frames_decoded, indexed.stats.frames_decoded);
  EXPECT_EQ(scan.stats.frames_quarantined, indexed.stats.frames_quarantined);
  EXPECT_EQ(scan.stats.frames_fault_dropped, indexed.stats.frames_fault_dropped);
  EXPECT_EQ(scan.stats.frames_fault_duplicated, indexed.stats.frames_fault_duplicated);
  // (card_down_skips is NOT compared: it counts decode attempts during
  // dropout windows, and culled sub-floor deliveries never attempt.)
  expect_stores_equal(scan.store, indexed.store);
}

TEST(AtlasEquivalence, ShadowedRssiFloorCullingIsInvisible) {
  // Before Slipstream, LogDistanceModel with shadowing retreated to
  // max_range_m = +infinity — shadowed worlds culled nothing and the indexed
  // medium degenerated to a full scan. The draw is now truncated at
  // +/- 6 sigma, so the quantile bound (inverse of the -6 sigma envelope) is
  // provably conservative: the indexed run culls real deliveries while
  // decoding, quarantining, and storing exactly what the scan run does. The
  // shadowing term is a pure position hash — culled links consume zero
  // Bernoulli draws from the event RNG stream, which is what keeps the two
  // modes bit-identical.
  // The 6-sigma allowance widens the cull radius by 10^(36 / (10 * 3.2)) —
  // about 13x — so the shadowed far station sits at 1000 km: provably past
  // the widened bound, because the clean runs above prove the base bound is
  // under 50 km.
  const double sigma_db = 6.0;
  const double far_x_m = 1.0e6;
  const RunResult scan = run_campus(sim::DeliveryMode::kScan, {}, sigma_db, far_x_m);
  const RunResult indexed = run_campus(sim::DeliveryMode::kIndexed, {}, sigma_db, far_x_m);

  EXPECT_EQ(scan.culled, 0u);
  EXPECT_GT(indexed.culled, 0u);  // the finite shadowed bound must actually cull
  EXPECT_EQ(scan.transmitted, indexed.transmitted);
  // The far station sits beyond even the 6-sigma-widened bound, so its
  // rssi-floor interest culls everything in kIndexed; either way it decodes
  // nothing (its links are below the exact-zero decode floor).
  EXPECT_EQ(scan.far_stats.frames_on_air, scan.transmitted);
  EXPECT_EQ(indexed.far_stats.frames_on_air, 0u);
  EXPECT_EQ(scan.far_stats.frames_decoded, 0u);
  EXPECT_EQ(indexed.far_stats.frames_decoded, 0u);
  EXPECT_GE(scan.stats.frames_on_air, indexed.stats.frames_on_air);
  EXPECT_EQ(scan.stats.frames_decoded, indexed.stats.frames_decoded);
  EXPECT_EQ(scan.stats.probe_requests, indexed.stats.probe_requests);
  EXPECT_EQ(scan.stats.beacons, indexed.stats.beacons);
  expect_stores_equal(scan.store, indexed.store);
}

TEST(AtlasEquivalence, LocateAllBitIdenticalAcrossModesAndThreads) {
  const RunResult scan = run_campus(sim::DeliveryMode::kScan, {});
  const RunResult indexed = run_campus(sim::DeliveryMode::kIndexed, {});

  sim::CampusConfig campus;
  campus.seed = 2024;
  campus.num_aps = 150;
  campus.half_extent_m = 400.0;
  const auto truth = sim::generate_campus_aps(campus);

  std::optional<std::map<net80211::MacAddress, marauder::LocalizationResult>> reference;
  for (const capture::ObservationStore* store : {&scan.store, &indexed.store}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      marauder::TrackerOptions options;
      options.algorithm = marauder::Algorithm::kApRad;
      options.threads = threads;
      marauder::Tracker tracker(marauder::ApDatabase::from_truth(truth, false), options);
      tracker.prepare(*store);
      const auto results = tracker.locate_all(*store);
      if (!reference) {
        EXPECT_FALSE(results.empty());
        reference = results;
      } else {
        expect_results_equal(*reference, results);
      }
    }
  }
}

// Torn-write checkpointing used to force always-deliver (clock-driven
// checkpoints rode the delivery stream, so the interest had to stay open).
// Now checkpoints are event-queue scheduled: a torn-write station keeps its
// tight interest, the medium culls it like any other, and the checkpoint
// cadence — and the store — are identical in both delivery modes.
TEST(AtlasEquivalence, TornWriteSnifferIsStillCulled) {
  fault::FaultPlan plan;
  plan.torn_write_rate = 0.3;
  plan.seed = 0x70;

  struct TornRun {
    capture::ObservationStore store;
    capture::SnifferStats stats;
    std::size_t checkpoints = 0;
    std::uint64_t torn = 0;
    std::uint64_t culled = 0;
  };
  const auto run_mode = [&](sim::DeliveryMode mode) {
    sim::CampusConfig campus;
    campus.seed = 2024;
    campus.num_aps = 60;
    campus.half_extent_m = 300.0;
    const auto truth = sim::generate_campus_aps(campus);

    TornRun out;
    sim::World world({.seed = 31,
                      .propagation = std::make_shared<rf::LogDistanceModel>(3.2),
                      .delivery = mode});
    sim::populate_world(world, truth, /*beacons_enabled=*/true);
    util::Rng rng(55);
    for (int i = 0; i < 6; ++i) {
      sim::MobileConfig mc;
      mc.mac = net80211::MacAddress::random(rng, {0x00, 0x21, 0x5c});
      mc.profile.probes = true;
      mc.profile.scan_interval_s = 10.0;
      mc.mobility = std::make_shared<sim::RandomWaypoint>(
          geo::Vec2{-300.0, -300.0}, geo::Vec2{300.0, 300.0}, 1.0, 2.0, 150.0,
          900 + static_cast<std::uint64_t>(i));
      world.add_mobile(std::make_unique<sim::MobileDevice>(mc));
    }

    capture::SnifferConfig sc;
    sc.position = {0.0, 0.0};
    sc.antenna_height_m = 20.0;
    sc.fault_plan = plan;
    sc.checkpoint_path = std::filesystem::temp_directory_path() /
                         (mode == sim::DeliveryMode::kScan ? "mm_torn_scan.csv"
                                                           : "mm_torn_indexed.csv");
    sc.checkpoint_interval_s = 5.0;
    capture::Sniffer sniffer(sc, &out.store);
    sniffer.attach(world);
    world.run_until(60.0);
    out.stats = sniffer.stats();
    out.checkpoints = sniffer.checkpointer()->checkpoints_written();
    out.torn = sniffer.checkpointer()->failures();
    out.culled = world.deliveries_culled();
    std::filesystem::remove(*sc.checkpoint_path);
    return out;
  };

  const TornRun scan = run_mode(sim::DeliveryMode::kScan);
  const TornRun indexed = run_mode(sim::DeliveryMode::kIndexed);

  // The whole point of the decoupling: the torn-write station no longer
  // pins its interest open, so the indexed medium actually culls.
  EXPECT_EQ(scan.culled, 0u);
  EXPECT_GT(indexed.culled, 0u);
  // Clock-driven cadence is delivery-mode independent, torn saves included.
  EXPECT_EQ(scan.checkpoints + scan.torn, 12u);
  EXPECT_EQ(scan.checkpoints, indexed.checkpoints);
  EXPECT_EQ(scan.torn, indexed.torn);
  EXPECT_EQ(scan.stats.frames_decoded, indexed.stats.frames_decoded);
  expect_stores_equal(scan.store, indexed.store);
}

TEST(AtlasEquivalence, ApRadConstraintsGridMatchesScanAcrossThreads) {
  const RunResult run = run_campus(sim::DeliveryMode::kIndexed, {});
  const auto gammas = run.store.session_gammas(5.0);
  ASSERT_FALSE(gammas.empty());

  sim::CampusConfig campus;
  campus.seed = 2024;
  campus.num_aps = 150;
  campus.half_extent_m = 400.0;
  const marauder::ApDatabase db =
      marauder::ApDatabase::from_truth(sim::generate_campus_aps(campus), false);

  std::optional<marauder::ApRadConstraints> reference;
  std::optional<std::map<net80211::MacAddress, double>> reference_radii;
  for (const bool spatial : {false, true}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      marauder::ApRadOptions options;
      options.spatial_index = spatial;
      options.threads = threads;
      const marauder::ApRadConstraints got =
          marauder::aprad_prepare_constraints(db, gammas, options);
      const auto radii = marauder::aprad_estimate_radii(db, gammas, options);
      if (!reference) {
        EXPECT_FALSE(got.observed.empty());
        EXPECT_FALSE(got.less_rows.empty());
        reference = got;
        reference_radii = radii;
        continue;
      }
      EXPECT_EQ(reference->observed, got.observed) << spatial << "/" << threads;
      ASSERT_EQ(reference->position.size(), got.position.size());
      for (std::size_t i = 0; i < got.position.size(); ++i) {
        EXPECT_EQ(reference->position[i].x, got.position[i].x);
        EXPECT_EQ(reference->position[i].y, got.position[i].y);
      }
      EXPECT_EQ(reference->less_rows, got.less_rows) << spatial << "/" << threads;
      EXPECT_EQ(reference->co_pairs, got.co_pairs) << spatial << "/" << threads;
      EXPECT_EQ(reference->co_dist, got.co_dist) << spatial << "/" << threads;
      EXPECT_EQ(*reference_radii, radii) << spatial << "/" << threads;
    }
  }
}

TEST(AtlasEquivalence, ApDatabaseGridQueriesMatchBruteForce) {
  sim::CampusConfig campus;
  campus.seed = 31337;
  campus.num_aps = 200;
  campus.half_extent_m = 500.0;
  const marauder::ApDatabase db =
      marauder::ApDatabase::from_truth(sim::generate_campus_aps(campus), true);
  const std::vector<const marauder::KnownAp*>& sorted = db.sorted_records();
  ASSERT_EQ(sorted.size(), 200u);

  util::Rng rng(0xDB);
  for (int q = 0; q < 40; ++q) {
    const geo::Vec2 center{rng.uniform(-600.0, 600.0), rng.uniform(-600.0, 600.0)};
    const double radius = rng.uniform(0.0, 700.0);
    std::vector<const marauder::KnownAp*> brute;
    for (const marauder::KnownAp* ap : sorted) {
      if (ap->position.distance_to(center) <= radius) brute.push_back(ap);
    }
    EXPECT_EQ(db.aps_in_range(center, radius), brute) << "query " << q;

    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(0, 12));
    std::vector<const marauder::KnownAp*> ranked(sorted.begin(), sorted.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&](const marauder::KnownAp* a, const marauder::KnownAp* b) {
                       return a->position.distance_to(center) <
                              b->position.distance_to(center);
                     });  // stable over ascending BSSID = the (distance, BSSID) order
    ranked.resize(std::min(k, ranked.size()));
    EXPECT_EQ(db.nearest_aps(center, k), ranked) << "query " << q;
  }
}

TEST(AtlasEquivalence, ApDatabaseCachesInvalidateOnAddOnly) {
  marauder::ApDatabase db;
  marauder::KnownAp a;
  a.bssid = *net80211::MacAddress::parse("00:00:00:00:00:02");
  a.position = {10.0, 0.0};
  db.add(a);
  marauder::KnownAp b;
  b.bssid = *net80211::MacAddress::parse("00:00:00:00:00:01");
  b.position = {0.0, 0.0};
  db.add(b);

  const auto& sorted = db.sorted_records();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0]->bssid, b.bssid);  // ascending BSSID, not insertion order
  // set_radius mutates in place: the cached view must survive, same pointers.
  const marauder::KnownAp* before = sorted[0];
  db.set_radius(b.bssid, 42.0);
  EXPECT_EQ(db.sorted_records()[0], before);
  EXPECT_EQ(db.sorted_records()[0]->radius_m, 42.0);
  EXPECT_EQ(db.nearest_aps({-1.0, 0.0}, 1).front()->bssid, b.bssid);

  // add() must invalidate both the sorted view and the grid.
  marauder::KnownAp c;
  c.bssid = *net80211::MacAddress::parse("00:00:00:00:00:00");
  c.position = {-5.0, 0.0};
  db.add(c);
  ASSERT_EQ(db.sorted_records().size(), 3u);
  EXPECT_EQ(db.sorted_records()[0]->bssid, c.bssid);
  EXPECT_EQ(db.nearest_aps({-6.0, 0.0}, 1).front()->bssid, c.bssid);

  // Copies serve the same answers from their own (cold) caches.
  const marauder::ApDatabase copy = db;
  ASSERT_EQ(copy.sorted_records().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NE(copy.sorted_records()[i], db.sorted_records()[i]);  // distinct storage
    EXPECT_EQ(copy.sorted_records()[i]->bssid, db.sorted_records()[i]->bssid);
  }
  // Moves keep the cache (map nodes are pointer-stable across a move).
  marauder::ApDatabase moved = std::move(db);
  ASSERT_EQ(moved.sorted_records().size(), 3u);
  EXPECT_EQ(moved.sorted_records()[0]->bssid, c.bssid);
}

TEST(AtlasEquivalence, GammaSortedMatchesGamma) {
  const RunResult run = run_campus(sim::DeliveryMode::kIndexed, {});
  ASSERT_GT(run.store.device_count(), 0u);
  const capture::ObservationWindow windows[] = {{}, {20.0, 60.0}, {89.0, 90.0}};
  for (const auto& mac : run.store.devices()) {
    for (const auto& window : windows) {
      const auto set_gamma = run.store.gamma(mac, window);
      const auto vec_gamma = run.store.gamma_sorted(mac, window);
      EXPECT_EQ(std::vector<net80211::MacAddress>(set_gamma.begin(), set_gamma.end()),
                vec_gamma)
          << mac.to_string();
      EXPECT_TRUE(std::is_sorted(vec_gamma.begin(), vec_gamma.end()));
    }
  }
}

}  // namespace
}  // namespace mm
