#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mm::sim {
namespace {

TEST(EventQueue, StartsAtZeroAndEmpty) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run_until(10.0), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  q.schedule(1.0, [&] { ++ran; });
  q.schedule(2.0, [&] { ++ran; });
  q.schedule(3.0, [&] { ++ran; });
  EXPECT_EQ(q.run_until(2.0), 2u);  // events at t <= 2 inclusive
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int chain = 0;
  std::function<void()> tick = [&] {
    if (++chain < 5) q.schedule_in(1.0, tick);
  };
  q.schedule(0.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(chain, 5);
}

TEST(EventQueue, NowAdvancesDuringExecution) {
  EventQueue q;
  SimTime seen = -1.0;
  q.schedule(4.5, [&] { seen = q.now(); });
  q.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_until(5.0);
  EXPECT_THROW(q.schedule(4.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  SimTime seen = -1.0;
  q.schedule(2.0, [&] { q.schedule_in(3.0, [&] { seen = q.now(); }); });
  q.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EventQueue, RunAllDrains) {
  EventQueue q;
  int ran = 0;
  q.schedule(1.0, [&] { ++ran; });
  q.schedule(100.0, [&] { ++ran; });
  EXPECT_EQ(q.run_all(), 2u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(ran, 2);
}

}  // namespace
}  // namespace mm::sim
