#include "net80211/frames.h"

#include <gtest/gtest.h>

#include "net80211/crc32.h"

namespace mm::net80211 {
namespace {

const MacAddress kAp = *MacAddress::parse("00:1a:2b:00:00:01");
const MacAddress kClient = *MacAddress::parse("00:16:6f:00:00:02");

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0x00000000u);
}

TEST(Frames, BeaconRoundtrip) {
  const ManagementFrame beacon = make_beacon(kAp, "CampusNet", 6, 123456789, 42);
  const auto bytes = beacon.serialize();
  const auto parsed = ManagementFrame::parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const ManagementFrame& f = parsed.value();
  EXPECT_EQ(f.subtype, ManagementSubtype::kBeacon);
  EXPECT_EQ(f.addr1, MacAddress::broadcast());
  EXPECT_EQ(f.addr2, kAp);
  EXPECT_EQ(f.addr3, kAp);
  EXPECT_EQ(f.sequence, 42);
  EXPECT_EQ(f.timestamp_us, 123456789u);
  EXPECT_EQ(f.ssid().value_or(""), "CampusNet");
  EXPECT_EQ(f.ds_channel().value_or(0), 6);
}

TEST(Frames, ProbeRequestWildcard) {
  const ManagementFrame probe = make_probe_request(kClient, std::nullopt, 7);
  const auto parsed = ManagementFrame::parse(probe.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().subtype, ManagementSubtype::kProbeRequest);
  EXPECT_EQ(parsed.value().addr2, kClient);
  ASSERT_TRUE(parsed.value().ssid().has_value());
  EXPECT_TRUE(parsed.value().ssid()->empty());  // wildcard SSID
}

TEST(Frames, ProbeRequestDirected) {
  const ManagementFrame probe = make_probe_request(kClient, "HomeNet", 8);
  const auto parsed = ManagementFrame::parse(probe.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().ssid().value_or(""), "HomeNet");
}

TEST(Frames, ProbeResponseAddressing) {
  const ManagementFrame resp = make_probe_response(kAp, kClient, "CampusNet", 11, 99, 3);
  const auto parsed = ManagementFrame::parse(resp.serialize());
  ASSERT_TRUE(parsed.ok());
  // The response is unicast to the client with the AP as source/BSSID: this
  // is the (client, AP) communicability evidence the attack consumes.
  EXPECT_EQ(parsed.value().addr1, kClient);
  EXPECT_EQ(parsed.value().addr2, kAp);
  EXPECT_EQ(parsed.value().addr3, kAp);
  EXPECT_EQ(parsed.value().ds_channel().value_or(0), 11);
}

TEST(Frames, DeauthRoundtrip) {
  const ManagementFrame deauth = make_deauth(kClient, kAp, 7, 12);
  const auto parsed = ManagementFrame::parse(deauth.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().subtype, ManagementSubtype::kDeauthentication);
  EXPECT_EQ(parsed.value().reason_code, 7);
  EXPECT_TRUE(parsed.value().ies.empty());
}

TEST(Frames, FcsCorruptionRejected) {
  auto bytes = make_beacon(kAp, "X", 1, 0, 0).serialize();
  bytes[10] ^= 0x01;  // flip a bit in an address
  const auto parsed = ManagementFrame::parse(bytes);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("FCS"), std::string::npos);
}

TEST(Frames, FcsCheckCanBeSkipped) {
  auto bytes = make_beacon(kAp, "X", 1, 0, 0).serialize();
  bytes[10] ^= 0x01;
  EXPECT_TRUE(ManagementFrame::parse(bytes, /*verify_fcs=*/false).ok());
}

TEST(Frames, TooShortRejected) {
  const std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(ManagementFrame::parse(tiny).ok());
}

TEST(Frames, TruncatedIeRejected) {
  auto bytes = make_beacon(kAp, "LongSSIDName", 6, 0, 0).serialize();
  // Chop the frame inside the SSID IE and recompute a valid FCS so the IE
  // parser (not the FCS check) sees the truncation.
  bytes.resize(40);
  const std::uint32_t fcs = crc32(bytes);
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(fcs >> (8 * i)));
  EXPECT_FALSE(ManagementFrame::parse(bytes).ok());
}

TEST(Frames, NonManagementTypeRejected) {
  auto bytes = make_beacon(kAp, "X", 1, 0, 0).serialize();
  bytes[0] = 0x08;  // type = data
  bytes.resize(bytes.size() - 4);
  const std::uint32_t fcs = crc32(bytes);
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(fcs >> (8 * i)));
  const auto parsed = ManagementFrame::parse(bytes);
  EXPECT_FALSE(parsed.ok());
}

TEST(Frames, SequenceNumberSurvives) {
  for (std::uint16_t seq : {0, 1, 255, 4095}) {
    const auto parsed = ManagementFrame::parse(make_probe_request(kClient, "s", seq).serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().sequence, seq);
  }
}

TEST(Frames, FindIeReturnsNullWhenAbsent) {
  const ManagementFrame deauth = make_deauth(kClient, kAp, 1, 0);
  EXPECT_EQ(deauth.find_ie(ie::kSsid), nullptr);
  EXPECT_FALSE(deauth.ssid().has_value());
  EXPECT_FALSE(deauth.ds_channel().has_value());
}

TEST(Frames, SubtypeNames) {
  EXPECT_STREQ(subtype_name(ManagementSubtype::kBeacon), "beacon");
  EXPECT_STREQ(subtype_name(ManagementSubtype::kProbeRequest), "probe-request");
  EXPECT_STREQ(subtype_name(ManagementSubtype::kProbeResponse), "probe-response");
  EXPECT_STREQ(subtype_name(ManagementSubtype::kDeauthentication), "deauthentication");
}

TEST(Frames, SupportedRatesIncludeBasicDsssSet) {
  const auto rates = ie::supported_rates_bg();
  EXPECT_EQ(rates.id, ie::kSupportedRates);
  // 0x82 = 1 Mbps basic, 0x96 = 11 Mbps basic.
  EXPECT_NE(std::find(rates.payload.begin(), rates.payload.end(), 0x82), rates.payload.end());
  EXPECT_NE(std::find(rates.payload.begin(), rates.payload.end(), 0x96), rates.payload.end());
}

}  // namespace
}  // namespace mm::net80211
