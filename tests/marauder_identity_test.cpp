// Chimera IdentityResolver: the two-level pseudonym -> identity model.
//
// Covers the refactor's acceptance contract: the null point (no signals =
// one singleton per MAC, the pre-Chimera behaviour), bit-equivalence with
// the legacy SSID linker, thread-count independence of resolution, the
// sequence/Gamma signals re-linking rotations the SSID fingerprint misses,
// and the adversarial cases — coincident fingerprints, rotation inside a
// silent gap, counter wraparound at 4096, ambiguous seams.
#include "marauder/identity.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "marauder/linker.h"

namespace mm::marauder {
namespace {

net80211::MacAddress mac(int i) {
  std::array<std::uint8_t, 6> bytes{0x02, 0x00, 0x00, 0x00,
                                    static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xFF)};
  return net80211::MacAddress(bytes);
}

void probe(capture::ObservationStore& store, int device, double t,
           std::initializer_list<const char*> ssids) {
  store.record_probe_request(mac(device), t, std::nullopt);
  for (const char* ssid : ssids) {
    store.record_probe_request(mac(device), t, std::string(ssid));
  }
}

/// One sequence-bearing frame: presence + counter sample at `t`.
void seq_frame(capture::ObservationStore& store, int device, double t,
               std::uint16_t seq) {
  store.record_probe_request(mac(device), t, std::nullopt);
  store.record_device_seq(mac(device), t, seq);
}

ResolverOptions seq_only() {
  ResolverOptions options;
  options.signals = {false, true, false};
  return options;
}

// --- null point -------------------------------------------------------

TEST(IdentityResolver, NoSignalsYieldsOneSingletonPerMac) {
  capture::ObservationStore store;
  probe(store, 0, 1.0, {"shared-net"});
  probe(store, 1, 2.0, {"shared-net"});
  seq_frame(store, 2, 3.0, 100);
  seq_frame(store, 3, 3.5, 101);

  ResolverOptions options;
  options.signals = ResolverSignals::none();
  const IdentityMap map = resolve_identities(store, options);
  EXPECT_EQ(map.size(), store.device_count());
  for (const ResolvedIdentity& identity : map.identities) {
    EXPECT_EQ(identity.macs.size(), 1u);
    EXPECT_FALSE(identity.pseudonymous());
  }
  for (const auto& m : store.devices()) {
    ASSERT_NE(map.identity_of(m), nullptr);
    EXPECT_EQ(map.identity_of(m)->macs[0], m);
  }
}

// --- legacy linker equivalence ----------------------------------------

TEST(IdentityResolver, SsidOnlyMatchesLegacyLinkerExactly) {
  capture::ObservationStore store;
  probe(store, 0, 1.0, {"net-a"});
  probe(store, 1, 2.0, {"net-a", "net-b"});
  probe(store, 2, 3.0, {"net-b"});
  probe(store, 3, 4.0, {"solo-net"});
  probe(store, 4, 5.0, {});
  for (int i = 10; i < 16; ++i) probe(store, i, 6.0, {"crowded-net"});

  const std::vector<LinkedIdentity> legacy = link_identities(store);

  ResolverOptions options;  // defaults == legacy linker defaults
  const IdentityMap map = resolve_identities(store, options);

  ASSERT_EQ(map.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(map.identities[i].macs, legacy[i].macs) << "group " << i;
    EXPECT_EQ(map.identities[i].fingerprint, legacy[i].fingerprint) << "group " << i;
  }
}

// --- thread-count independence ----------------------------------------

TEST(IdentityResolver, ResolutionIsBitIdenticalAcrossThreadCounts) {
  // A population large enough to split into several chunks: rotation chains
  // (shared rare SSIDs + continuing counters), a popular SSID, loners.
  capture::ObservationStore store;
  for (int d = 0; d < 40; ++d) {
    const double base = 10.0 * d;
    const std::string home = "home-" + std::to_string(d);
    probe(store, 3 * d, base, {home.c_str(), "campus-net"});
    seq_frame(store, 3 * d, base + 1.0, static_cast<std::uint16_t>((37 * d) & 0x0FFF));
    probe(store, 3 * d + 1, base + 5.0, {home.c_str()});
    seq_frame(store, 3 * d + 1, base + 5.5,
              static_cast<std::uint16_t>((37 * d + 3) & 0x0FFF));
    probe(store, 3 * d + 2, base + 9.0, {});
  }

  ResolverOptions options;
  options.signals = ResolverSignals::all();
  IdentityMap reference;
  bool have_reference = false;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    options.threads = threads;
    const IdentityMap map = resolve_identities(store, options);
    if (!have_reference) {
      reference = map;
      have_reference = true;
      continue;
    }
    SCOPED_TRACE("threads " + std::to_string(threads));
    ASSERT_EQ(map.size(), reference.size());
    for (std::size_t i = 0; i < map.size(); ++i) {
      EXPECT_EQ(map.identities[i].id, reference.identities[i].id);
      EXPECT_EQ(map.identities[i].macs, reference.identities[i].macs);
      EXPECT_EQ(map.identities[i].fingerprint, reference.identities[i].fingerprint);
      EXPECT_EQ(map.identities[i].first_seen, reference.identities[i].first_seen);
      EXPECT_EQ(map.identities[i].last_seen, reference.identities[i].last_seen);
    }
    EXPECT_EQ(map.by_mac, reference.by_mac);
  }
}

// --- sequence continuity ----------------------------------------------

TEST(IdentityResolver, SequenceContinuityRelinksWhatSsidMisses) {
  // A rotation with fully anonymized probing: no directed SSIDs at all, so
  // the legacy signal has nothing — but the counter keeps counting.
  capture::ObservationStore store;
  seq_frame(store, 0, 10.0, 500);
  seq_frame(store, 0, 40.0, 520);
  seq_frame(store, 1, 55.0, 523);  // fresh MAC, 15 s later, counter +3

  ResolverOptions ssid_options;  // defaults: SSID only
  EXPECT_EQ(resolve_identities(store, ssid_options).size(), 2u);

  const IdentityMap map = resolve_identities(store, seq_only());
  ASSERT_EQ(map.size(), 1u);
  EXPECT_EQ(map.identities[0].macs,
            std::vector<net80211::MacAddress>({mac(0), mac(1)}));
}

TEST(IdentityResolver, RotationInsideSilentGapIsNotLinkable) {
  // Same seam, but the device went silent past seq_max_gap_s before
  // resurfacing: the signal must (correctly) fail to claim it.
  capture::ObservationStore store;
  seq_frame(store, 0, 10.0, 500);
  seq_frame(store, 0, 40.0, 520);
  ResolverOptions options = seq_only();
  options.seq_max_gap_s = 30.0;
  seq_frame(store, 1, 40.0 + options.seq_max_gap_s + 5.0, 523);
  EXPECT_EQ(resolve_identities(store, options).size(), 2u);
}

TEST(IdentityResolver, SequenceWraparoundAt4096Links) {
  // last_seq 4090 -> first_seq 5 is a forward hop of 11 mod 4096.
  capture::ObservationStore store;
  seq_frame(store, 0, 10.0, 4090);
  seq_frame(store, 1, 20.0, 5);
  const IdentityMap map = resolve_identities(store, seq_only());
  ASSERT_EQ(map.size(), 1u);
  EXPECT_EQ(map.identities[0].macs.size(), 2u);
}

TEST(IdentityResolver, CoexistingPseudonymsNeverSeamLink) {
  // Perfect counter continuation, but the "fresh" MAC was already alive
  // before the old one vanished — two radios, not a rotation.
  capture::ObservationStore store;
  seq_frame(store, 0, 10.0, 100);
  seq_frame(store, 0, 50.0, 140);
  store.record_presence(mac(1), 30.0);  // alive before mac(0) vanished
  seq_frame(store, 1, 55.0, 141);       // counter-adjacent, inside the window
  EXPECT_EQ(resolve_identities(store, seq_only()).size(), 2u);
}

TEST(IdentityResolver, SeamsAreMutualBestNotEveryCandidate) {
  // Two coexisting pseudonyms die, one is born: both deltas are admissible,
  // but only the closer counter (mac(1), delta 1) may claim the newborn.
  // Without mutual-best matching all three would chain into one identity.
  capture::ObservationStore store;
  seq_frame(store, 0, 5.0, 80);
  seq_frame(store, 0, 10.0, 90);   // delta to newborn: 12
  seq_frame(store, 1, 6.0, 95);    // coexists with mac(0): no seam between them
  seq_frame(store, 1, 12.0, 101);  // delta to newborn: 1
  seq_frame(store, 2, 20.0, 102);  // the newborn
  const IdentityMap map = resolve_identities(store, seq_only());
  ASSERT_EQ(map.size(), 2u);
  const ResolvedIdentity* winner = map.identity_of(mac(2));
  ASSERT_NE(winner, nullptr);
  EXPECT_EQ(winner->macs, std::vector<net80211::MacAddress>({mac(1), mac(2)}));
  EXPECT_EQ(map.identity_of(mac(0))->macs.size(), 1u);
}

// --- Gamma similarity + temporal adjacency ----------------------------

TEST(IdentityResolver, GammaAdjacencyRelinksAnonymousRotation) {
  // No SSIDs, no usable counters — but the fresh MAC appears seconds later
  // hearing the same three APs the vanished one heard at death.
  capture::ObservationStore store;
  for (int ap = 100; ap < 103; ++ap) {
    store.record_contact(mac(ap), mac(0), 95.0, -60.0);
    store.record_contact(mac(ap), mac(1), 110.0, -61.0);
  }
  store.record_presence(mac(0), 100.0);
  store.record_presence(mac(1), 105.0);

  ResolverOptions options;
  options.signals = {false, false, true};
  const IdentityMap map = resolve_identities(store, options);
  ASSERT_EQ(map.size(), 1u);
  EXPECT_EQ(map.identities[0].macs,
            std::vector<net80211::MacAddress>({mac(0), mac(1)}));
}

TEST(IdentityResolver, GammaRequiresEnoughCommonAps) {
  // One shared AP with a perfect Jaccard is coincidence, not evidence.
  capture::ObservationStore store;
  store.record_contact(mac(100), mac(0), 95.0, -60.0);
  store.record_contact(mac(100), mac(1), 110.0, -61.0);
  ResolverOptions options;
  options.signals = {false, false, true};
  options.gamma_min_common = 2;
  EXPECT_EQ(resolve_identities(store, options).size(), 2u);
}

// --- coincident fingerprints / popularity ------------------------------

TEST(IdentityResolver, CoincidentPopularFingerprintsStayUnmerged) {
  // Five strangers probing the same campus SSID at the same instant, with
  // every signal armed: nothing real links them.
  capture::ObservationStore store;
  for (int i = 0; i < 5; ++i) probe(store, i, 10.0, {"eduroam"});
  ResolverOptions options;
  options.signals = ResolverSignals::all();
  EXPECT_EQ(resolve_identities(store, options).size(), 5u);
}

TEST(IdentityResolver, FractionPopularityCutoffScalesToTenThousandDevices) {
  // The regression the fraction fix exists for: at 10k devices, a
  // campus-wide "eduroam" (popularity 10 000) must not link strangers even
  // though the legacy absolute cutoff alone would need hand-tuning; a rare
  // home SSID shared by one rotation pair must still link.
  capture::ObservationStore store;
  const int population = 10000;
  for (int i = 0; i < population; ++i) {
    probe(store, i, static_cast<double>(i) * 0.01, {"eduroam"});
  }
  probe(store, population, 200.0, {"eduroam", "home-rare-77"});
  probe(store, population + 1, 260.0, {"eduroam", "home-rare-77"});

  ResolverOptions options;  // fraction default 0.01 -> cutoff ~101 of 10 002
  const IdentityMap map = resolve_identities(store, options);
  EXPECT_EQ(map.size(), static_cast<std::size_t>(population) + 1u);
  const ResolvedIdentity* pair = map.identity_of(mac(population));
  ASSERT_NE(pair, nullptr);
  ASSERT_EQ(pair->macs.size(), 2u);
  EXPECT_EQ(pair->fingerprint.count("home-rare-77"), 1u);
  EXPECT_EQ(pair->fingerprint.count("eduroam"), 0u);
}

TEST(IdentityResolver, AbsoluteCutoffRemainsTheFloorOnSmallCaptures) {
  // ceil(0.01 * 6) = 1 would kill a two-device home SSID; the absolute
  // floor (3) must win on captures this small, exactly as the legacy
  // linker behaved.
  capture::ObservationStore store;
  probe(store, 0, 1.0, {"home-net"});
  probe(store, 1, 2.0, {"home-net"});
  for (int i = 2; i < 6; ++i) probe(store, i, 3.0, {});
  const IdentityMap map = resolve_identities(store, ResolverOptions{});
  EXPECT_EQ(map.size(), 5u);
  EXPECT_EQ(map.identity_of(mac(0)), map.identity_of(mac(1)));
}

// --- incremental ingestion ---------------------------------------------

TEST(IdentityResolver, ResolutionIsIndependentOfUpsertOrder) {
  capture::ObservationStore store;
  probe(store, 0, 1.0, {"net-a"});
  probe(store, 1, 2.0, {"net-a"});
  seq_frame(store, 2, 10.0, 700);
  seq_frame(store, 3, 20.0, 703);

  ResolverOptions options;
  options.signals = ResolverSignals::all();

  IdentityResolver forward(options);
  forward.ingest_store(store);

  IdentityResolver reversed(options);
  const auto macs = store.devices();
  for (auto it = macs.rbegin(); it != macs.rend(); ++it) {
    reversed.upsert(summarize_device(*store.device(*it)));
  }

  const IdentityMap a = forward.resolve();
  const IdentityMap b = reversed.resolve();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.identities[i].macs, b.identities[i].macs);
    EXPECT_EQ(a.identities[i].fingerprint, b.identities[i].fingerprint);
  }
  EXPECT_EQ(a.by_mac, b.by_mac);
}

TEST(IdentityResolver, UpsertReplacesExistingSummary) {
  IdentityResolver resolver(ResolverOptions{});
  DeviceSummary s;
  s.mac = mac(0);
  s.first_seen = 1.0;
  s.last_seen = 2.0;
  s.directed_ssids = {"old-net"};
  resolver.upsert(s);
  s.directed_ssids = {"new-net"};
  s.last_seen = 9.0;
  resolver.upsert(s);
  EXPECT_EQ(resolver.device_count(), 1u);
  const IdentityMap map = resolver.resolve();
  ASSERT_EQ(map.size(), 1u);
  EXPECT_EQ(map.identities[0].fingerprint.count("new-net"), 1u);
  EXPECT_EQ(map.identities[0].fingerprint.count("old-net"), 0u);
  EXPECT_EQ(map.identities[0].last_seen, 9.0);
}

}  // namespace
}  // namespace mm::marauder
