// Basilisk determinism contract: a wps::Service over an mmapped snapshot is
// bit-identical to the in-memory ApDatabase it was built from, for every
// query shape, from any number of threads, with or without the MAC index.
#include "wps/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "util/rng.h"
#include "wps/snapshot_writer.h"
#include "wps/surveil.h"

namespace mm::wps {
namespace {

namespace fs = std::filesystem;

fs::path temp_path(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / name;
  fs::remove(p);
  return p;
}

/// A clustered random database: uniform cluster centers, Gaussian blobs, a
/// sprinkle of far outliers — the shape city AP data actually has.
marauder::ApDatabase random_db(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  marauder::ApDatabase db;
  std::vector<geo::Vec2> centers;
  const std::size_t n_clusters = 1 + n / 200;
  for (std::size_t c = 0; c < n_clusters; ++c) {
    centers.push_back({rng.uniform(-4000.0, 4000.0), rng.uniform(-4000.0, 4000.0)});
  }
  for (std::size_t i = 0; i < n; ++i) {
    marauder::KnownAp ap;
    ap.bssid = net80211::MacAddress::from_u64(0x020000000000ULL + rng.next_u64() % (4 * n));
    if (rng.bernoulli(0.05)) {
      ap.position = {rng.uniform(-50000.0, 50000.0), rng.uniform(-50000.0, 50000.0)};
    } else {
      const geo::Vec2 c = centers[i % centers.size()];
      ap.position = {c.x + rng.gaussian(0.0, 150.0), c.y + rng.gaussian(0.0, 150.0)};
    }
    if (rng.bernoulli(0.6)) ap.radius_m = rng.uniform(20.0, 150.0);
    db.add(std::move(ap));
  }
  return db;
}

Service open_snapshot_of(const marauder::ApDatabase& db, const std::string& name,
                         SnapshotBuildOptions build = {}) {
  const fs::path path = temp_path(name);
  build.fsync = false;
  auto stats = write_snapshot(db, geo::Geodetic{47.6, -122.3, 0.0}, path, build);
  EXPECT_TRUE(stats.ok()) << stats.error();
  auto service = Service::open(path);
  EXPECT_TRUE(service.ok()) << service.error();
  return std::move(service).value();
}

bool bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ba == bb;
}

void expect_same_ap(const WpsAp& got, const marauder::KnownAp& want) {
  EXPECT_EQ(got.bssid, want.bssid);
  EXPECT_TRUE(bits_equal(got.position.x, want.position.x));
  EXPECT_TRUE(bits_equal(got.position.y, want.position.y));
  ASSERT_EQ(got.radius_m.has_value(), want.radius_m.has_value());
  if (got.radius_m) EXPECT_TRUE(bits_equal(*got.radius_m, *want.radius_m));
}

void expect_same_list(const std::vector<WpsAp>& got,
                      const std::vector<const marauder::KnownAp*>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) expect_same_ap(got[i], *want[i]);
}

TEST(WpsService, LookupMatchesDatabaseFind) {
  const auto db = random_db(11, 5000);
  const Service service = open_snapshot_of(db, "mm_wps_lookup.wps");
  EXPECT_EQ(service.size(), db.size());
  ASSERT_TRUE(service.stats().mac_index_present);
  for (const marauder::KnownAp* ap : db.sorted_records()) {
    const auto got = service.lookup(ap->bssid);
    ASSERT_TRUE(got.has_value());
    expect_same_ap(*got, *ap);
  }
  EXPECT_FALSE(service.lookup(net80211::MacAddress::from_u64(0x99ULL)).has_value());
  EXPECT_FALSE(
      service.lookup(net80211::MacAddress::from_u64(0xffffffffffffULL)).has_value());
}

TEST(WpsService, LookupFallbackWithoutMacIndex) {
  const auto db = random_db(12, 2000);
  SnapshotBuildOptions build;
  build.mac_index = false;
  const Service service = open_snapshot_of(db, "mm_wps_nomacidx.wps", build);
  EXPECT_FALSE(service.stats().mac_index_present);
  for (const marauder::KnownAp* ap : db.sorted_records()) {
    const auto got = service.lookup(ap->bssid);
    ASSERT_TRUE(got.has_value());
    expect_same_ap(*got, *ap);
  }
  EXPECT_FALSE(service.lookup(net80211::MacAddress::from_u64(0x99ULL)).has_value());
}

TEST(WpsService, RangeMatchesApsInRange) {
  const auto db = random_db(13, 4000);
  const Service service = open_snapshot_of(db, "mm_wps_range.wps");
  util::Rng rng(99);
  for (int i = 0; i < 60; ++i) {
    const geo::Vec2 c{rng.uniform(-5000.0, 5000.0), rng.uniform(-5000.0, 5000.0)};
    const double r = rng.uniform(0.0, 3000.0);
    expect_same_list(service.range(c, r), db.aps_in_range(c, r));
  }
  // Radius zero, exact hit, and a disc covering everything.
  const geo::Vec2 at = db.sorted_records().front()->position;
  expect_same_list(service.range(at, 0.0), db.aps_in_range(at, 0.0));
  expect_same_list(service.range({0, 0}, 1e7), db.aps_in_range({0, 0}, 1e7));
}

TEST(WpsService, NearestKMatchesNearestAps) {
  const auto db = random_db(14, 4000);
  const Service service = open_snapshot_of(db, "mm_wps_nearest.wps");
  util::Rng rng(100);
  for (int i = 0; i < 40; ++i) {
    const geo::Vec2 c{rng.uniform(-6000.0, 6000.0), rng.uniform(-6000.0, 6000.0)};
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 40));
    expect_same_list(service.nearest_k(c, k), db.nearest_aps(c, k));
  }
  expect_same_list(service.nearest_k({10, 10}, 0), db.nearest_aps({10, 10}, 0));
  expect_same_list(service.nearest_k({10, 10}, db.size() + 5),
                   db.nearest_aps({10, 10}, db.size() + 5));
}

TEST(WpsService, NearestKTiesResolveByBssid) {
  marauder::ApDatabase db;
  // Four APs equidistant from the origin, spread across four tiles.
  for (int i = 0; i < 4; ++i) {
    marauder::KnownAp ap;
    ap.bssid = net80211::MacAddress::from_u64(0x100ULL + static_cast<unsigned>(3 - i));
    const double sx = (i & 1) ? 700.0 : -700.0;
    const double sy = (i & 2) ? 700.0 : -700.0;
    ap.position = {sx, sy};
    db.add(std::move(ap));
  }
  const Service service = open_snapshot_of(db, "mm_wps_ties.wps");
  for (std::size_t k = 1; k <= 4; ++k) {
    expect_same_list(service.nearest_k({0, 0}, k), db.nearest_aps({0, 0}, k));
  }
}

TEST(WpsService, FarAwayQueryCenters) {
  const auto db = random_db(15, 800);
  const Service service = open_snapshot_of(db, "mm_wps_far.wps");
  for (const double far : {1.0e9, -3.0e12, 5.0e15}) {
    const geo::Vec2 c{far, -far};
    expect_same_list(service.nearest_k(c, 7), db.nearest_aps(c, 7));
    expect_same_list(service.range(c, 100.0), db.aps_in_range(c, 100.0));
  }
}

TEST(WpsService, EmptySnapshot) {
  const marauder::ApDatabase db;
  const Service service = open_snapshot_of(db, "mm_wps_empty.wps");
  EXPECT_EQ(service.size(), 0u);
  EXPECT_FALSE(service.lookup(net80211::MacAddress::from_u64(1)).has_value());
  EXPECT_TRUE(service.range({0, 0}, 1000.0).empty());
  EXPECT_TRUE(service.nearest_k({0, 0}, 3).empty());
}

TEST(WpsService, MaterializeRebuildsDatabase) {
  const auto db = random_db(16, 1500);
  const Service service = open_snapshot_of(db, "mm_wps_mat.wps");
  const marauder::ApDatabase rebuilt = service.materialize();
  ASSERT_EQ(rebuilt.size(), db.size());
  for (const marauder::KnownAp* ap : db.sorted_records()) {
    const marauder::KnownAp* got = rebuilt.find(ap->bssid);
    ASSERT_NE(got, nullptr);
    EXPECT_TRUE(bits_equal(got->position.x, ap->position.x));
    EXPECT_TRUE(bits_equal(got->position.y, ap->position.y));
    ASSERT_EQ(got->radius_m.has_value(), ap->radius_m.has_value());
    if (got->radius_m) EXPECT_TRUE(bits_equal(*got->radius_m, *ap->radius_m));
  }
  // The rebuilt database answers queries exactly like the original.
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const geo::Vec2 c{rng.uniform(-4000.0, 4000.0), rng.uniform(-4000.0, 4000.0)};
    const auto a = db.nearest_aps(c, 9);
    const auto b = rebuilt.nearest_aps(c, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j]->bssid, b[j]->bssid);
  }
}

// The concurrency contract: lazy tile verification and index construction
// race-free under many threads issuing mixed queries cold (TSan covers this
// target in CI).
TEST(WpsService, ConcurrentColdQueriesMatchOracle) {
  const auto db = random_db(17, 3000);
  const Service service = open_snapshot_of(db, "mm_wps_conc.wps");
  const auto records = db.sorted_records();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 60; ++i) {
        const geo::Vec2 c{rng.uniform(-5000.0, 5000.0), rng.uniform(-5000.0, 5000.0)};
        const auto nearest = service.nearest_k(c, 5);
        const auto oracle = db.nearest_aps(c, 5);
        if (nearest.size() != oracle.size()) ++failures[t];
        for (std::size_t j = 0; j < std::min(nearest.size(), oracle.size()); ++j) {
          if (nearest[j].bssid != oracle[j]->bssid) ++failures[t];
        }
        const auto idx = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(records.size()) - 1));
        const auto hit = service.lookup(records[idx]->bssid);
        if (!hit || hit->bssid != records[idx]->bssid) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tiles_quarantined, 0u);
  EXPECT_EQ(stats.records_quarantined, 0u);
}

// --------------------------------------------------------------------------
// Aegis hot-swap: reload() validation, rollback, and epoch pinning.

TEST(WpsServiceReload, SwapsEpochAndAnswersFromNewSnapshot) {
  const auto db1 = random_db(21, 2000);
  const auto db2 = random_db(22, 2500);
  Service service = open_snapshot_of(db1, "mm_wps_reload_a.wps");
  EXPECT_EQ(service.epoch(), 1u);

  const fs::path path2 = temp_path("mm_wps_reload_b.wps");
  SnapshotBuildOptions build;
  build.fsync = false;
  ASSERT_TRUE(write_snapshot(db2, geo::Geodetic{47.6, -122.3, 0.0}, path2, build).ok());

  auto swapped = service.reload(path2);
  ASSERT_TRUE(swapped.ok()) << swapped.error();
  EXPECT_EQ(swapped.value(), 2u);
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.size(), db2.size());
  EXPECT_EQ(service.stats().reloads, 1u);
  EXPECT_EQ(service.stats().reloads_rejected, 0u);
  for (const marauder::KnownAp* ap : db2.sorted_records()) {
    const auto got = service.lookup(ap->bssid);
    ASSERT_TRUE(got.has_value());
    expect_same_ap(*got, *ap);
  }
}

TEST(WpsServiceReload, DamagedCandidateRollsBack) {
  const auto db = random_db(23, 2000);
  Service service = open_snapshot_of(db, "mm_wps_reload_live.wps");

  const fs::path damaged = temp_path("mm_wps_reload_damaged.wps");
  SnapshotBuildOptions build;
  build.fsync = false;
  ASSERT_TRUE(write_snapshot(db, geo::Geodetic{47.6, -122.3, 0.0}, damaged, build).ok());

  // Flip bytes through the middle of the file — record payload territory, so
  // some tile's CRC no longer matches.
  {
    std::fstream f(damaged, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::uint64_t>(f.tellg());
    for (std::uint64_t off = size / 3; off < size / 3 + 64; off += 8) {
      f.seekg(static_cast<std::streamoff>(off));
      char byte = 0;
      f.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0x5a);
      f.seekp(static_cast<std::streamoff>(off));
      f.write(&byte, 1);
    }
  }

  ReloadOptions options;
  options.sample_tiles = 1u << 20;  // sample everything: the damage WILL be seen
  auto swapped = service.reload(damaged, options);
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.stats().reloads, 0u);
  EXPECT_GE(service.stats().reloads_rejected, 1u);
  // The incumbent keeps serving, still bit-identical to its oracle.
  for (const marauder::KnownAp* ap : db.sorted_records()) {
    const auto got = service.lookup(ap->bssid);
    ASSERT_TRUE(got.has_value());
    expect_same_ap(*got, *ap);
  }
}

// No torn epoch: queries racing a storm of reloads between two different
// snapshots must each return an answer wholly from one epoch or the other —
// never a mix (TSan covers this target in CI).
TEST(WpsServiceReload, ConcurrentQueriesNeverObserveTornEpoch) {
  const auto db1 = random_db(24, 1500);
  marauder::ApDatabase db2;  // same BSSIDs, every position shifted
  for (const marauder::KnownAp* ap : db1.sorted_records()) {
    marauder::KnownAp moved = *ap;
    moved.position = {ap->position.x + 1000.0, ap->position.y - 1000.0};
    db2.add(std::move(moved));
  }
  Service service = open_snapshot_of(db1, "mm_wps_epoch_a.wps");
  const fs::path path_a = fs::temp_directory_path() / "mm_wps_epoch_a.wps";
  const fs::path path_b = temp_path("mm_wps_epoch_b.wps");
  SnapshotBuildOptions build;
  build.fsync = false;
  ASSERT_TRUE(write_snapshot(db2, geo::Geodetic{47.6, -122.3, 0.0}, path_b, build).ok());

  const auto records = db1.sorted_records();
  std::atomic<bool> stop{false};
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(3000 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        const auto idx = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(records.size()) - 1));
        const marauder::KnownAp* want1 = records[idx];
        const marauder::KnownAp* want2 = db2.find(want1->bssid);
        const auto got = service.lookup(want1->bssid);
        if (!got) {
          ++failures[t];
          continue;
        }
        const bool is1 = bits_equal(got->position.x, want1->position.x) &&
                         bits_equal(got->position.y, want1->position.y);
        const bool is2 = bits_equal(got->position.x, want2->position.x) &&
                         bits_equal(got->position.y, want2->position.y);
        if (!is1 && !is2) ++failures[t];
        // A k-NN answer must come wholly from one world too: with every AP
        // shifted by the same vector, a torn mix would surface as a nearest
        // set matching neither oracle.
        const geo::Vec2 c{rng.uniform(-4000.0, 4000.0), rng.uniform(-4000.0, 4000.0)};
        const auto nearest = service.nearest_k(c, 4);
        const auto oracle1 = db1.nearest_aps(c, 4);
        const auto oracle2 = db2.nearest_aps(c, 4);
        const auto matches = [&](const std::vector<const marauder::KnownAp*>& want) {
          if (nearest.size() != want.size()) return false;
          for (std::size_t j = 0; j < nearest.size(); ++j) {
            if (nearest[j].bssid != want[j]->bssid ||
                !bits_equal(nearest[j].position.x, want[j]->position.x)) {
              return false;
            }
          }
          return true;
        };
        if (!matches(oracle1) && !matches(oracle2)) ++failures[t];
      }
    });
  }

  int swaps_ok = 0;
  for (int round = 0; round < 24; ++round) {
    const auto swapped = service.reload((round % 2 == 0) ? path_b : path_a);
    if (swapped.ok()) ++swaps_ok;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(swaps_ok, 24);
  EXPECT_EQ(service.epoch(), 1u + 24u);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

TEST(WpsService, PrewarmVerifiesEveryTile) {
  const auto db = random_db(25, 2000);
  const Service service = open_snapshot_of(db, "mm_wps_prewarm.wps");
  const std::uint64_t usable = service.prewarm(4);
  EXPECT_EQ(usable, service.stats().tiles_total);
  EXPECT_EQ(service.stats().tiles_quarantined, 0u);
  // Prewarmed answers are the same answers.
  for (const marauder::KnownAp* ap : db.sorted_records()) {
    const auto got = service.lookup(ap->bssid);
    ASSERT_TRUE(got.has_value());
    expect_same_ap(*got, *ap);
  }
}

TEST(WpsSurveil, WorldAndReplayAreDeterministic) {
  SurveilOptions options;
  options.seed = 42;
  options.fixed_ap_count = 1500;
  options.device_count = 24;
  options.duration_s = 6.0 * 3600.0;
  options.snapshot_refresh_s = 3600.0;
  options.query_interval_s = 900.0;
  options.speed_mps = 8.0;  // vehicles: guarantees cross-tile movement

  const auto db1 = build_world(options);
  const auto db2 = build_world(options);
  ASSERT_EQ(db1.size(), db2.size());
  EXPECT_EQ(db1.size(), options.fixed_ap_count + options.device_count);

  const fs::path dir1 = temp_path("mm_wps_surveil1");
  const fs::path dir2 = temp_path("mm_wps_surveil2");
  auto r1 = run_surveillance(dir1, options);
  auto r2 = run_surveillance(dir2, options);
  ASSERT_TRUE(r1.ok()) << r1.error();
  ASSERT_TRUE(r2.ok()) << r2.error();
  const SurveilReport& a = r1.value();
  const SurveilReport& b = r2.value();

  EXPECT_EQ(a.epochs, 6u);
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.lookup_hits, b.lookup_hits);
  EXPECT_EQ(a.infrastructure_seen, b.infrastructure_seen);
  EXPECT_EQ(a.devices_tracked, b.devices_tracked);
  ASSERT_EQ(a.tracks.size(), b.tracks.size());
  for (std::size_t i = 0; i < a.tracks.size(); ++i) {
    EXPECT_EQ(a.tracks[i].bssid, b.tracks[i].bssid);
    EXPECT_EQ(a.tracks[i].sightings, b.tracks[i].sightings);
    EXPECT_EQ(a.tracks[i].distinct_tiles, b.tracks[i].distinct_tiles);
    EXPECT_TRUE(bits_equal(a.tracks[i].path_length_m, b.tracks[i].path_length_m));
  }

  // The attack works: every device is sighted, and fast movers cross tiles.
  EXPECT_EQ(a.devices_sighted, options.device_count);
  EXPECT_GT(a.devices_tracked, options.device_count / 2);
  EXPECT_GT(a.infrastructure_seen, 0u);
  fs::remove_all(dir1);
  fs::remove_all(dir2);
}

}  // namespace
}  // namespace mm::wps
