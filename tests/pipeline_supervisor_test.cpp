// Phoenix's ShardSupervisor against misbehaving workers: a wedged worker
// (heartbeat frozen while busy) is detected and restarted with its state
// recovered from the WAL; a crashed worker (hook throws) likewise; and a
// crash-looping shard trips the circuit breaker, degrading only its own
// partition — queries for its devices carry the flag, the other shards never
// notice.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "capture/frame_event.h"
#include "capture/observation_store.h"
#include "marauder/ap_database.h"
#include "pipeline/live_tracker.h"
#include "pipeline/supervisor.h"
#include "sim/scenario.h"

namespace mm::pipeline {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

template <typename Pred>
bool wait_for(Pred pred, double timeout_s = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

std::vector<sim::ApTruth> make_truth() {
  std::vector<sim::ApTruth> truth;
  for (std::uint64_t i = 0; i < 8; ++i) {
    sim::ApTruth ap;
    ap.bssid = net80211::MacAddress::from_u64(0x001a2b000100u + i);
    ap.ssid = "sup-" + std::to_string(i);
    ap.channel = static_cast<int>(1 + i);
    ap.position = {20.0 * static_cast<double>(i), 10.0 * static_cast<double>(i % 3)};
    ap.radius_m = 120.0;
    truth.push_back(ap);
  }
  return truth;
}

/// First MAC in a salted probe sequence that the tracker routes to `shard`.
net80211::MacAddress mac_for_shard(const LiveTracker& tracker, std::size_t shard,
                                   std::uint64_t salt) {
  for (std::uint64_t i = 0;; ++i) {
    const auto mac = net80211::MacAddress::from_u64(0x020000000000u + salt * 4096 + i);
    if (tracker.shard_for(mac) == shard) return mac;
  }
}

capture::FrameEvent contact_event(const net80211::MacAddress& device,
                                  const net80211::MacAddress& ap, std::uint64_t seq,
                                  double time_s) {
  capture::FrameEvent event;
  event.kind = capture::FrameEventKind::kContact;
  event.stream_seq = seq;
  event.device = device;
  event.ap = ap;
  event.time_s = time_s;
  event.rssi_dbm = -45.0;
  return event;
}

struct SupervisedRig {
  explicit SupervisedRig(const char* dir_name)
      : truth(make_truth()),
        db(marauder::ApDatabase::from_truth(truth, true)),
        dir(fs::temp_directory_path() / dir_name) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~SupervisedRig() { fs::remove_all(dir); }

  LiveTrackerConfig config() const {
    LiveTrackerConfig config;
    config.shards = 2;
    config.ring_capacity = 1 << 8;
    config.drop_policy = DropPolicy::kDropNewest;
    config.durability.dir = dir;
    config.durability.wal.commit_every_records = 1;  // every applied event durable
    config.durability.wal.fsync_on_commit = false;
    config.durability.checkpoint_save.fsync = false;
    return config;
  }

  std::vector<sim::ApTruth> truth;
  marauder::ApDatabase db;
  fs::path dir;
};

TEST(ShardSupervisor, WedgedShardIsRestartedWithoutDisturbingTheOthers) {
  SupervisedRig rig("mm_sup_wedge");
  constexpr std::size_t kTarget = 0;
  constexpr std::size_t kOther = 1;

  std::mutex wedge_mutex;
  std::condition_variable wedge_cv;
  std::atomic<bool> wedge{false};
  bool wedged_now = false;

  LiveTrackerConfig config = rig.config();
  config.ingest_hook = [&](std::size_t shard, const capture::FrameEvent&) {
    if (shard == kTarget && wedge.load(std::memory_order_acquire)) {
      std::unique_lock lock(wedge_mutex);
      wedged_now = true;
      wedge_cv.notify_all();
      wedge_cv.wait(lock, [&] { return !wedge.load(std::memory_order_acquire); });
    }
  };
  LiveTracker tracker(rig.db, config);
  tracker.start();
  SupervisorOptions sup;
  sup.poll_interval_s = 0.02;
  sup.stall_timeout_s = 0.15;
  ShardSupervisor supervisor(tracker, sup);
  supervisor.start();

  const auto target_dev = mac_for_shard(tracker, kTarget, 1);
  const auto other_dev = mac_for_shard(tracker, kOther, 2);

  // Phase 1: clean traffic on both shards, fully applied and WAL-committed.
  std::uint64_t seq = 0;
  std::vector<capture::FrameEvent> target_events;
  for (std::uint64_t i = 0; i < 6; ++i) {
    target_events.push_back(contact_event(target_dev, rig.truth[i].bssid, ++seq,
                                          1.0 + 0.1 * static_cast<double>(i)));
    ASSERT_TRUE(tracker.push(target_events.back()));
    ASSERT_TRUE(tracker.push(contact_event(other_dev, rig.truth[i].bssid, ++seq,
                                           1.0 + 0.1 * static_cast<double>(i))));
  }
  ASSERT_TRUE(wait_for([&] {
    return tracker.shard_health(kTarget).frames == 6 &&
           tracker.shard_health(kOther).frames == 6;
  }));

  // Phase 2: wedge the target worker mid-event.
  wedge.store(true, std::memory_order_release);
  capture::FrameEvent poison =
      contact_event(target_dev, rig.truth[6].bssid, ++seq, 2.0);
  ASSERT_TRUE(tracker.push(poison));
  {
    std::unique_lock lock(wedge_mutex);
    ASSERT_TRUE(wedge_cv.wait_for(lock, 5s, [&] { return wedged_now; }));
  }

  // The watchdog must call the freeze: stall detected, shard restarted.
  ASSERT_TRUE(wait_for([&] { return tracker.stats().shards[kTarget].restarts >= 1; }));
  // Release the zombie; the abandon fence discards its in-flight event.
  wedge.store(false, std::memory_order_release);
  wedge_cv.notify_all();

  // The restarted generation recovered phase 1 from the WAL.
  ASSERT_TRUE(wait_for([&] { return tracker.shard_health(kTarget).frames >= 6; }));

  // Phase 3: re-push the target stream (same sequences): the cursor skips
  // the recovered prefix and applies only what the wedge swallowed.
  for (const auto& event : target_events) ASSERT_TRUE(tracker.push(event));
  ASSERT_TRUE(tracker.push(poison));
  ASSERT_TRUE(wait_for([&] { return tracker.shard_health(kTarget).frames >= 7; }));

  supervisor.stop();
  tracker.stop();

  const SupervisorStats sup_stats = supervisor.stats();
  EXPECT_GE(sup_stats.stalls_detected, 1u);
  EXPECT_GE(sup_stats.restarts, 1u);
  EXPECT_EQ(sup_stats.circuit_breaks, 0u);

  const PipelineStats stats = tracker.stats();
  EXPECT_GE(stats.shards[kTarget].restarts, 1u);
  EXPECT_FALSE(stats.shards[kTarget].degraded);
  EXPECT_GT(stats.shards[kTarget].dedup_skipped, 0u);
  // The other shard never noticed: no restarts, stream intact.
  EXPECT_EQ(stats.shards[kOther].restarts, 0u);
  EXPECT_EQ(stats.shards[kOther].frames, 6u);

  // Target store holds exactly the 7-contact stream.
  const capture::DeviceRecord* rec = tracker.shard_store(kTarget).device(target_dev);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->contacts.size(), 7u);
  const auto located = tracker.locate(target_dev);
  ASSERT_TRUE(located.has_value());
  EXPECT_EQ(located->shard_degraded, 0);
}

TEST(ShardSupervisor, CrashedWorkerIsRestartedAndItsRingDrained) {
  SupervisedRig rig("mm_sup_crash");
  constexpr std::size_t kTarget = 1;

  std::atomic<bool> crash_armed{false};
  LiveTrackerConfig config = rig.config();
  config.ingest_hook = [&](std::size_t shard, const capture::FrameEvent&) {
    if (shard == kTarget &&
        crash_armed.exchange(false, std::memory_order_acq_rel)) {
      throw std::runtime_error("injected worker crash");
    }
  };
  LiveTracker tracker(rig.db, config);
  tracker.start();
  SupervisorOptions sup;
  sup.poll_interval_s = 0.02;
  sup.stall_timeout_s = 0.2;
  ShardSupervisor supervisor(tracker, sup);
  supervisor.start();

  const auto device = mac_for_shard(tracker, kTarget, 3);
  std::uint64_t seq = 0;
  std::vector<capture::FrameEvent> events;
  for (std::uint64_t i = 0; i < 5; ++i) {
    events.push_back(contact_event(device, rig.truth[i].bssid, ++seq,
                                   1.0 + 0.1 * static_cast<double>(i)));
    ASSERT_TRUE(tracker.push(events.back()));
  }
  ASSERT_TRUE(wait_for([&] { return tracker.shard_health(kTarget).frames == 5; }));

  crash_armed.store(true, std::memory_order_release);
  events.push_back(contact_event(device, rig.truth[5].bssid, ++seq, 2.0));
  ASSERT_TRUE(tracker.push(events.back()));

  ASSERT_TRUE(wait_for([&] { return tracker.stats().shards[kTarget].restarts >= 1; }));
  ASSERT_TRUE(wait_for([&] { return tracker.shard_health(kTarget).frames >= 5; }));

  // Re-push the stream; only the crashed-away event actually applies.
  for (const auto& event : events) ASSERT_TRUE(tracker.push(event));
  ASSERT_TRUE(wait_for([&] { return tracker.shard_health(kTarget).frames >= 6; }));

  supervisor.stop();
  tracker.stop();

  const SupervisorStats sup_stats = supervisor.stats();
  EXPECT_GE(sup_stats.crashes_detected, 1u);
  EXPECT_GE(sup_stats.restarts, 1u);
  EXPECT_EQ(sup_stats.circuit_breaks, 0u);
  const capture::DeviceRecord* rec = tracker.shard_store(kTarget).device(device);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->contacts.size(), 6u);
  EXPECT_FALSE(tracker.shard_degraded(kTarget));
}

TEST(ShardSupervisor, CrashLoopTripsTheBreakerAndDegradesOnlyThatPartition) {
  SupervisedRig rig("mm_sup_breaker");
  constexpr std::size_t kTarget = 0;
  constexpr std::size_t kOther = 1;

  std::atomic<bool> poison_active{false};
  LiveTrackerConfig config = rig.config();
  config.ingest_hook = [&](std::size_t shard, const capture::FrameEvent&) {
    if (shard == kTarget && poison_active.load(std::memory_order_acquire)) {
      throw std::runtime_error("crash loop");
    }
  };
  LiveTracker tracker(rig.db, config);
  tracker.start();
  SupervisorOptions sup;
  sup.poll_interval_s = 0.01;
  sup.stall_timeout_s = 0.5;
  sup.max_restarts = 2;
  sup.backoff_initial_s = 0.01;
  sup.backoff_max_s = 0.02;
  ShardSupervisor supervisor(tracker, sup);
  supervisor.start();

  const auto target_dev = mac_for_shard(tracker, kTarget, 4);
  const auto other_dev = mac_for_shard(tracker, kOther, 5);

  // Publish a position on each shard first, then start the crash loop.
  std::uint64_t seq = 0;
  ASSERT_TRUE(tracker.push(contact_event(target_dev, rig.truth[0].bssid, ++seq, 1.0)));
  ASSERT_TRUE(tracker.push(contact_event(other_dev, rig.truth[1].bssid, ++seq, 1.0)));
  ASSERT_TRUE(wait_for([&] {
    return tracker.shard_health(kTarget).frames == 1 &&
           tracker.shard_health(kOther).frames == 1;
  }));

  poison_active.store(true, std::memory_order_release);
  // Keep feeding poison: every generation dies on its first event, restarts
  // never make progress, and the strike counter walks to the breaker.
  const bool broke = wait_for(
      [&] {
        if (tracker.shard_degraded(kTarget)) return true;
        (void)tracker.push(
            contact_event(target_dev, rig.truth[2].bssid, ++seq, 2.0));
        return false;
      },
      15.0);
  ASSERT_TRUE(broke) << "breaker never tripped";

  supervisor.stop();

  const SupervisorStats sup_stats = supervisor.stats();
  EXPECT_GE(sup_stats.crashes_detected, 1u);
  EXPECT_EQ(sup_stats.circuit_breaks, 1u);
  EXPECT_TRUE(tracker.shard_degraded(kTarget));
  EXPECT_FALSE(tracker.shard_degraded(kOther));
  // A dead partition refuses restarts and drops pushes under either policy.
  EXPECT_FALSE(tracker.restart_shard(kTarget));
  EXPECT_FALSE(tracker.push(contact_event(target_dev, rig.truth[3].bssid, ++seq, 3.0)));

  // Degradation is visible exactly where it should be: the downed shard's
  // devices carry the flag, the healthy shard's do not.
  const auto down = tracker.locate(target_dev);
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->shard_degraded, 1);
  const auto up = tracker.locate(other_dev);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->shard_degraded, 0);

  const PipelineStats stats = tracker.stats();
  EXPECT_EQ(stats.degraded_shards, 1u);
  EXPECT_TRUE(stats.shards[kTarget].degraded);
  EXPECT_FALSE(stats.shards[kOther].degraded);

  tracker.stop();
}

}  // namespace
}  // namespace mm::pipeline
