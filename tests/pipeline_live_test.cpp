// Riptide end-to-end: the live path (feed_pcap -> rings -> shard workers ->
// incremental M-Loc -> seqlock directory) against the batch path
// (replay_pcap -> ObservationStore -> mloc_locate) on the same capture.
//
// The acceptance contract: under the lossless (kBlock) policy with drop rate
// zero, the live engine's published estimate for every device is
// BIT-identical to the batch result, the sharded store slices hold exactly
// the batch store's records, and a fault plan quarantines exactly the same
// records on both paths (same plan + seed => same deterministic damage).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <thread>
#include <unordered_map>
#include <vector>

#include "capture/replay.h"
#include "capture/sniffer.h"
#include "marauder/ap_database.h"
#include "marauder/mloc.h"
#include "pipeline/live_feed.h"
#include "pipeline/live_tracker.h"
#include "sim/mobile.h"
#include "sim/mobility.h"
#include "sim/scenario.h"

namespace mm::pipeline {
namespace {

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << a << " != " << b << " (bitwise)";
}

struct LiveScenario {
  std::vector<sim::ApTruth> truth;
  std::vector<net80211::MacAddress> victims;
  std::filesystem::path pcap_path;
};

/// Simulates a campus walk and records the sniffer's capture to a pcap.
LiveScenario record_capture(const char* pcap_name) {
  LiveScenario s;
  sim::CampusConfig campus;
  campus.seed = 4242;
  campus.num_aps = 90;
  campus.half_extent_m = 240.0;
  s.truth = sim::generate_campus_aps(campus);

  sim::World world({.seed = 7, .propagation = nullptr});
  sim::populate_world(world, s.truth, /*beacons_enabled=*/true);

  const std::vector<geo::Vec2> positions = {
      {50.0, -30.0}, {-70.0, 40.0}, {15.0, 85.0}, {-40.0, -60.0}, {95.0, 10.0}};
  std::vector<sim::MobileDevice*> devices;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    std::array<std::uint8_t, 6> bytes{0x00, 0x16, 0x6f, 0x00, 0x02,
                                      static_cast<std::uint8_t>(i + 1)};
    s.victims.emplace_back(bytes);
    sim::MobileConfig mc;
    mc.mac = s.victims.back();
    mc.mobility = std::make_shared<sim::StaticPosition>(positions[i]);
    devices.push_back(world.add_mobile(std::make_unique<sim::MobileDevice>(mc)));
  }

  capture::ObservationStore store;
  capture::SnifferConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.antenna_height_m = 20.0;
  cfg.pcap_path = std::filesystem::temp_directory_path() / pcap_name;
  {
    capture::Sniffer sniffer(cfg, &store);
    sniffer.attach(world);
    for (std::size_t i = 0; i < devices.size(); ++i) {
      sim::MobileDevice* dev = devices[i];
      world.queue().schedule(1.0 + 0.4 * static_cast<double>(i),
                             [dev] { dev->trigger_scan(); });
      world.queue().schedule(4.0 + 0.4 * static_cast<double>(i),
                             [dev] { dev->trigger_scan(); });
    }
    world.run_until(8.0);
  }
  s.pcap_path = *cfg.pcap_path;
  return s;
}

void expect_contact_equal(const capture::ApContact& live,
                          const capture::ApContact& batch) {
  EXPECT_TRUE(bits_equal(live.first_seen, batch.first_seen));
  EXPECT_TRUE(bits_equal(live.last_seen, batch.last_seen));
  EXPECT_EQ(live.count, batch.count);
  EXPECT_TRUE(bits_equal(live.last_rssi_dbm, batch.last_rssi_dbm));
  EXPECT_EQ(live.times, batch.times);
}

/// Every record of the batch store must exist, field-identical, in the shard
/// slice the partitioner routed its device to — and nowhere else.
void expect_stores_equal(const LiveTracker& tracker,
                         const capture::ObservationStore& batch) {
  std::size_t live_devices = 0;
  for (std::size_t i = 0; i < tracker.shard_count(); ++i) {
    live_devices += tracker.shard_store(i).device_count();
  }
  EXPECT_EQ(live_devices, batch.device_count());

  for (const auto& mac : batch.devices()) {
    const capture::DeviceRecord* want = batch.device(mac);
    ASSERT_NE(want, nullptr);
    const auto& shard = tracker.shard_store(tracker.shard_for(mac));
    const capture::DeviceRecord* got = shard.device(mac);
    ASSERT_NE(got, nullptr) << mac.to_string() << " missing from its shard";
    SCOPED_TRACE(mac.to_string());
    EXPECT_TRUE(bits_equal(got->first_seen, want->first_seen));
    EXPECT_TRUE(bits_equal(got->last_seen, want->last_seen));
    EXPECT_EQ(got->probe_requests, want->probe_requests);
    EXPECT_EQ(got->directed_ssids, want->directed_ssids);
    ASSERT_EQ(got->contacts.size(), want->contacts.size());
    for (const auto& [ap, contact] : want->contacts) {
      const auto it = got->contacts.find(ap);
      ASSERT_NE(it, got->contacts.end()) << "contact " << ap.to_string();
      expect_contact_equal(it->second, contact);
    }
  }

  std::size_t live_sightings = 0;
  for (std::size_t i = 0; i < tracker.shard_count(); ++i) {
    live_sightings += tracker.shard_store(i).ap_sightings().size();
  }
  EXPECT_EQ(live_sightings, batch.ap_sightings().size());
  for (const auto& [bssid, want] : batch.ap_sightings()) {
    const auto& shard = tracker.shard_store(tracker.shard_for(bssid));
    const auto it = shard.ap_sightings().find(bssid);
    ASSERT_NE(it, shard.ap_sightings().end()) << bssid.to_string();
    EXPECT_EQ(it->second.ssid, want.ssid);
    EXPECT_EQ(it->second.channel, want.channel);
    EXPECT_EQ(it->second.beacons, want.beacons);
    EXPECT_TRUE(bits_equal(it->second.last_rssi_dbm, want.last_rssi_dbm));
  }
}

void expect_live_matches_batch(const LiveScenario& s, const marauder::ApDatabase& db,
                               const fault::FaultPlan& plan) {
  // Batch path.
  capture::ObservationStore batch_store;
  capture::ReplayOptions replay_options;
  replay_options.fault_plan = plan;
  const auto replayed = capture::replay_pcap(s.pcap_path, batch_store, replay_options);
  ASSERT_TRUE(replayed.ok()) << replayed.error();
  const capture::ReplayStats& batch_stats = replayed.value();

  // Live path, lossless policy.
  LiveTrackerConfig config;
  config.shards = 4;
  config.ring_capacity = 1 << 10;
  config.drop_policy = DropPolicy::kBlock;
  LiveTracker tracker(db, config);
  tracker.start();
  LiveFeedOptions feed_options;
  feed_options.fault_plan = plan;
  const auto fed = feed_pcap(s.pcap_path, tracker, feed_options);
  tracker.stop();
  ASSERT_TRUE(fed.ok()) << fed.error();
  const LiveFeedStats& live_stats = fed.value();

  // Acceptance: zero drops on the lossless path.
  EXPECT_EQ(live_stats.dropped, 0u);
  const PipelineStats engine = tracker.stats();
  EXPECT_EQ(engine.total_dropped, 0u);
  EXPECT_EQ(engine.total_frames, live_stats.pushed);

  // Quarantine accounting: both paths saw the same records and damaged /
  // quarantined exactly the same ones (same plan, same seed, same order).
  EXPECT_EQ(live_stats.replay.records, batch_stats.records);
  EXPECT_EQ(live_stats.replay.malformed, batch_stats.malformed);
  EXPECT_EQ(live_stats.replay.framing_quarantined, batch_stats.framing_quarantined);
  EXPECT_EQ(live_stats.replay.quarantined(), batch_stats.quarantined());
  EXPECT_EQ(live_stats.replay.probe_requests, batch_stats.probe_requests);
  EXPECT_EQ(live_stats.replay.probe_responses, batch_stats.probe_responses);
  EXPECT_EQ(live_stats.replay.beacons, batch_stats.beacons);
  EXPECT_EQ(live_stats.replay.other, batch_stats.other);
  EXPECT_EQ(live_stats.replay.faults.frames_seen, batch_stats.faults.frames_seen);
  EXPECT_EQ(live_stats.replay.faults.frames_corrupted,
            batch_stats.faults.frames_corrupted);
  EXPECT_EQ(live_stats.replay.faults.frames_truncated,
            batch_stats.faults.frames_truncated);
  EXPECT_EQ(live_stats.replay.faults.frames_dropped, batch_stats.faults.frames_dropped);
  EXPECT_EQ(live_stats.replay.faults.frames_duplicated,
            batch_stats.faults.frames_duplicated);

  expect_stores_equal(tracker, batch_store);

  // The headline invariant: live locate == batch locate, bit for bit.
  std::size_t devices_located = 0;
  for (const auto& mac : batch_store.devices()) {
    SCOPED_TRACE(mac.to_string());
    const auto gamma = batch_store.gamma(mac);
    const auto discs = db.discs_for(gamma, 100.0);
    const auto live = tracker.locate(mac);
    if (discs.empty()) {
      EXPECT_FALSE(live.has_value()) << "live published without known-AP evidence";
      continue;
    }
    const auto batch = marauder::mloc_locate(discs, config.mloc);
    ASSERT_TRUE(live.has_value()) << "batch located but live never published";
    ++devices_located;
    EXPECT_TRUE(bits_equal(live->x_m, batch.estimate.x));
    EXPECT_TRUE(bits_equal(live->y_m, batch.estimate.y));
    EXPECT_EQ(live->ok != 0, batch.ok);
    EXPECT_EQ(live->used_fallback != 0, batch.used_fallback);
    EXPECT_EQ(live->discs_rejected, batch.discs_rejected);
    EXPECT_EQ(live->gamma_size, discs.size());
  }
  EXPECT_GE(devices_located, s.victims.size());
}

TEST(PipelineLive, CleanReplayMatchesBatchBitForBit) {
  const LiveScenario s = record_capture("mm_pipeline_live.pcap");
  const auto db = marauder::ApDatabase::from_truth(s.truth, true);
  expect_live_matches_batch(s, db, {});
  std::filesystem::remove(s.pcap_path);
}

// Fault-plan soak through the live path: PR 1's deterministic damage streams
// must quarantine identically on both paths and leave them bit-identical on
// the surviving evidence.
TEST(PipelineLive, FaultPlanSoakQuarantinesIdenticallyToBatch) {
  const LiveScenario s = record_capture("mm_pipeline_live_fault.pcap");
  const auto db = marauder::ApDatabase::from_truth(s.truth, true);
  for (const double severity : {0.01, 0.1, 0.3}) {
    SCOPED_TRACE("severity " + std::to_string(severity));
    fault::FaultPlan plan;
    plan.corrupt_rate = severity;
    plan.truncate_rate = severity / 2.0;
    plan.drop_rate = severity / 2.0;
    plan.duplicate_rate = severity / 4.0;
    plan.seed = 99;
    expect_live_matches_batch(s, db, plan);
  }
  std::filesystem::remove(s.pcap_path);
}

// Query threads hammer locate()/snapshot() while ingest runs: estimates must
// always be internally consistent (seqlock: no torn positions) and publish
// counts monotone per device.
TEST(PipelineLive, ConcurrentQueriesSeeConsistentSnapshots) {
  const LiveScenario s = record_capture("mm_pipeline_live_query.pcap");
  const auto db = marauder::ApDatabase::from_truth(s.truth, true);

  LiveTrackerConfig config;
  config.shards = 4;
  config.drop_policy = DropPolicy::kBlock;
  LiveTracker tracker(db, config);
  tracker.start();

  std::atomic<bool> feeding{true};
  std::thread feeder([&] {
    // Replay the capture repeatedly to keep ingest busy under the readers.
    for (int round = 0; round < 10; ++round) {
      const auto fed = feed_pcap(s.pcap_path, tracker);
      ASSERT_TRUE(fed.ok());
    }
    feeding.store(false, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::unordered_map<std::uint64_t, std::uint64_t> last_updates;
      while (feeding.load(std::memory_order_acquire)) {
        for (const auto& [mac, pos] : tracker.snapshot()) {
          ASSERT_TRUE(std::isfinite(pos.x_m));
          ASSERT_TRUE(std::isfinite(pos.y_m));
          ASSERT_GE(pos.gamma_size, 1u);
          auto& last = last_updates[mac.to_u64()];
          ASSERT_GE(pos.updates, last);  // single-writer publishes are monotone
          last = pos.updates;
        }
        for (const auto& victim : s.victims) (void)tracker.locate(victim);
      }
    });
  }
  feeder.join();
  for (auto& t : readers) t.join();
  tracker.stop();

  const PipelineStats stats = tracker.stats();
  EXPECT_EQ(stats.total_dropped, 0u);
  EXPECT_GT(stats.locate_count, 0u);
  std::filesystem::remove(s.pcap_path);
}

}  // namespace
}  // namespace mm::pipeline
