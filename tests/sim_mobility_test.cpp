#include "sim/mobility.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mm::sim {
namespace {

TEST(StaticPosition, NeverMoves) {
  const StaticPosition m({3.0, 4.0});
  EXPECT_EQ(m.position(0.0), geo::Vec2(3.0, 4.0));
  EXPECT_EQ(m.position(1e6), geo::Vec2(3.0, 4.0));
}

TEST(RouteWalk, RequiresWaypointsAndPositiveSpeed) {
  EXPECT_THROW(RouteWalk({}, 1.0), std::invalid_argument);
  EXPECT_THROW(RouteWalk({{0.0, 0.0}}, 0.0), std::invalid_argument);
  EXPECT_THROW(RouteWalk({{0.0, 0.0}}, -1.0), std::invalid_argument);
}

TEST(RouteWalk, SingleWaypointIsStatic) {
  const RouteWalk walk({{5.0, 5.0}}, 1.0);
  EXPECT_EQ(walk.position(100.0), geo::Vec2(5.0, 5.0));
  EXPECT_DOUBLE_EQ(walk.route_length_m(), 0.0);
}

TEST(RouteWalk, ConstantSpeedAlongSegment) {
  const RouteWalk walk({{0.0, 0.0}, {100.0, 0.0}}, 2.0);
  EXPECT_EQ(walk.position(0.0), geo::Vec2(0.0, 0.0));
  EXPECT_NEAR(walk.position(10.0).x, 20.0, 1e-12);
  EXPECT_NEAR(walk.position(25.0).x, 50.0, 1e-12);
  EXPECT_DOUBLE_EQ(walk.arrival_time(), 50.0);
}

TEST(RouteWalk, HoldsFinalWaypoint) {
  const RouteWalk walk({{0.0, 0.0}, {10.0, 0.0}}, 1.0);
  EXPECT_EQ(walk.position(1000.0), geo::Vec2(10.0, 0.0));
}

TEST(RouteWalk, MultiSegmentCorners) {
  const RouteWalk walk({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}}, 1.0);
  EXPECT_NEAR(walk.position(10.0).x, 10.0, 1e-12);
  EXPECT_NEAR(walk.position(10.0).y, 0.0, 1e-12);
  EXPECT_NEAR(walk.position(15.0).y, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(walk.route_length_m(), 20.0);
}

TEST(RouteWalk, StartTimeOffset) {
  const RouteWalk walk({{0.0, 0.0}, {10.0, 0.0}}, 1.0, /*start_time=*/100.0);
  EXPECT_EQ(walk.position(50.0), geo::Vec2(0.0, 0.0));
  EXPECT_NEAR(walk.position(105.0).x, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(walk.arrival_time(), 110.0);
}

TEST(RouteWalk, PositionIsContinuous) {
  const RouteWalk walk({{0.0, 0.0}, {37.0, 12.0}, {-5.0, 40.0}, {8.0, 8.0}}, 1.7);
  for (double t = 0.0; t < walk.arrival_time(); t += 0.25) {
    const double jump = walk.position(t).distance_to(walk.position(t + 0.25));
    EXPECT_LE(jump, 1.7 * 0.25 + 1e-9);
  }
}

TEST(RandomWaypoint, StaysInsideBox) {
  const RandomWaypoint m({-50.0, -20.0}, {50.0, 20.0}, 0.5, 2.0, 600.0, 7);
  for (double t = 0.0; t <= 600.0; t += 1.0) {
    const geo::Vec2 p = m.position(t);
    EXPECT_GE(p.x, -50.0 - 1e-9);
    EXPECT_LE(p.x, 50.0 + 1e-9);
    EXPECT_GE(p.y, -20.0 - 1e-9);
    EXPECT_LE(p.y, 20.0 + 1e-9);
  }
}

TEST(RandomWaypoint, DeterministicInSeed) {
  const RandomWaypoint a({-10.0, -10.0}, {10.0, 10.0}, 1.0, 2.0, 100.0, 42);
  const RandomWaypoint b({-10.0, -10.0}, {10.0, 10.0}, 1.0, 2.0, 100.0, 42);
  for (double t = 0.0; t < 100.0; t += 5.0) {
    EXPECT_EQ(a.position(t), b.position(t));
  }
}

TEST(RandomWaypoint, DifferentSeedsDiffer) {
  const RandomWaypoint a({-10.0, -10.0}, {10.0, 10.0}, 1.0, 2.0, 100.0, 1);
  const RandomWaypoint b({-10.0, -10.0}, {10.0, 10.0}, 1.0, 2.0, 100.0, 2);
  int same = 0;
  for (double t = 0.0; t < 100.0; t += 5.0) {
    if (a.position(t).distance_to(b.position(t)) < 1e-9) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomWaypoint, SpeedBounded) {
  const RandomWaypoint m({-100.0, -100.0}, {100.0, 100.0}, 1.0, 3.0, 200.0, 9);
  for (double t = 0.0; t < 200.0; t += 0.5) {
    const double moved = m.position(t).distance_to(m.position(t + 0.5));
    EXPECT_LE(moved, 3.0 * 0.5 + 1e-9);
  }
}

TEST(RandomWaypoint, BadSpeedRangeThrows) {
  EXPECT_THROW(RandomWaypoint({0.0, 0.0}, {1.0, 1.0}, 0.0, 1.0, 10.0, 1),
               std::invalid_argument);
  EXPECT_THROW(RandomWaypoint({0.0, 0.0}, {1.0, 1.0}, 2.0, 1.0, 10.0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace mm::sim
