#include "capture/observation_store.h"

#include <gtest/gtest.h>

namespace mm::capture {
namespace {

const net80211::MacAddress kDevA = *net80211::MacAddress::parse("00:16:6f:00:00:0a");
const net80211::MacAddress kDevB = *net80211::MacAddress::parse("00:16:6f:00:00:0b");
const net80211::MacAddress kAp1 = *net80211::MacAddress::parse("00:1a:2b:00:00:01");
const net80211::MacAddress kAp2 = *net80211::MacAddress::parse("00:1a:2b:00:00:02");
const net80211::MacAddress kAp3 = *net80211::MacAddress::parse("00:1a:2b:00:00:03");

TEST(ObservationStore, EmptyByDefault) {
  const ObservationStore store;
  EXPECT_EQ(store.device_count(), 0u);
  EXPECT_TRUE(store.devices().empty());
  EXPECT_EQ(store.device(kDevA), nullptr);
  EXPECT_TRUE(store.gamma(kDevA).empty());
  EXPECT_EQ(store.probing_device_count(), 0u);
}

TEST(ObservationStore, ProbeRequestCreatesDevice) {
  ObservationStore store;
  store.record_probe_request(kDevA, 1.0, std::nullopt);
  EXPECT_EQ(store.device_count(), 1u);
  const DeviceRecord* rec = store.device(kDevA);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->probe_requests, 1u);
  EXPECT_DOUBLE_EQ(rec->first_seen, 1.0);
  EXPECT_DOUBLE_EQ(rec->last_seen, 1.0);
}

TEST(ObservationStore, DirectedSsidsDeduplicated) {
  ObservationStore store;
  store.record_probe_request(kDevA, 1.0, std::string("HomeNet"));
  store.record_probe_request(kDevA, 2.0, std::string("HomeNet"));
  store.record_probe_request(kDevA, 3.0, std::string("WorkNet"));
  store.record_probe_request(kDevA, 4.0, std::string(""));  // wildcard ignored
  const DeviceRecord* rec = store.device(kDevA);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->directed_ssids, (std::vector<std::string>{"HomeNet", "WorkNet"}));
}

TEST(ObservationStore, GammaCollectsContacts) {
  ObservationStore store;
  store.record_contact(kAp1, kDevA, 1.0, -70.0);
  store.record_contact(kAp2, kDevA, 1.1, -75.0);
  store.record_contact(kAp1, kDevB, 2.0, -60.0);
  EXPECT_EQ(store.gamma(kDevA), (std::set<net80211::MacAddress>{kAp1, kAp2}));
  EXPECT_EQ(store.gamma(kDevB), (std::set<net80211::MacAddress>{kAp1}));
}

TEST(ObservationStore, GammaWindowFilters) {
  ObservationStore store;
  store.record_contact(kAp1, kDevA, 1.0, -70.0);
  store.record_contact(kAp2, kDevA, 5.0, -70.0);
  store.record_contact(kAp3, kDevA, 9.0, -70.0);
  EXPECT_EQ(store.gamma(kDevA, {4.0, 6.0}), (std::set<net80211::MacAddress>{kAp2}));
  EXPECT_EQ(store.gamma(kDevA, {0.0, 10.0}),
            (std::set<net80211::MacAddress>{kAp1, kAp2, kAp3}));
  EXPECT_TRUE(store.gamma(kDevA, {20.0, 30.0}).empty());
}

TEST(ObservationStore, ContactAccumulatesCounts) {
  ObservationStore store;
  store.record_contact(kAp1, kDevA, 1.0, -70.0);
  store.record_contact(kAp1, kDevA, 2.0, -65.0);
  const DeviceRecord* rec = store.device(kDevA);
  ASSERT_NE(rec, nullptr);
  const ApContact& contact = rec->contacts.at(kAp1);
  EXPECT_EQ(contact.count, 2u);
  EXPECT_DOUBLE_EQ(contact.first_seen, 1.0);
  EXPECT_DOUBLE_EQ(contact.last_seen, 2.0);
  EXPECT_DOUBLE_EQ(contact.last_rssi_dbm, -65.0);
  EXPECT_EQ(contact.times.size(), 2u);
}

TEST(ObservationStore, AllGammasSkipsDevicesWithoutContacts) {
  ObservationStore store;
  store.record_probe_request(kDevA, 1.0, std::nullopt);  // probing, no contacts
  store.record_contact(kAp1, kDevB, 1.0, -70.0);
  const auto gammas = store.all_gammas();
  ASSERT_EQ(gammas.size(), 1u);
  EXPECT_EQ(gammas[0], (std::set<net80211::MacAddress>{kAp1}));
}

TEST(ObservationStore, SessionGammasSplitByGap) {
  ObservationStore store;
  // One scan at t~1 (AP1, AP2), another at t~100 (AP2, AP3).
  store.record_contact(kAp1, kDevA, 1.00, -70.0);
  store.record_contact(kAp2, kDevA, 1.05, -70.0);
  store.record_contact(kAp2, kDevA, 100.00, -70.0);
  store.record_contact(kAp3, kDevA, 100.10, -70.0);
  const auto sessions = store.session_gammas(5.0);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0], (std::set<net80211::MacAddress>{kAp1, kAp2}));
  EXPECT_EQ(sessions[1], (std::set<net80211::MacAddress>{kAp2, kAp3}));
}

TEST(ObservationStore, SessionGammasSingleSessionWhenDense) {
  ObservationStore store;
  store.record_contact(kAp1, kDevA, 1.0, -70.0);
  store.record_contact(kAp2, kDevA, 3.0, -70.0);
  store.record_contact(kAp3, kDevA, 5.0, -70.0);
  const auto sessions = store.session_gammas(5.0);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].size(), 3u);
}

TEST(ObservationStore, SessionGammasRespectWindow) {
  ObservationStore store;
  store.record_contact(kAp1, kDevA, 1.0, -70.0);
  store.record_contact(kAp2, kDevA, 50.0, -70.0);
  const auto sessions = store.session_gammas(5.0, {40.0, 60.0});
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0], (std::set<net80211::MacAddress>{kAp2}));
}

TEST(ObservationStore, SessionGammasPerDevice) {
  ObservationStore store;
  store.record_contact(kAp1, kDevA, 1.0, -70.0);
  store.record_contact(kAp2, kDevB, 1.0, -70.0);
  const auto sessions = store.session_gammas(5.0);
  EXPECT_EQ(sessions.size(), 2u);  // one per device, never merged
}

TEST(ObservationStore, ProbingDeviceCount) {
  ObservationStore store;
  store.record_probe_request(kDevA, 1.0, std::nullopt);
  store.record_contact(kAp1, kDevB, 1.0, -70.0);  // seen, never probed
  EXPECT_EQ(store.device_count(), 2u);
  EXPECT_EQ(store.probing_device_count(), 1u);
}

TEST(ObservationStore, BeaconSightings) {
  ObservationStore store;
  store.record_beacon(kAp1, "NetOne", 6, 1.0, -55.0);
  store.record_beacon(kAp1, "NetOne", 6, 1.1, -54.0);
  store.record_beacon(kAp2, "NetTwo", 11, 1.2, -60.0);
  ASSERT_EQ(store.ap_sightings().size(), 2u);
  const ApSighting& s1 = store.ap_sightings().at(kAp1);
  EXPECT_EQ(s1.ssid, "NetOne");
  EXPECT_EQ(s1.channel, 6);
  EXPECT_EQ(s1.beacons, 2u);
  EXPECT_DOUBLE_EQ(s1.last_rssi_dbm, -54.0);
}

TEST(ObservationStore, ClearResets) {
  ObservationStore store;
  store.record_probe_request(kDevA, 1.0, std::nullopt);
  store.record_beacon(kAp1, "x", 1, 1.0, -50.0);
  store.clear();
  EXPECT_EQ(store.device_count(), 0u);
  EXPECT_TRUE(store.ap_sightings().empty());
}

TEST(ObservationStore, ContactHistoryCapCompactsOldestInstants) {
  ObservationStoreOptions options;
  options.contact_history_cap = 16;
  ObservationStore store(options);
  for (int i = 0; i < 100; ++i) {
    store.record_contact(kAp1, kDevA, static_cast<sim::SimTime>(i), -70.0);
  }
  const ApContact& contact = store.device(kDevA)->contacts.at(kAp1);
  // Aggregates stay exact even though instants were compacted.
  EXPECT_EQ(contact.count, 100u);
  EXPECT_EQ(contact.first_seen, 0.0);
  EXPECT_EQ(contact.last_seen, 99.0);
  // History is bounded by the cap and holds the newest suffix, time-ordered.
  EXPECT_LE(contact.times.size(), 16u);
  EXPECT_EQ(contact.times.back(), 99.0);
  for (std::size_t i = 1; i < contact.times.size(); ++i) {
    EXPECT_LT(contact.times[i - 1], contact.times[i]);
  }
  // Recent-window queries over the retained suffix remain exact.
  EXPECT_EQ(store.gamma(kDevA, ObservationWindow{95.0, 99.0}).count(kAp1), 1u);
}

TEST(ObservationStore, ContactHistoryCapAppliesPerContact) {
  ObservationStoreOptions options;
  options.contact_history_cap = 8;
  ObservationStore store(options);
  for (int i = 0; i < 50; ++i) {
    store.record_contact(kAp1, kDevA, static_cast<sim::SimTime>(i), -70.0);
  }
  store.record_contact(kAp2, kDevA, 1.0, -60.0);
  const DeviceRecord* record = store.device(kDevA);
  EXPECT_LE(record->contacts.at(kAp1).times.size(), 8u);
  // A sparse contact on the same device is untouched by the busy one's cap.
  EXPECT_EQ(record->contacts.at(kAp2).times.size(), 1u);
}

TEST(ObservationStore, UnboundedHistoryOptOutKeepsEveryInstant) {
  ObservationStoreOptions options;
  options.contact_history_cap = 16;
  options.unbounded_contact_history = true;
  ObservationStore store(options);
  for (int i = 0; i < 100; ++i) {
    store.record_contact(kAp1, kDevA, static_cast<sim::SimTime>(i), -70.0);
  }
  const ApContact& contact = store.device(kDevA)->contacts.at(kAp1);
  EXPECT_EQ(contact.times.size(), 100u);
  EXPECT_EQ(contact.count, 100u);
}

}  // namespace
}  // namespace mm::capture
