#include "marauder/aprad.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mm::marauder {
namespace {

net80211::MacAddress mac(int i) {
  std::array<std::uint8_t, 6> bytes{0x00, 0x1a, 0x2b, 0x00, 0x00,
                                    static_cast<std::uint8_t>(i)};
  return net80211::MacAddress(bytes);
}

ApDatabase line_db(const std::vector<double>& xs) {
  ApDatabase db;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    db.add({mac(static_cast<int>(i)), "ap", {xs[i], 0.0}, std::nullopt});
  }
  return db;
}

TEST(ApRad, EmptyGammasYieldNoRadii) {
  const ApDatabase db = line_db({0.0, 100.0});
  const auto radii = aprad_estimate_radii(db, {}, {});
  EXPECT_TRUE(radii.empty());
}

TEST(ApRad, CoObservedPairSatisfiesLowerBound) {
  const ApDatabase db = line_db({0.0, 100.0});
  const std::vector<std::set<net80211::MacAddress>> gammas{{mac(0), mac(1)}};
  ApRadOptions options;
  options.max_radius_m = 150.0;
  const auto radii = aprad_estimate_radii(db, gammas, options);
  ASSERT_EQ(radii.size(), 2u);
  EXPECT_GE(radii.at(mac(0)) + radii.at(mac(1)), 100.0 - 1e-6);
  EXPECT_LE(radii.at(mac(0)), 150.0 + 1e-6);
  EXPECT_LE(radii.at(mac(1)), 150.0 + 1e-6);
}

TEST(ApRad, NeverCoObservedPairRespectsUpperBound) {
  // Three APs; 0-1 co-observed, 1-2 and 0-2 never.
  const ApDatabase db = line_db({0.0, 80.0, 200.0});
  const std::vector<std::set<net80211::MacAddress>> gammas{{mac(0), mac(1)}};
  ApRadOptions options;
  options.max_radius_m = 300.0;
  const auto radii = aprad_estimate_radii(db, gammas, options);
  // Only observed APs get radii (AP 2 never appears in any Gamma).
  ASSERT_EQ(radii.size(), 2u);
  EXPECT_EQ(radii.count(mac(2)), 0u);
  EXPECT_GE(radii.at(mac(0)) + radii.at(mac(1)), 80.0 - 1e-6);
}

TEST(ApRad, LessConstraintLimitsRadiiBetweenObservedAps) {
  // 0-1 co-observed and 1-2 co-observed, but 0-2 never: r0 + r2 <= 300.
  const ApDatabase db = line_db({0.0, 150.0, 300.0});
  const std::vector<std::set<net80211::MacAddress>> gammas{{mac(0), mac(1)},
                                                           {mac(1), mac(2)}};
  ApRadOptions options;
  options.max_radius_m = 400.0;
  options.epsilon_m = 1.0;
  options.overestimate_bias_m = 0.0;  // assert the raw LP bounds here
  const auto radii = aprad_estimate_radii(db, gammas, options);
  ASSERT_EQ(radii.size(), 3u);
  EXPECT_GE(radii.at(mac(0)) + radii.at(mac(1)), 150.0 - 1e-6);
  EXPECT_GE(radii.at(mac(1)) + radii.at(mac(2)), 150.0 - 1e-6);
  EXPECT_LE(radii.at(mac(0)) + radii.at(mac(2)), 300.0 - 1.0 + 1e-6);
}

TEST(ApRad, MaximizationPrefersOverestimates) {
  // Single co-observed pair, no "<" pressure: both radii driven to the cap.
  const ApDatabase db = line_db({0.0, 50.0});
  const std::vector<std::set<net80211::MacAddress>> gammas{{mac(0), mac(1)}};
  ApRadOptions options;
  options.max_radius_m = 120.0;
  const auto radii = aprad_estimate_radii(db, gammas, options);
  EXPECT_NEAR(radii.at(mac(0)), 120.0, 1e-6);
  EXPECT_NEAR(radii.at(mac(1)), 120.0, 1e-6);
}

TEST(ApRad, ConflictingEvidenceHandledSoftly) {
  // Geometrically contradictory observations: 0-2 co-observed (r0+r2 >= 200)
  // but 0-1 and 1-2 never, with AP 1 in the middle (r0+r1 <= 99, r1+r2 <= 99).
  // Hard "<" would be infeasible together with the cap ordering; the soft
  // solver must still return radii honoring the hard >= constraint.
  const ApDatabase db = line_db({0.0, 100.0, 200.0});
  const std::vector<std::set<net80211::MacAddress>> gammas{{mac(0), mac(2)}};
  // Make APs 0,1,2 all observed so the "<" pairs exist.
  const std::vector<std::set<net80211::MacAddress>> with_one{
      {mac(0), mac(2)}, {mac(1)}};
  ApRadOptions options;
  options.max_radius_m = 250.0;
  const auto radii = aprad_estimate_radii(db, with_one, options);
  ASSERT_EQ(radii.size(), 3u);
  EXPECT_GE(radii.at(mac(0)) + radii.at(mac(2)), 200.0 - 1e-6);
}

TEST(ApRad, LocateProducesEstimateNearTruth) {
  // Simulated ground truth: APs with radius 100 at known spots; mobile at
  // origin sees exactly the APs covering it.
  util::Rng rng(5);
  ApDatabase db;
  std::vector<std::set<net80211::MacAddress>> gammas;
  const double true_r = 100.0;
  std::set<net80211::MacAddress> target;
  std::vector<geo::Vec2> positions;
  for (int i = 0; i < 8; ++i) {
    const geo::Vec2 p = geo::Vec2::from_polar(true_r * 0.8 * std::sqrt(rng.uniform()),
                                              rng.angle());
    db.add({mac(i), "ap", p, std::nullopt});
    target.insert(mac(i));
    positions.push_back(p);
  }
  // Several auxiliary mobiles provide co-observation evidence.
  gammas.push_back(target);
  ApRadOptions options;
  options.max_radius_m = 200.0;
  const LocalizationResult r = aprad_locate(db, gammas, target, options);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.method, "AP-Rad");
  EXPECT_LT(r.estimate.norm(), 60.0);  // mobile is at the origin
}

TEST(ApRad, UnknownBssidsIgnored) {
  const ApDatabase db = line_db({0.0, 100.0});
  const auto unknown = mac(99);
  const std::vector<std::set<net80211::MacAddress>> gammas{{mac(0), mac(1), unknown}};
  const auto radii = aprad_estimate_radii(db, gammas, {});
  EXPECT_EQ(radii.count(unknown), 0u);
  EXPECT_EQ(radii.size(), 2u);
}

// Theorem-3 sanity at system level: radii from the LP are overestimates
// often enough that the M-Loc region usually covers the mobile.
TEST(ApRad, RegionUsuallyCoversTruthAcrossTrials) {
  util::Rng rng(77);
  int covered = 0;
  const int kTrials = 50;
  for (int trial = 0; trial < kTrials; ++trial) {
    ApDatabase db;
    std::set<net80211::MacAddress> target;
    const geo::Vec2 mobile{rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0)};
    const double true_r = 100.0;
    for (int i = 0; i < 6; ++i) {
      const geo::Vec2 p =
          mobile + geo::Vec2::from_polar(true_r * std::sqrt(rng.uniform()), rng.angle());
      db.add({mac(i), "ap", p, std::nullopt});
      target.insert(mac(i));
    }
    ApRadOptions options;
    options.max_radius_m = 250.0;
    const LocalizationResult r =
        aprad_locate(db, {target}, target, options);
    if (r.ok && region_covers(r, mobile)) ++covered;
  }
  EXPECT_GT(covered, kTrials * 3 / 4);
}

}  // namespace
}  // namespace mm::marauder
