#include "marauder/linker.h"

#include <gtest/gtest.h>

namespace mm::marauder {
namespace {

net80211::MacAddress mac(int i) {
  std::array<std::uint8_t, 6> bytes{0x02, 0x00, 0x00, 0x00, 0x03,
                                    static_cast<std::uint8_t>(i)};
  return net80211::MacAddress(bytes);
}

void probe(capture::ObservationStore& store, int device, double t,
           std::initializer_list<const char*> ssids) {
  store.record_probe_request(mac(device), t, std::nullopt);
  for (const char* ssid : ssids) {
    store.record_probe_request(mac(device), t, std::string(ssid));
  }
}

TEST(Linker, EmptyStoreNoIdentities) {
  const capture::ObservationStore store;
  EXPECT_TRUE(link_identities(store).empty());
}

TEST(Linker, SingletonWithoutFingerprint) {
  capture::ObservationStore store;
  probe(store, 0, 1.0, {});
  const auto identities = link_identities(store);
  ASSERT_EQ(identities.size(), 1u);
  EXPECT_EQ(identities[0].macs.size(), 1u);
  EXPECT_FALSE(identities[0].pseudonymous());
  EXPECT_TRUE(identities[0].fingerprint.empty());
}

TEST(Linker, SharedSsidLinksTwoMacs) {
  capture::ObservationStore store;
  probe(store, 0, 1.0, {"home-wifi-2819"});
  probe(store, 1, 60.0, {"home-wifi-2819"});
  const auto identities = link_identities(store);
  ASSERT_EQ(identities.size(), 1u);
  EXPECT_TRUE(identities[0].pseudonymous());
  ASSERT_EQ(identities[0].macs.size(), 2u);
  // First-seen order: mac(0) before mac(1).
  EXPECT_EQ(identities[0].macs[0], mac(0));
  EXPECT_EQ(identities[0].macs[1], mac(1));
  EXPECT_EQ(identities[0].fingerprint.count("home-wifi-2819"), 1u);
}

TEST(Linker, DistinctFingerprintsStaySeparate) {
  capture::ObservationStore store;
  probe(store, 0, 1.0, {"alices-net"});
  probe(store, 1, 2.0, {"bobs-net"});
  EXPECT_EQ(link_identities(store).size(), 2u);
}

TEST(Linker, TransitiveLinking) {
  capture::ObservationStore store;
  probe(store, 0, 1.0, {"net-a"});
  probe(store, 1, 2.0, {"net-a", "net-b"});
  probe(store, 2, 3.0, {"net-b"});
  const auto identities = link_identities(store);
  ASSERT_EQ(identities.size(), 1u);
  EXPECT_EQ(identities[0].macs.size(), 3u);
  EXPECT_EQ(identities[0].fingerprint.size(), 2u);
}

TEST(Linker, PopularSsidDoesNotLink) {
  capture::ObservationStore store;
  // Five unrelated devices probing for the same campus network.
  for (int i = 0; i < 5; ++i) probe(store, i, static_cast<double>(i), {"eduroam"});
  LinkerOptions options;
  options.max_ssid_popularity = 3;
  const auto identities = link_identities(store, options);
  EXPECT_EQ(identities.size(), 5u);  // nobody merged
}

TEST(Linker, MinOverlapTwoRequiresTwoSharedSsids) {
  capture::ObservationStore store;
  probe(store, 0, 1.0, {"net-a", "net-b"});
  probe(store, 1, 2.0, {"net-a"});              // only one shared
  probe(store, 2, 3.0, {"net-a", "net-b"});     // both shared
  LinkerOptions options;
  options.min_overlap = 2;
  const auto identities = link_identities(store, options);
  EXPECT_EQ(identities.size(), 2u);
  const auto linked = std::find_if(identities.begin(), identities.end(),
                                   [](const LinkedIdentity& id) { return id.macs.size() == 2; });
  ASSERT_NE(linked, identities.end());
  EXPECT_EQ(linked->macs[0], mac(0));
  EXPECT_EQ(linked->macs[1], mac(2));
}

TEST(Linker, DevicesSeenOnlyViaContactsAreSingletons) {
  capture::ObservationStore store;
  store.record_contact(mac(10), mac(0), 1.0, -70.0);  // device 0 never probed
  const auto identities = link_identities(store);
  ASSERT_EQ(identities.size(), 1u);
  EXPECT_EQ(identities[0].macs[0], mac(0));
}

TEST(Linker, EveryMacAppearsExactlyOnce) {
  capture::ObservationStore store;
  probe(store, 0, 1.0, {"x"});
  probe(store, 1, 2.0, {"x"});
  probe(store, 2, 3.0, {"y"});
  probe(store, 3, 4.0, {});
  const auto identities = link_identities(store);
  std::size_t total = 0;
  std::set<net80211::MacAddress> seen;
  for (const auto& identity : identities) {
    for (const auto& m : identity.macs) {
      ++total;
      seen.insert(m);
    }
  }
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace mm::marauder
