// Loopback UDP plumbing: flag clamps, kernel-assigned ports, and a real
// datagram round trip between the shared sender/listener helpers.
#include "net/udp.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace mm::net {
namespace {

TEST(NetUdp, RcvbufClampStaysInSaneRange) {
  EXPECT_EQ(clamp_rcvbuf_bytes(0), kMinRcvbufBytes);
  EXPECT_EQ(clamp_rcvbuf_bytes(-5), kMinRcvbufBytes);
  EXPECT_EQ(clamp_rcvbuf_bytes(kDefaultRcvbufBytes), kDefaultRcvbufBytes);
  EXPECT_EQ(clamp_rcvbuf_bytes(1LL << 40), kMaxRcvbufBytes);  // 1 TB typo
  EXPECT_EQ(clamp_rcvbuf_bytes(kMinRcvbufBytes + 1), kMinRcvbufBytes + 1);
}

TEST(NetUdp, IdleTimeoutClampStaysInSaneRange) {
  EXPECT_EQ(clamp_idle_timeout_ms(0), kMinIdleTimeoutMs);   // no 0 ms spins
  EXPECT_EQ(clamp_idle_timeout_ms(-1), kMinIdleTimeoutMs);
  EXPECT_EQ(clamp_idle_timeout_ms(5000), 5000);
  EXPECT_EQ(clamp_idle_timeout_ms(1LL << 40), kMaxIdleTimeoutMs);
}

TEST(NetUdp, SenderRejectsMalformedSpec) {
  std::string error;
  EXPECT_LT(open_udp_sender("no-port-here", error), 0);
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_LT(open_udp_sender(":5000", error), 0);
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_LT(open_udp_sender("localhost:", error), 0);
  EXPECT_FALSE(error.empty());
}

TEST(NetUdp, PortZeroBindsKernelAssignedPort) {
  UdpListenerOptions options;
  options.rcvtimeo_ms = 50;
  std::string error;
  std::uint16_t bound = 0;
  const int fd = open_udp_listener(0, options, error, &bound);
  ASSERT_GE(fd, 0) << error;
  EXPECT_GT(bound, 0);
  ::close(fd);
}

TEST(NetUdp, DatagramRoundTripOnLoopback) {
  UdpListenerOptions options;
  options.rcvbuf_bytes = kMinRcvbufBytes;
  options.rcvtimeo_ms = 2000;
  std::string error;
  std::uint16_t bound = 0;
  const int listener = open_udp_listener(0, options, error, &bound);
  ASSERT_GE(listener, 0) << error;

  const int sender =
      open_udp_sender("127.0.0.1:" + std::to_string(bound), error);
  ASSERT_GE(sender, 0) << error;

  const std::vector<std::uint8_t> payload = {0xae, 0x61, 0x50, 0x07};
  ASSERT_EQ(::send(sender, payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));

  std::vector<std::uint8_t> got(64);
  const ssize_t n = ::recv(listener, got.data(), got.size(), 0);
  ASSERT_EQ(n, static_cast<ssize_t>(payload.size()));
  got.resize(static_cast<std::size_t>(n));
  EXPECT_EQ(got, payload);

  ::close(sender);
  ::close(listener);
}

}  // namespace
}  // namespace mm::net
