// Aegis reliability primitives: the deterministic retry schedule, the
// circuit breaker's closed/open/half-open walk, and the idempotency window.
#include "wps/reliability.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace mm::wps {
namespace {

TEST(RetryPolicy, ScheduleIsDeterministicPerSeed) {
  RetryOptions options;
  options.seed = 77;
  RetryPolicy a(options);
  RetryPolicy b(options);
  for (std::uint64_t id = 1; id <= 50; ++id) {
    for (int attempt = 1; attempt < options.max_attempts; ++attempt) {
      EXPECT_EQ(a.retry_delay_ms(id, attempt), b.retry_delay_ms(id, attempt));
    }
  }
  options.seed = 78;
  RetryPolicy c(options);
  std::size_t differs = 0;
  for (std::uint64_t id = 1; id <= 50; ++id) {
    differs += a.retry_delay_ms(id, 1) != c.retry_delay_ms(id, 1);
  }
  EXPECT_GT(differs, 25u);  // a different salt reshuffles the jitter
}

TEST(RetryPolicy, BackoffDoublesAndCaps) {
  RetryOptions options;
  options.backoff_base_ms = 100;
  options.backoff_max_ms = 400;
  options.jitter = 0.0;  // isolate the exponential shape
  options.max_attempts = 6;
  RetryPolicy policy(options);
  EXPECT_EQ(policy.retry_delay_ms(9, 1), 100u);
  EXPECT_EQ(policy.retry_delay_ms(9, 2), 200u);
  EXPECT_EQ(policy.retry_delay_ms(9, 3), 400u);
  EXPECT_EQ(policy.retry_delay_ms(9, 4), 400u);  // capped
  EXPECT_FALSE(policy.exhausted(5));
  EXPECT_TRUE(policy.exhausted(6));
}

TEST(RetryPolicy, JitterStaysWithinFraction) {
  RetryOptions options;
  options.backoff_base_ms = 100;
  options.jitter = 0.25;
  RetryPolicy policy(options);
  for (std::uint64_t id = 1; id <= 200; ++id) {
    const std::uint64_t d = policy.retry_delay_ms(id, 1);
    EXPECT_GE(d, 100u);
    EXPECT_LE(d, 125u);
  }
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailuresAndProbesHalfOpen) {
  BreakerOptions options;
  options.max_failures = 3;
  options.open_initial_ms = 100;
  CircuitBreaker breaker(options);
  EXPECT_EQ(breaker.state(0), BreakerState::kClosed);

  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.allow(10));
    breaker.record_failure(10);
  }
  EXPECT_EQ(breaker.state(10), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 1u);
  EXPECT_FALSE(breaker.allow(50));  // window not elapsed
  EXPECT_GE(breaker.stats().rejected, 1u);

  // Window elapsed: exactly one probe allowed (half-open), others rejected.
  EXPECT_TRUE(breaker.allow(120));
  EXPECT_EQ(breaker.state(120), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow(120));

  breaker.record_success(121);
  EXPECT_EQ(breaker.state(122), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(122));
}

TEST(CircuitBreaker, FailedProbeReopensWithDoubledWindow) {
  BreakerOptions options;
  options.max_failures = 2;
  options.open_initial_ms = 100;
  options.open_max_ms = 1000;
  CircuitBreaker breaker(options);
  breaker.record_failure(0);
  breaker.record_failure(0);
  ASSERT_EQ(breaker.state(0), BreakerState::kOpen);

  ASSERT_TRUE(breaker.allow(150));  // probe
  breaker.record_failure(150);      // probe failed: re-trip, window doubles
  EXPECT_EQ(breaker.state(150), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 2u);
  EXPECT_FALSE(breaker.allow(260));  // 150 + 200 not elapsed yet
  EXPECT_TRUE(breaker.allow(360));
}

TEST(DedupCache, AbsorbsInFlightAndReplaysCompleted) {
  DedupCache cache(8);
  const DedupKey key{1, 42};
  const std::vector<std::uint8_t>* cached = nullptr;
  EXPECT_EQ(cache.lookup(key, &cached), DedupCache::Lookup::kMiss);

  cache.begin(key);
  EXPECT_EQ(cache.lookup(key, &cached), DedupCache::Lookup::kInFlight);

  cache.complete(key, {0xaa, 0xbb});
  ASSERT_EQ(cache.lookup(key, &cached), DedupCache::Lookup::kCached);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(*cached, (std::vector<std::uint8_t>{0xaa, 0xbb}));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(DedupCache, EvictsOldestCompletedBeyondWindow) {
  DedupCache cache(4);
  const std::vector<std::uint8_t>* cached = nullptr;
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    const DedupKey key{1, seq};
    cache.begin(key);
    cache.complete(key, {static_cast<std::uint8_t>(seq)});
  }
  EXPECT_EQ(cache.stats().evictions, 6u);
  EXPECT_EQ(cache.entries(), 4u);
  EXPECT_EQ(cache.lookup({1, 1}, &cached), DedupCache::Lookup::kMiss);
  EXPECT_EQ(cache.lookup({1, 10}, &cached), DedupCache::Lookup::kCached);
  // Distinct streams with the same seq are distinct requests.
  EXPECT_EQ(cache.lookup({2, 10}, &cached), DedupCache::Lookup::kMiss);
}

}  // namespace
}  // namespace mm::wps
