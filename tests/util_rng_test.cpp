#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace mm::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-5.0, 11.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 11.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double total = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kN, 0.5, 0.005);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -2);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -2);
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(9);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(10);
  double total = 0.0;
  double sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    total += g;
    sq += g * g;
  }
  EXPECT_NEAR(total / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, GaussianShiftScale) {
  Rng rng(11);
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(total / kN, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(12);
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += rng.exponential(0.5);
  EXPECT_NEAR(total / kN, 2.0, 0.05);
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(13);
  double total = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) total += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(total / kN, 3.5, 0.1);
}

TEST(Rng, PoissonMeanLargeLambdaUsesNormalApprox) {
  Rng rng(14);
  double total = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) total += static_cast<double>(rng.poisson(120.0));
  EXPECT_NEAR(total / kN, 120.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(15);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(16);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, WeightedIndexZeroWeightNeverPicked) {
  Rng rng(17);
  const std::vector<double> weights{0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 1000; ++i) {
    const auto idx = rng.weighted_index(weights);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(Rng, WeightedIndexAllZeroReturnsSize) {
  Rng rng(18);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(weights), weights.size());
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(19);
  const std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ones += rng.weighted_index(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / kN, 0.75, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(20);
  Rng child = parent.fork(1);
  Rng child2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == child2.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

TEST(Rng, AngleInRange) {
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.angle();
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 2.0 * 3.14159265358979323846);
  }
}

}  // namespace
}  // namespace mm::util
