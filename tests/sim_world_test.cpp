#include "sim/world.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/ap.h"
#include "sim/attacker.h"
#include "sim/mobile.h"
#include "sim/mobility.h"

namespace mm::sim {
namespace {

const net80211::MacAddress kApMac = *net80211::MacAddress::parse("00:1a:2b:00:00:01");
const net80211::MacAddress kClientMac = *net80211::MacAddress::parse("00:16:6f:00:00:02");

/// Records every frame delivered to it.
class RecordingReceiver final : public FrameReceiver {
 public:
  explicit RecordingReceiver(geo::Vec2 pos) : pos_(pos) {}
  [[nodiscard]] geo::Vec2 position() const override { return pos_; }
  [[nodiscard]] double antenna_height_m() const override { return 10.0; }
  void on_air_frame(const net80211::ManagementFrame& frame, const RxInfo& rx) override {
    frames.push_back(frame);
    infos.push_back(rx);
  }

  std::vector<net80211::ManagementFrame> frames;
  std::vector<RxInfo> infos;

 private:
  geo::Vec2 pos_;
};

std::unique_ptr<MobileDevice> make_mobile(geo::Vec2 pos, ScanProfile profile = {}) {
  MobileConfig cfg;
  cfg.mac = kClientMac;
  cfg.profile = profile;
  cfg.mobility = std::make_shared<StaticPosition>(pos);
  return std::make_unique<MobileDevice>(cfg);
}

ApConfig base_ap(geo::Vec2 pos, double radius, int channel = 6) {
  ApConfig cfg;
  cfg.bssid = kApMac;
  cfg.ssid = "TestNet";
  cfg.channel = {rf::Band::kBg24GHz, channel};
  cfg.position = pos;
  cfg.service_radius_m = radius;
  return cfg;
}

TEST(World, TransmitDeliversToRegisteredReceivers) {
  World world({.seed = 1, .propagation = nullptr});
  RecordingReceiver sniffer({100.0, 0.0});
  world.register_receiver(&sniffer);
  world.transmit(net80211::make_probe_request(kClientMac, std::nullopt, 1),
                 {{0.0, 0.0}, 1.5, 15.0, 0.0, {rf::Band::kBg24GHz, 6}, nullptr});
  ASSERT_EQ(sniffer.frames.size(), 1u);
  EXPECT_EQ(sniffer.frames[0].subtype, net80211::ManagementSubtype::kProbeRequest);
  EXPECT_NEAR(sniffer.infos[0].distance_m, 100.0, 1e-9);
  // Free space at 100 m / 2.437 GHz: ~ -65 dBm at 15 dBm tx.
  EXPECT_LT(sniffer.infos[0].rssi_dbm, -60.0);
  EXPECT_GT(sniffer.infos[0].rssi_dbm, -75.0);
}

TEST(World, SenderExcludedFromDelivery) {
  World world({});
  RecordingReceiver a({0.0, 0.0});
  RecordingReceiver b({10.0, 0.0});
  world.register_receiver(&a);
  world.register_receiver(&b);
  world.transmit(net80211::make_probe_request(kClientMac, std::nullopt, 1),
                 {{0.0, 0.0}, 1.5, 15.0, 0.0, {rf::Band::kBg24GHz, 1}, &a});
  EXPECT_TRUE(a.frames.empty());
  EXPECT_EQ(b.frames.size(), 1u);
}

TEST(World, UnregisterStopsDelivery) {
  World world({});
  RecordingReceiver r({0.0, 0.0});
  world.register_receiver(&r);
  world.unregister_receiver(&r);
  world.transmit(net80211::make_probe_request(kClientMac, std::nullopt, 1),
                 {{10.0, 0.0}, 1.5, 15.0, 0.0, {rf::Band::kBg24GHz, 1}, nullptr});
  EXPECT_TRUE(r.frames.empty());
  EXPECT_EQ(world.frames_transmitted(), 1u);
}

TEST(World, ApAnswersProbeInsideDisc) {
  World world({});
  world.add_access_point(std::make_unique<AccessPoint>(base_ap({50.0, 0.0}, 100.0)));
  MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}, {.probes = false}));
  RecordingReceiver sniffer({0.0, 200.0});
  world.register_receiver(&sniffer);

  mobile->trigger_scan();
  world.run_until(2.0);

  // Sniffer saw probe requests (11 channels) and exactly one probe response.
  int responses = 0;
  for (const auto& f : sniffer.frames) {
    if (f.subtype == net80211::ManagementSubtype::kProbeResponse) {
      ++responses;
      EXPECT_EQ(f.addr1, kClientMac);
      EXPECT_EQ(f.addr2, kApMac);
    }
  }
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(mobile->heard_aps().count(kApMac), 1u);
}

TEST(World, ApIgnoresProbeOutsideDisc) {
  World world({});
  AccessPoint* ap =
      world.add_access_point(std::make_unique<AccessPoint>(base_ap({200.0, 0.0}, 100.0)));
  MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}, {.probes = false}));
  mobile->trigger_scan();
  world.run_until(2.0);
  EXPECT_EQ(ap->probes_answered(), 0u);
  EXPECT_TRUE(mobile->heard_aps().empty());
}

TEST(World, ApOnlyHearsItsOwnChannel) {
  World world({});
  // AP on channel 6 within range; scanning sweeps all channels, so exactly
  // the channel-6 probe elicits a response.
  AccessPoint* ap =
      world.add_access_point(std::make_unique<AccessPoint>(base_ap({10.0, 0.0}, 100.0, 6)));
  MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}, {.probes = false}));
  mobile->trigger_scan();
  world.run_until(2.0);
  EXPECT_EQ(ap->probes_answered(), 1u);
}

TEST(World, DirectedProbeOnlyAnsweredForMatchingSsid) {
  World world({});
  ApConfig cfg = base_ap({10.0, 0.0}, 100.0);
  cfg.ssid = "CampusNet";
  AccessPoint* ap = world.add_access_point(std::make_unique<AccessPoint>(cfg));

  ScanProfile profile;
  profile.probes = false;
  profile.directed_ssids = {"HomeNet"};  // not this AP's SSID
  MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}, profile));
  mobile->trigger_scan();
  world.run_until(2.0);
  // Wildcard probe answered once; the directed HomeNet probe ignored.
  EXPECT_EQ(ap->probes_answered(), 1u);
}

TEST(World, BeaconsFollowInterval) {
  World world({});
  ApConfig cfg = base_ap({0.0, 0.0}, 100.0);
  cfg.beacons_enabled = true;
  AccessPoint* ap = world.add_access_point(std::make_unique<AccessPoint>(cfg));
  world.run_until(10.0);
  // ~10 s / 102.4 ms ~= 97 beacons (first one jittered).
  EXPECT_GE(ap->beacons_sent(), 90u);
  EXPECT_LE(ap->beacons_sent(), 99u);
}

TEST(World, PeriodicScanningHappensWithoutTrigger) {
  World world({.seed = 3, .propagation = nullptr});
  world.add_access_point(std::make_unique<AccessPoint>(base_ap({20.0, 0.0}, 100.0)));
  MobileDevice* mobile =
      world.add_mobile(make_mobile({0.0, 0.0}, {.probes = true, .scan_interval_s = 10.0}));
  world.run_until(60.0);
  EXPECT_GE(mobile->scans_started(), 3u);
  EXPECT_FALSE(mobile->heard_aps().empty());
}

TEST(World, QuietDeviceNeverProbes) {
  World world({});
  world.add_access_point(std::make_unique<AccessPoint>(base_ap({20.0, 0.0}, 100.0)));
  MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}, {.probes = false}));
  world.run_until(120.0);
  EXPECT_EQ(mobile->probes_sent(), 0u);
}

TEST(World, ActiveAttackProvokesQuietDevice) {
  World world({});
  world.add_access_point(std::make_unique<AccessPoint>(base_ap({20.0, 0.0}, 100.0)));
  MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}, {.probes = false}));
  ActiveProber prober({.position = {0.0, 50.0}, .interval_s = 5.0});
  prober.attach(world);
  world.run_until(30.0);
  EXPECT_GT(prober.deauths_sent(), 0u);
  EXPECT_GT(mobile->probes_sent(), 0u);  // deauth provoked a sweep
  EXPECT_EQ(mobile->heard_aps().count(kApMac), 1u);
}

TEST(World, DeauthDebounceLimitsScanStorm) {
  World world({});
  MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}, {.probes = false}));
  ActiveProber prober({.position = {0.0, 10.0}, .interval_s = 0.05});
  prober.attach(world);
  world.run_until(1.0);
  // 20 bursts in 1 s, but the 0.5 s debounce allows at most ~3 sweeps.
  EXPECT_LE(mobile->scans_started(), 3u);
}

TEST(World, MovingMobilePositionTracksMobility) {
  World world({});
  MobileConfig cfg;
  cfg.mac = kClientMac;
  cfg.profile.probes = false;
  cfg.mobility = std::make_shared<RouteWalk>(
      std::vector<geo::Vec2>{{0.0, 0.0}, {100.0, 0.0}}, 10.0);
  MobileDevice* mobile = world.add_mobile(std::make_unique<MobileDevice>(cfg));
  world.run_until(5.0);
  EXPECT_NEAR(mobile->position().x, 50.0, 1e-9);
}

TEST(World, RotateMacChangesIdentity) {
  World world({});
  MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}, {.probes = false}));
  const auto fresh = *net80211::MacAddress::parse("02:aa:bb:cc:dd:ee");
  mobile->rotate_mac(fresh);
  EXPECT_EQ(mobile->mac(), fresh);
}

TEST(World, FrameCountsAccumulate) {
  World world({});
  RecordingReceiver sniffer({10.0, 0.0});
  world.register_receiver(&sniffer);
  MobileDevice* mobile = world.add_mobile(make_mobile({0.0, 0.0}, {.probes = false}));
  mobile->trigger_scan();
  world.run_until(1.0);
  EXPECT_EQ(world.frames_transmitted(), 11u);  // one wildcard probe per b/g channel
  EXPECT_EQ(mobile->probes_sent(), 11u);
  EXPECT_EQ(sniffer.frames.size(), 11u);
}

}  // namespace
}  // namespace mm::sim
