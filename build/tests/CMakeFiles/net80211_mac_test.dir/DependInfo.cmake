
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net80211_mac_test.cpp" "tests/CMakeFiles/net80211_mac_test.dir/net80211_mac_test.cpp.o" "gcc" "tests/CMakeFiles/net80211_mac_test.dir/net80211_mac_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/mm_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/mm_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/net80211/CMakeFiles/mm_net80211.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mm_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/mm_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/marauder/CMakeFiles/mm_marauder.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/maps/CMakeFiles/mm_maps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
