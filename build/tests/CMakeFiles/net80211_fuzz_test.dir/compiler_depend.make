# Empty compiler generated dependencies file for net80211_fuzz_test.
# This may be replaced when dependencies are built.
