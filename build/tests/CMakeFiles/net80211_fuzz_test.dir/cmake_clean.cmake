file(REMOVE_RECURSE
  "CMakeFiles/net80211_fuzz_test.dir/net80211_fuzz_test.cpp.o"
  "CMakeFiles/net80211_fuzz_test.dir/net80211_fuzz_test.cpp.o.d"
  "net80211_fuzz_test"
  "net80211_fuzz_test.pdb"
  "net80211_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net80211_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
