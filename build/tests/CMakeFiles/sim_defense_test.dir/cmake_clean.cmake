file(REMOVE_RECURSE
  "CMakeFiles/sim_defense_test.dir/sim_defense_test.cpp.o"
  "CMakeFiles/sim_defense_test.dir/sim_defense_test.cpp.o.d"
  "sim_defense_test"
  "sim_defense_test.pdb"
  "sim_defense_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_defense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
