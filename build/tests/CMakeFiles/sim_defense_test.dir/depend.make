# Empty dependencies file for sim_defense_test.
# This may be replaced when dependencies are built.
