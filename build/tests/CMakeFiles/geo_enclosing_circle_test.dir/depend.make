# Empty dependencies file for geo_enclosing_circle_test.
# This may be replaced when dependencies are built.
