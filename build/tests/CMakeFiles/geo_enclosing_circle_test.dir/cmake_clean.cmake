file(REMOVE_RECURSE
  "CMakeFiles/geo_enclosing_circle_test.dir/geo_enclosing_circle_test.cpp.o"
  "CMakeFiles/geo_enclosing_circle_test.dir/geo_enclosing_circle_test.cpp.o.d"
  "geo_enclosing_circle_test"
  "geo_enclosing_circle_test.pdb"
  "geo_enclosing_circle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_enclosing_circle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
