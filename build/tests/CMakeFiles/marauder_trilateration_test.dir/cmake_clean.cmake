file(REMOVE_RECURSE
  "CMakeFiles/marauder_trilateration_test.dir/marauder_trilateration_test.cpp.o"
  "CMakeFiles/marauder_trilateration_test.dir/marauder_trilateration_test.cpp.o.d"
  "marauder_trilateration_test"
  "marauder_trilateration_test.pdb"
  "marauder_trilateration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marauder_trilateration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
