# Empty compiler generated dependencies file for marauder_trilateration_test.
# This may be replaced when dependencies are built.
