# Empty compiler generated dependencies file for marauder_aprad_test.
# This may be replaced when dependencies are built.
