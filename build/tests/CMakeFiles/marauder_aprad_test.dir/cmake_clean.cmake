file(REMOVE_RECURSE
  "CMakeFiles/marauder_aprad_test.dir/marauder_aprad_test.cpp.o"
  "CMakeFiles/marauder_aprad_test.dir/marauder_aprad_test.cpp.o.d"
  "marauder_aprad_test"
  "marauder_aprad_test.pdb"
  "marauder_aprad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marauder_aprad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
