file(REMOVE_RECURSE
  "CMakeFiles/rf_propagation_test.dir/rf_propagation_test.cpp.o"
  "CMakeFiles/rf_propagation_test.dir/rf_propagation_test.cpp.o.d"
  "rf_propagation_test"
  "rf_propagation_test.pdb"
  "rf_propagation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
