file(REMOVE_RECURSE
  "CMakeFiles/integration_offline_attack_test.dir/integration_offline_attack_test.cpp.o"
  "CMakeFiles/integration_offline_attack_test.dir/integration_offline_attack_test.cpp.o.d"
  "integration_offline_attack_test"
  "integration_offline_attack_test.pdb"
  "integration_offline_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_offline_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
