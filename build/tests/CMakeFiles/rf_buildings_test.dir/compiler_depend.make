# Empty compiler generated dependencies file for rf_buildings_test.
# This may be replaced when dependencies are built.
