file(REMOVE_RECURSE
  "CMakeFiles/rf_buildings_test.dir/rf_buildings_test.cpp.o"
  "CMakeFiles/rf_buildings_test.dir/rf_buildings_test.cpp.o.d"
  "rf_buildings_test"
  "rf_buildings_test.pdb"
  "rf_buildings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_buildings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
