# Empty compiler generated dependencies file for capture_sniffer_test.
# This may be replaced when dependencies are built.
