file(REMOVE_RECURSE
  "CMakeFiles/capture_sniffer_test.dir/capture_sniffer_test.cpp.o"
  "CMakeFiles/capture_sniffer_test.dir/capture_sniffer_test.cpp.o.d"
  "capture_sniffer_test"
  "capture_sniffer_test.pdb"
  "capture_sniffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_sniffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
