file(REMOVE_RECURSE
  "CMakeFiles/sim_association_test.dir/sim_association_test.cpp.o"
  "CMakeFiles/sim_association_test.dir/sim_association_test.cpp.o.d"
  "sim_association_test"
  "sim_association_test.pdb"
  "sim_association_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_association_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
