file(REMOVE_RECURSE
  "CMakeFiles/rf_receiver_chain_test.dir/rf_receiver_chain_test.cpp.o"
  "CMakeFiles/rf_receiver_chain_test.dir/rf_receiver_chain_test.cpp.o.d"
  "rf_receiver_chain_test"
  "rf_receiver_chain_test.pdb"
  "rf_receiver_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_receiver_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
