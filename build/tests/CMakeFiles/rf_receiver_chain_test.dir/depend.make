# Empty dependencies file for rf_receiver_chain_test.
# This may be replaced when dependencies are built.
