file(REMOVE_RECURSE
  "CMakeFiles/analysis_theorems_test.dir/analysis_theorems_test.cpp.o"
  "CMakeFiles/analysis_theorems_test.dir/analysis_theorems_test.cpp.o.d"
  "analysis_theorems_test"
  "analysis_theorems_test.pdb"
  "analysis_theorems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_theorems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
