# Empty compiler generated dependencies file for analysis_theorems_test.
# This may be replaced when dependencies are built.
