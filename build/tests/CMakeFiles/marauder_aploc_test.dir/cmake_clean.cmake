file(REMOVE_RECURSE
  "CMakeFiles/marauder_aploc_test.dir/marauder_aploc_test.cpp.o"
  "CMakeFiles/marauder_aploc_test.dir/marauder_aploc_test.cpp.o.d"
  "marauder_aploc_test"
  "marauder_aploc_test.pdb"
  "marauder_aploc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marauder_aploc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
