# Empty dependencies file for marauder_aploc_test.
# This may be replaced when dependencies are built.
