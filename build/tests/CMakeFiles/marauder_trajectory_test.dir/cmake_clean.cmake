file(REMOVE_RECURSE
  "CMakeFiles/marauder_trajectory_test.dir/marauder_trajectory_test.cpp.o"
  "CMakeFiles/marauder_trajectory_test.dir/marauder_trajectory_test.cpp.o.d"
  "marauder_trajectory_test"
  "marauder_trajectory_test.pdb"
  "marauder_trajectory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marauder_trajectory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
