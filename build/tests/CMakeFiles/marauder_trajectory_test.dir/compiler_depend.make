# Empty compiler generated dependencies file for marauder_trajectory_test.
# This may be replaced when dependencies are built.
