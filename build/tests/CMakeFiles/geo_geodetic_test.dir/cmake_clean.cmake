file(REMOVE_RECURSE
  "CMakeFiles/geo_geodetic_test.dir/geo_geodetic_test.cpp.o"
  "CMakeFiles/geo_geodetic_test.dir/geo_geodetic_test.cpp.o.d"
  "geo_geodetic_test"
  "geo_geodetic_test.pdb"
  "geo_geodetic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_geodetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
