# Empty compiler generated dependencies file for geo_geodetic_test.
# This may be replaced when dependencies are built.
