file(REMOVE_RECURSE
  "CMakeFiles/marauder_mloc_test.dir/marauder_mloc_test.cpp.o"
  "CMakeFiles/marauder_mloc_test.dir/marauder_mloc_test.cpp.o.d"
  "marauder_mloc_test"
  "marauder_mloc_test.pdb"
  "marauder_mloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marauder_mloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
