# Empty compiler generated dependencies file for marauder_mloc_test.
# This may be replaced when dependencies are built.
