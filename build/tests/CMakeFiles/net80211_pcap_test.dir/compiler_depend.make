# Empty compiler generated dependencies file for net80211_pcap_test.
# This may be replaced when dependencies are built.
