file(REMOVE_RECURSE
  "CMakeFiles/net80211_pcap_test.dir/net80211_pcap_test.cpp.o"
  "CMakeFiles/net80211_pcap_test.dir/net80211_pcap_test.cpp.o.d"
  "net80211_pcap_test"
  "net80211_pcap_test.pdb"
  "net80211_pcap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net80211_pcap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
