# Empty compiler generated dependencies file for geo_disc_intersection_test.
# This may be replaced when dependencies are built.
