file(REMOVE_RECURSE
  "CMakeFiles/geo_disc_intersection_test.dir/geo_disc_intersection_test.cpp.o"
  "CMakeFiles/geo_disc_intersection_test.dir/geo_disc_intersection_test.cpp.o.d"
  "geo_disc_intersection_test"
  "geo_disc_intersection_test.pdb"
  "geo_disc_intersection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_disc_intersection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
