# Empty dependencies file for marauder_database_test.
# This may be replaced when dependencies are built.
