file(REMOVE_RECURSE
  "CMakeFiles/marauder_database_test.dir/marauder_database_test.cpp.o"
  "CMakeFiles/marauder_database_test.dir/marauder_database_test.cpp.o.d"
  "marauder_database_test"
  "marauder_database_test.pdb"
  "marauder_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marauder_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
