file(REMOVE_RECURSE
  "CMakeFiles/sim_mobility_test.dir/sim_mobility_test.cpp.o"
  "CMakeFiles/sim_mobility_test.dir/sim_mobility_test.cpp.o.d"
  "sim_mobility_test"
  "sim_mobility_test.pdb"
  "sim_mobility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_mobility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
