# Empty dependencies file for rf_channels_test.
# This may be replaced when dependencies are built.
