file(REMOVE_RECURSE
  "CMakeFiles/rf_channels_test.dir/rf_channels_test.cpp.o"
  "CMakeFiles/rf_channels_test.dir/rf_channels_test.cpp.o.d"
  "rf_channels_test"
  "rf_channels_test.pdb"
  "rf_channels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_channels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
