file(REMOVE_RECURSE
  "CMakeFiles/capture_persistence_test.dir/capture_persistence_test.cpp.o"
  "CMakeFiles/capture_persistence_test.dir/capture_persistence_test.cpp.o.d"
  "capture_persistence_test"
  "capture_persistence_test.pdb"
  "capture_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
