# Empty dependencies file for capture_persistence_test.
# This may be replaced when dependencies are built.
