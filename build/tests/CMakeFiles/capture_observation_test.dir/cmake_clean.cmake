file(REMOVE_RECURSE
  "CMakeFiles/capture_observation_test.dir/capture_observation_test.cpp.o"
  "CMakeFiles/capture_observation_test.dir/capture_observation_test.cpp.o.d"
  "capture_observation_test"
  "capture_observation_test.pdb"
  "capture_observation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_observation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
