# Empty compiler generated dependencies file for capture_observation_test.
# This may be replaced when dependencies are built.
