file(REMOVE_RECURSE
  "CMakeFiles/marauder_tracker_test.dir/marauder_tracker_test.cpp.o"
  "CMakeFiles/marauder_tracker_test.dir/marauder_tracker_test.cpp.o.d"
  "marauder_tracker_test"
  "marauder_tracker_test.pdb"
  "marauder_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marauder_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
