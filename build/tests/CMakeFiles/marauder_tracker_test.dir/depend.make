# Empty dependencies file for marauder_tracker_test.
# This may be replaced when dependencies are built.
