file(REMOVE_RECURSE
  "CMakeFiles/util_ini_test.dir/util_ini_test.cpp.o"
  "CMakeFiles/util_ini_test.dir/util_ini_test.cpp.o.d"
  "util_ini_test"
  "util_ini_test.pdb"
  "util_ini_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_ini_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
