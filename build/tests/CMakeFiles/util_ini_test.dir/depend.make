# Empty dependencies file for util_ini_test.
# This may be replaced when dependencies are built.
