# Empty dependencies file for marauder_linker_test.
# This may be replaced when dependencies are built.
