file(REMOVE_RECURSE
  "CMakeFiles/marauder_linker_test.dir/marauder_linker_test.cpp.o"
  "CMakeFiles/marauder_linker_test.dir/marauder_linker_test.cpp.o.d"
  "marauder_linker_test"
  "marauder_linker_test.pdb"
  "marauder_linker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marauder_linker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
