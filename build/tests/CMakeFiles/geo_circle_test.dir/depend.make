# Empty dependencies file for geo_circle_test.
# This may be replaced when dependencies are built.
