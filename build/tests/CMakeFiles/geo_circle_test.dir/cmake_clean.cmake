file(REMOVE_RECURSE
  "CMakeFiles/geo_circle_test.dir/geo_circle_test.cpp.o"
  "CMakeFiles/geo_circle_test.dir/geo_circle_test.cpp.o.d"
  "geo_circle_test"
  "geo_circle_test.pdb"
  "geo_circle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_circle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
