file(REMOVE_RECURSE
  "CMakeFiles/capture_replay_test.dir/capture_replay_test.cpp.o"
  "CMakeFiles/capture_replay_test.dir/capture_replay_test.cpp.o.d"
  "capture_replay_test"
  "capture_replay_test.pdb"
  "capture_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
