file(REMOVE_RECURSE
  "CMakeFiles/sim_dualband_test.dir/sim_dualband_test.cpp.o"
  "CMakeFiles/sim_dualband_test.dir/sim_dualband_test.cpp.o.d"
  "sim_dualband_test"
  "sim_dualband_test.pdb"
  "sim_dualband_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_dualband_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
