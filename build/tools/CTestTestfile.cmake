# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(mmctl_help "/root/repo/build/tools/mmctl" "help")
set_tests_properties(mmctl_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mmctl_unknown_command "/root/repo/build/tools/mmctl" "frobnicate")
set_tests_properties(mmctl_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mmctl_simulate "/root/repo/build/tools/mmctl" "simulate" "--config" "/root/repo/tools/sample_scenario.ini" "--out" "/root/repo/build/tools/smoke")
set_tests_properties(mmctl_simulate PROPERTIES  FIXTURES_SETUP "mmctl_artifacts" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mmctl_info "/root/repo/build/tools/mmctl" "info" "--pcap" "/root/repo/build/tools/smoke.pcap")
set_tests_properties(mmctl_info PROPERTIES  FIXTURES_REQUIRED "mmctl_artifacts" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mmctl_locate_mloc "/root/repo/build/tools/mmctl" "locate" "--apdb" "/root/repo/build/tools/smoke_apdb.csv" "--observations" "/root/repo/build/tools/smoke_observations.csv" "--algorithm" "mloc" "--map" "/root/repo/build/tools/smoke_map.html")
set_tests_properties(mmctl_locate_mloc PROPERTIES  FIXTURES_REQUIRED "mmctl_artifacts" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mmctl_locate_aprad_from_pcap "/root/repo/build/tools/mmctl" "locate" "--apdb" "/root/repo/build/tools/smoke_apdb.csv" "--pcap" "/root/repo/build/tools/smoke.pcap" "--algorithm" "aprad")
set_tests_properties(mmctl_locate_aprad_from_pcap PROPERTIES  FIXTURES_REQUIRED "mmctl_artifacts" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
