file(REMOVE_RECURSE
  "CMakeFiles/mmctl.dir/cmd_info.cpp.o"
  "CMakeFiles/mmctl.dir/cmd_info.cpp.o.d"
  "CMakeFiles/mmctl.dir/cmd_locate.cpp.o"
  "CMakeFiles/mmctl.dir/cmd_locate.cpp.o.d"
  "CMakeFiles/mmctl.dir/cmd_simulate.cpp.o"
  "CMakeFiles/mmctl.dir/cmd_simulate.cpp.o.d"
  "CMakeFiles/mmctl.dir/cmd_wigle.cpp.o"
  "CMakeFiles/mmctl.dir/cmd_wigle.cpp.o.d"
  "CMakeFiles/mmctl.dir/mmctl.cpp.o"
  "CMakeFiles/mmctl.dir/mmctl.cpp.o.d"
  "mmctl"
  "mmctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
