# Empty dependencies file for mmctl.
# This may be replaced when dependencies are built.
