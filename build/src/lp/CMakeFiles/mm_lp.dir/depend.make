# Empty dependencies file for mm_lp.
# This may be replaced when dependencies are built.
