file(REMOVE_RECURSE
  "libmm_lp.a"
)
