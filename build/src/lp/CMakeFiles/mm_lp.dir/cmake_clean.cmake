file(REMOVE_RECURSE
  "CMakeFiles/mm_lp.dir/simplex.cpp.o"
  "CMakeFiles/mm_lp.dir/simplex.cpp.o.d"
  "libmm_lp.a"
  "libmm_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
