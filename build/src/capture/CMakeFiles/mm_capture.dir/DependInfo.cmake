
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/observation_store.cpp" "src/capture/CMakeFiles/mm_capture.dir/observation_store.cpp.o" "gcc" "src/capture/CMakeFiles/mm_capture.dir/observation_store.cpp.o.d"
  "/root/repo/src/capture/persistence.cpp" "src/capture/CMakeFiles/mm_capture.dir/persistence.cpp.o" "gcc" "src/capture/CMakeFiles/mm_capture.dir/persistence.cpp.o.d"
  "/root/repo/src/capture/replay.cpp" "src/capture/CMakeFiles/mm_capture.dir/replay.cpp.o" "gcc" "src/capture/CMakeFiles/mm_capture.dir/replay.cpp.o.d"
  "/root/repo/src/capture/sniffer.cpp" "src/capture/CMakeFiles/mm_capture.dir/sniffer.cpp.o" "gcc" "src/capture/CMakeFiles/mm_capture.dir/sniffer.cpp.o.d"
  "/root/repo/src/capture/wardrive.cpp" "src/capture/CMakeFiles/mm_capture.dir/wardrive.cpp.o" "gcc" "src/capture/CMakeFiles/mm_capture.dir/wardrive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/mm_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/net80211/CMakeFiles/mm_net80211.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/mm_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
