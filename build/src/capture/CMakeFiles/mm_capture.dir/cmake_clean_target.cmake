file(REMOVE_RECURSE
  "libmm_capture.a"
)
