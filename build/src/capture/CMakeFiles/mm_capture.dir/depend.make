# Empty dependencies file for mm_capture.
# This may be replaced when dependencies are built.
