file(REMOVE_RECURSE
  "CMakeFiles/mm_capture.dir/observation_store.cpp.o"
  "CMakeFiles/mm_capture.dir/observation_store.cpp.o.d"
  "CMakeFiles/mm_capture.dir/persistence.cpp.o"
  "CMakeFiles/mm_capture.dir/persistence.cpp.o.d"
  "CMakeFiles/mm_capture.dir/replay.cpp.o"
  "CMakeFiles/mm_capture.dir/replay.cpp.o.d"
  "CMakeFiles/mm_capture.dir/sniffer.cpp.o"
  "CMakeFiles/mm_capture.dir/sniffer.cpp.o.d"
  "CMakeFiles/mm_capture.dir/wardrive.cpp.o"
  "CMakeFiles/mm_capture.dir/wardrive.cpp.o.d"
  "libmm_capture.a"
  "libmm_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
