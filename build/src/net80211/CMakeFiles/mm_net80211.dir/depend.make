# Empty dependencies file for mm_net80211.
# This may be replaced when dependencies are built.
