file(REMOVE_RECURSE
  "CMakeFiles/mm_net80211.dir/crc32.cpp.o"
  "CMakeFiles/mm_net80211.dir/crc32.cpp.o.d"
  "CMakeFiles/mm_net80211.dir/frames.cpp.o"
  "CMakeFiles/mm_net80211.dir/frames.cpp.o.d"
  "CMakeFiles/mm_net80211.dir/mac_address.cpp.o"
  "CMakeFiles/mm_net80211.dir/mac_address.cpp.o.d"
  "CMakeFiles/mm_net80211.dir/pcap.cpp.o"
  "CMakeFiles/mm_net80211.dir/pcap.cpp.o.d"
  "CMakeFiles/mm_net80211.dir/radiotap.cpp.o"
  "CMakeFiles/mm_net80211.dir/radiotap.cpp.o.d"
  "libmm_net80211.a"
  "libmm_net80211.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_net80211.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
