file(REMOVE_RECURSE
  "libmm_net80211.a"
)
