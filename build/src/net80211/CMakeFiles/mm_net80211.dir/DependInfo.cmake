
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net80211/crc32.cpp" "src/net80211/CMakeFiles/mm_net80211.dir/crc32.cpp.o" "gcc" "src/net80211/CMakeFiles/mm_net80211.dir/crc32.cpp.o.d"
  "/root/repo/src/net80211/frames.cpp" "src/net80211/CMakeFiles/mm_net80211.dir/frames.cpp.o" "gcc" "src/net80211/CMakeFiles/mm_net80211.dir/frames.cpp.o.d"
  "/root/repo/src/net80211/mac_address.cpp" "src/net80211/CMakeFiles/mm_net80211.dir/mac_address.cpp.o" "gcc" "src/net80211/CMakeFiles/mm_net80211.dir/mac_address.cpp.o.d"
  "/root/repo/src/net80211/pcap.cpp" "src/net80211/CMakeFiles/mm_net80211.dir/pcap.cpp.o" "gcc" "src/net80211/CMakeFiles/mm_net80211.dir/pcap.cpp.o.d"
  "/root/repo/src/net80211/radiotap.cpp" "src/net80211/CMakeFiles/mm_net80211.dir/radiotap.cpp.o" "gcc" "src/net80211/CMakeFiles/mm_net80211.dir/radiotap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
