# Empty compiler generated dependencies file for mm_marauder.
# This may be replaced when dependencies are built.
