
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/marauder/ap_database.cpp" "src/marauder/CMakeFiles/mm_marauder.dir/ap_database.cpp.o" "gcc" "src/marauder/CMakeFiles/mm_marauder.dir/ap_database.cpp.o.d"
  "/root/repo/src/marauder/aploc.cpp" "src/marauder/CMakeFiles/mm_marauder.dir/aploc.cpp.o" "gcc" "src/marauder/CMakeFiles/mm_marauder.dir/aploc.cpp.o.d"
  "/root/repo/src/marauder/aprad.cpp" "src/marauder/CMakeFiles/mm_marauder.dir/aprad.cpp.o" "gcc" "src/marauder/CMakeFiles/mm_marauder.dir/aprad.cpp.o.d"
  "/root/repo/src/marauder/baselines.cpp" "src/marauder/CMakeFiles/mm_marauder.dir/baselines.cpp.o" "gcc" "src/marauder/CMakeFiles/mm_marauder.dir/baselines.cpp.o.d"
  "/root/repo/src/marauder/linker.cpp" "src/marauder/CMakeFiles/mm_marauder.dir/linker.cpp.o" "gcc" "src/marauder/CMakeFiles/mm_marauder.dir/linker.cpp.o.d"
  "/root/repo/src/marauder/mloc.cpp" "src/marauder/CMakeFiles/mm_marauder.dir/mloc.cpp.o" "gcc" "src/marauder/CMakeFiles/mm_marauder.dir/mloc.cpp.o.d"
  "/root/repo/src/marauder/tracker.cpp" "src/marauder/CMakeFiles/mm_marauder.dir/tracker.cpp.o" "gcc" "src/marauder/CMakeFiles/mm_marauder.dir/tracker.cpp.o.d"
  "/root/repo/src/marauder/trajectory.cpp" "src/marauder/CMakeFiles/mm_marauder.dir/trajectory.cpp.o" "gcc" "src/marauder/CMakeFiles/mm_marauder.dir/trajectory.cpp.o.d"
  "/root/repo/src/marauder/trilateration.cpp" "src/marauder/CMakeFiles/mm_marauder.dir/trilateration.cpp.o" "gcc" "src/marauder/CMakeFiles/mm_marauder.dir/trilateration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capture/CMakeFiles/mm_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mm_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/mm_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net80211/CMakeFiles/mm_net80211.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/mm_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
