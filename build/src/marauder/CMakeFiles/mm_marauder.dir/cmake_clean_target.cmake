file(REMOVE_RECURSE
  "libmm_marauder.a"
)
