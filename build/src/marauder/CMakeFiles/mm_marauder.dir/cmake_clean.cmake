file(REMOVE_RECURSE
  "CMakeFiles/mm_marauder.dir/ap_database.cpp.o"
  "CMakeFiles/mm_marauder.dir/ap_database.cpp.o.d"
  "CMakeFiles/mm_marauder.dir/aploc.cpp.o"
  "CMakeFiles/mm_marauder.dir/aploc.cpp.o.d"
  "CMakeFiles/mm_marauder.dir/aprad.cpp.o"
  "CMakeFiles/mm_marauder.dir/aprad.cpp.o.d"
  "CMakeFiles/mm_marauder.dir/baselines.cpp.o"
  "CMakeFiles/mm_marauder.dir/baselines.cpp.o.d"
  "CMakeFiles/mm_marauder.dir/linker.cpp.o"
  "CMakeFiles/mm_marauder.dir/linker.cpp.o.d"
  "CMakeFiles/mm_marauder.dir/mloc.cpp.o"
  "CMakeFiles/mm_marauder.dir/mloc.cpp.o.d"
  "CMakeFiles/mm_marauder.dir/tracker.cpp.o"
  "CMakeFiles/mm_marauder.dir/tracker.cpp.o.d"
  "CMakeFiles/mm_marauder.dir/trajectory.cpp.o"
  "CMakeFiles/mm_marauder.dir/trajectory.cpp.o.d"
  "CMakeFiles/mm_marauder.dir/trilateration.cpp.o"
  "CMakeFiles/mm_marauder.dir/trilateration.cpp.o.d"
  "libmm_marauder.a"
  "libmm_marauder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_marauder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
