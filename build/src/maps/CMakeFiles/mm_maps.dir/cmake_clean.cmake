file(REMOVE_RECURSE
  "CMakeFiles/mm_maps.dir/html_map.cpp.o"
  "CMakeFiles/mm_maps.dir/html_map.cpp.o.d"
  "libmm_maps.a"
  "libmm_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
