file(REMOVE_RECURSE
  "libmm_maps.a"
)
