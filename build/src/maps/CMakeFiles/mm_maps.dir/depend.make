# Empty dependencies file for mm_maps.
# This may be replaced when dependencies are built.
