# Empty compiler generated dependencies file for mm_rf.
# This may be replaced when dependencies are built.
