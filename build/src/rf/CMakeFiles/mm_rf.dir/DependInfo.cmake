
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/buildings.cpp" "src/rf/CMakeFiles/mm_rf.dir/buildings.cpp.o" "gcc" "src/rf/CMakeFiles/mm_rf.dir/buildings.cpp.o.d"
  "/root/repo/src/rf/channels.cpp" "src/rf/CMakeFiles/mm_rf.dir/channels.cpp.o" "gcc" "src/rf/CMakeFiles/mm_rf.dir/channels.cpp.o.d"
  "/root/repo/src/rf/components.cpp" "src/rf/CMakeFiles/mm_rf.dir/components.cpp.o" "gcc" "src/rf/CMakeFiles/mm_rf.dir/components.cpp.o.d"
  "/root/repo/src/rf/propagation.cpp" "src/rf/CMakeFiles/mm_rf.dir/propagation.cpp.o" "gcc" "src/rf/CMakeFiles/mm_rf.dir/propagation.cpp.o.d"
  "/root/repo/src/rf/receiver_chain.cpp" "src/rf/CMakeFiles/mm_rf.dir/receiver_chain.cpp.o" "gcc" "src/rf/CMakeFiles/mm_rf.dir/receiver_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/mm_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
