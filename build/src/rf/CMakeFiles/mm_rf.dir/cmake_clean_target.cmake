file(REMOVE_RECURSE
  "libmm_rf.a"
)
