file(REMOVE_RECURSE
  "CMakeFiles/mm_rf.dir/buildings.cpp.o"
  "CMakeFiles/mm_rf.dir/buildings.cpp.o.d"
  "CMakeFiles/mm_rf.dir/channels.cpp.o"
  "CMakeFiles/mm_rf.dir/channels.cpp.o.d"
  "CMakeFiles/mm_rf.dir/components.cpp.o"
  "CMakeFiles/mm_rf.dir/components.cpp.o.d"
  "CMakeFiles/mm_rf.dir/propagation.cpp.o"
  "CMakeFiles/mm_rf.dir/propagation.cpp.o.d"
  "CMakeFiles/mm_rf.dir/receiver_chain.cpp.o"
  "CMakeFiles/mm_rf.dir/receiver_chain.cpp.o.d"
  "libmm_rf.a"
  "libmm_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
