# Empty dependencies file for mm_geo.
# This may be replaced when dependencies are built.
