
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/circle.cpp" "src/geo/CMakeFiles/mm_geo.dir/circle.cpp.o" "gcc" "src/geo/CMakeFiles/mm_geo.dir/circle.cpp.o.d"
  "/root/repo/src/geo/disc_intersection.cpp" "src/geo/CMakeFiles/mm_geo.dir/disc_intersection.cpp.o" "gcc" "src/geo/CMakeFiles/mm_geo.dir/disc_intersection.cpp.o.d"
  "/root/repo/src/geo/enclosing_circle.cpp" "src/geo/CMakeFiles/mm_geo.dir/enclosing_circle.cpp.o" "gcc" "src/geo/CMakeFiles/mm_geo.dir/enclosing_circle.cpp.o.d"
  "/root/repo/src/geo/geodetic.cpp" "src/geo/CMakeFiles/mm_geo.dir/geodetic.cpp.o" "gcc" "src/geo/CMakeFiles/mm_geo.dir/geodetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
