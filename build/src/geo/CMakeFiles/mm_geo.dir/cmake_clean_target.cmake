file(REMOVE_RECURSE
  "libmm_geo.a"
)
