file(REMOVE_RECURSE
  "CMakeFiles/mm_geo.dir/circle.cpp.o"
  "CMakeFiles/mm_geo.dir/circle.cpp.o.d"
  "CMakeFiles/mm_geo.dir/disc_intersection.cpp.o"
  "CMakeFiles/mm_geo.dir/disc_intersection.cpp.o.d"
  "CMakeFiles/mm_geo.dir/enclosing_circle.cpp.o"
  "CMakeFiles/mm_geo.dir/enclosing_circle.cpp.o.d"
  "CMakeFiles/mm_geo.dir/geodetic.cpp.o"
  "CMakeFiles/mm_geo.dir/geodetic.cpp.o.d"
  "libmm_geo.a"
  "libmm_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
