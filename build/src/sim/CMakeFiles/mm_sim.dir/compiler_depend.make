# Empty compiler generated dependencies file for mm_sim.
# This may be replaced when dependencies are built.
