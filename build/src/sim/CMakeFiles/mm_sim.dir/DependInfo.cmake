
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ap.cpp" "src/sim/CMakeFiles/mm_sim.dir/ap.cpp.o" "gcc" "src/sim/CMakeFiles/mm_sim.dir/ap.cpp.o.d"
  "/root/repo/src/sim/attacker.cpp" "src/sim/CMakeFiles/mm_sim.dir/attacker.cpp.o" "gcc" "src/sim/CMakeFiles/mm_sim.dir/attacker.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/mm_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/mm_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/mobile.cpp" "src/sim/CMakeFiles/mm_sim.dir/mobile.cpp.o" "gcc" "src/sim/CMakeFiles/mm_sim.dir/mobile.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "src/sim/CMakeFiles/mm_sim.dir/mobility.cpp.o" "gcc" "src/sim/CMakeFiles/mm_sim.dir/mobility.cpp.o.d"
  "/root/repo/src/sim/population.cpp" "src/sim/CMakeFiles/mm_sim.dir/population.cpp.o" "gcc" "src/sim/CMakeFiles/mm_sim.dir/population.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/mm_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/mm_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/mm_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/mm_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/mm_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/mm_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/net80211/CMakeFiles/mm_net80211.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
