file(REMOVE_RECURSE
  "CMakeFiles/mm_sim.dir/ap.cpp.o"
  "CMakeFiles/mm_sim.dir/ap.cpp.o.d"
  "CMakeFiles/mm_sim.dir/attacker.cpp.o"
  "CMakeFiles/mm_sim.dir/attacker.cpp.o.d"
  "CMakeFiles/mm_sim.dir/event_queue.cpp.o"
  "CMakeFiles/mm_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/mm_sim.dir/mobile.cpp.o"
  "CMakeFiles/mm_sim.dir/mobile.cpp.o.d"
  "CMakeFiles/mm_sim.dir/mobility.cpp.o"
  "CMakeFiles/mm_sim.dir/mobility.cpp.o.d"
  "CMakeFiles/mm_sim.dir/population.cpp.o"
  "CMakeFiles/mm_sim.dir/population.cpp.o.d"
  "CMakeFiles/mm_sim.dir/scenario.cpp.o"
  "CMakeFiles/mm_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/mm_sim.dir/world.cpp.o"
  "CMakeFiles/mm_sim.dir/world.cpp.o.d"
  "libmm_sim.a"
  "libmm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
