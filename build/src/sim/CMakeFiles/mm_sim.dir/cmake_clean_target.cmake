file(REMOVE_RECURSE
  "libmm_sim.a"
)
