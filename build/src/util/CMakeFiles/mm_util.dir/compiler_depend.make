# Empty compiler generated dependencies file for mm_util.
# This may be replaced when dependencies are built.
