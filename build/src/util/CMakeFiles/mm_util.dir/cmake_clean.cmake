file(REMOVE_RECURSE
  "CMakeFiles/mm_util.dir/csv.cpp.o"
  "CMakeFiles/mm_util.dir/csv.cpp.o.d"
  "CMakeFiles/mm_util.dir/flags.cpp.o"
  "CMakeFiles/mm_util.dir/flags.cpp.o.d"
  "CMakeFiles/mm_util.dir/ini.cpp.o"
  "CMakeFiles/mm_util.dir/ini.cpp.o.d"
  "CMakeFiles/mm_util.dir/logging.cpp.o"
  "CMakeFiles/mm_util.dir/logging.cpp.o.d"
  "CMakeFiles/mm_util.dir/stats.cpp.o"
  "CMakeFiles/mm_util.dir/stats.cpp.o.d"
  "CMakeFiles/mm_util.dir/table.cpp.o"
  "CMakeFiles/mm_util.dir/table.cpp.o.d"
  "libmm_util.a"
  "libmm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
