file(REMOVE_RECURSE
  "libmm_analysis.a"
)
