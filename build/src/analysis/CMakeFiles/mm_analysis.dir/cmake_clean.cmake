file(REMOVE_RECURSE
  "CMakeFiles/mm_analysis.dir/integrate.cpp.o"
  "CMakeFiles/mm_analysis.dir/integrate.cpp.o.d"
  "CMakeFiles/mm_analysis.dir/theorems.cpp.o"
  "CMakeFiles/mm_analysis.dir/theorems.cpp.o.d"
  "libmm_analysis.a"
  "libmm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
