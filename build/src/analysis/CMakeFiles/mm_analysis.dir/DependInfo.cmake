
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/integrate.cpp" "src/analysis/CMakeFiles/mm_analysis.dir/integrate.cpp.o" "gcc" "src/analysis/CMakeFiles/mm_analysis.dir/integrate.cpp.o.d"
  "/root/repo/src/analysis/theorems.cpp" "src/analysis/CMakeFiles/mm_analysis.dir/theorems.cpp.o" "gcc" "src/analysis/CMakeFiles/mm_analysis.dir/theorems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/mm_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
