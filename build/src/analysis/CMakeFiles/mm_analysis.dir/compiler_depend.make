# Empty compiler generated dependencies file for mm_analysis.
# This may be replaced when dependencies are built.
