# Empty compiler generated dependencies file for bench_fig13_error_histogram.
# This may be replaced when dependencies are built.
