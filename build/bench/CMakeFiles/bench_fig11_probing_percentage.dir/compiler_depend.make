# Empty compiler generated dependencies file for bench_fig11_probing_percentage.
# This may be replaced when dependencies are built.
