file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_probing_percentage.dir/bench_fig11_probing_percentage.cpp.o"
  "CMakeFiles/bench_fig11_probing_percentage.dir/bench_fig11_probing_percentage.cpp.o.d"
  "bench_fig11_probing_percentage"
  "bench_fig11_probing_percentage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_probing_percentage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
