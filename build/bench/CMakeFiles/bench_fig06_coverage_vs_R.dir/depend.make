# Empty dependencies file for bench_fig06_coverage_vs_R.
# This may be replaced when dependencies are built.
