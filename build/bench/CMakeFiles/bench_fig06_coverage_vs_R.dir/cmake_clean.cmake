file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_coverage_vs_R.dir/bench_fig06_coverage_vs_R.cpp.o"
  "CMakeFiles/bench_fig06_coverage_vs_R.dir/bench_fig06_coverage_vs_R.cpp.o.d"
  "bench_fig06_coverage_vs_R"
  "bench_fig06_coverage_vs_R.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_coverage_vs_R.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
