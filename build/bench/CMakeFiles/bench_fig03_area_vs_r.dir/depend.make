# Empty dependencies file for bench_fig03_area_vs_r.
# This may be replaced when dependencies are built.
