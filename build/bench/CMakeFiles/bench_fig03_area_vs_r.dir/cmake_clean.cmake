file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_area_vs_r.dir/bench_fig03_area_vs_r.cpp.o"
  "CMakeFiles/bench_fig03_area_vs_r.dir/bench_fig03_area_vs_r.cpp.o.d"
  "bench_fig03_area_vs_r"
  "bench_fig03_area_vs_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_area_vs_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
