# Empty dependencies file for bench_fig10_probing_counts.
# This may be replaced when dependencies are built.
