file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_probing_counts.dir/bench_fig10_probing_counts.cpp.o"
  "CMakeFiles/bench_fig10_probing_counts.dir/bench_fig10_probing_counts.cpp.o.d"
  "bench_fig10_probing_counts"
  "bench_fig10_probing_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_probing_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
