# Empty compiler generated dependencies file for bench_fig04_biased_aps.
# This may be replaced when dependencies are built.
