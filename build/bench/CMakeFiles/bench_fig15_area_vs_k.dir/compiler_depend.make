# Empty compiler generated dependencies file for bench_fig15_area_vs_k.
# This may be replaced when dependencies are built.
