# Empty compiler generated dependencies file for bench_fig16_coverage_prob.
# This may be replaced when dependencies are built.
