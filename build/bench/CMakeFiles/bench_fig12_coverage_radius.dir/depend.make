# Empty dependencies file for bench_fig12_coverage_radius.
# This may be replaced when dependencies are built.
