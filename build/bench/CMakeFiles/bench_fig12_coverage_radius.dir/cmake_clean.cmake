file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_coverage_radius.dir/bench_fig12_coverage_radius.cpp.o"
  "CMakeFiles/bench_fig12_coverage_radius.dir/bench_fig12_coverage_radius.cpp.o.d"
  "bench_fig12_coverage_radius"
  "bench_fig12_coverage_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_coverage_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
