file(REMOVE_RECURSE
  "CMakeFiles/bench_defenses.dir/bench_defenses.cpp.o"
  "CMakeFiles/bench_defenses.dir/bench_defenses.cpp.o.d"
  "bench_defenses"
  "bench_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
