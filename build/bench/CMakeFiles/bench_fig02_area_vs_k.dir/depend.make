# Empty dependencies file for bench_fig02_area_vs_k.
# This may be replaced when dependencies are built.
