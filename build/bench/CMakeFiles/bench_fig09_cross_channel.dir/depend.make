# Empty dependencies file for bench_fig09_cross_channel.
# This may be replaced when dependencies are built.
