file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_cross_channel.dir/bench_fig09_cross_channel.cpp.o"
  "CMakeFiles/bench_fig09_cross_channel.dir/bench_fig09_cross_channel.cpp.o.d"
  "bench_fig09_cross_channel"
  "bench_fig09_cross_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_cross_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
