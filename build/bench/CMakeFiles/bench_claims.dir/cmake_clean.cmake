file(REMOVE_RECURSE
  "CMakeFiles/bench_claims.dir/bench_claims.cpp.o"
  "CMakeFiles/bench_claims.dir/bench_claims.cpp.o.d"
  "bench_claims"
  "bench_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
