# Empty dependencies file for bench_claims.
# This may be replaced when dependencies are built.
