# Empty compiler generated dependencies file for bench_fig05_area_vs_R.
# This may be replaced when dependencies are built.
