file(REMOVE_RECURSE
  "CMakeFiles/privacy_defense.dir/privacy_defense.cpp.o"
  "CMakeFiles/privacy_defense.dir/privacy_defense.cpp.o.d"
  "privacy_defense"
  "privacy_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
