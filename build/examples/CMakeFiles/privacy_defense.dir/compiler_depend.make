# Empty compiler generated dependencies file for privacy_defense.
# This may be replaced when dependencies are built.
