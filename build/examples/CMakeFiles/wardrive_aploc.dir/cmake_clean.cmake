file(REMOVE_RECURSE
  "CMakeFiles/wardrive_aploc.dir/wardrive_aploc.cpp.o"
  "CMakeFiles/wardrive_aploc.dir/wardrive_aploc.cpp.o.d"
  "wardrive_aploc"
  "wardrive_aploc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wardrive_aploc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
