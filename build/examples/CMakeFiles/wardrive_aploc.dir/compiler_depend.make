# Empty compiler generated dependencies file for wardrive_aploc.
# This may be replaced when dependencies are built.
