# Empty dependencies file for campus_tracking.
# This may be replaced when dependencies are built.
