file(REMOVE_RECURSE
  "CMakeFiles/campus_tracking.dir/campus_tracking.cpp.o"
  "CMakeFiles/campus_tracking.dir/campus_tracking.cpp.o.d"
  "campus_tracking"
  "campus_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
