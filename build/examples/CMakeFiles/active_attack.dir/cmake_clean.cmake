file(REMOVE_RECURSE
  "CMakeFiles/active_attack.dir/active_attack.cpp.o"
  "CMakeFiles/active_attack.dir/active_attack.cpp.o.d"
  "active_attack"
  "active_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
