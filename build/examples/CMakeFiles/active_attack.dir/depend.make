# Empty dependencies file for active_attack.
# This may be replaced when dependencies are built.
